//! CSV export of figure datasets.
//!
//! Terminal renderings are good for eyeballing; these exporters emit the
//! same figure data as headered CSV so external plotting tools can
//! regenerate publication-style graphics. Every function returns the CSV
//! text; the CLI writes them to disk.

use std::fmt::Write;

use dagscope_graph::metrics::SizeGroupRow;
use dagscope_graph::pattern::PatternCensus;
use dagscope_graph::tasktype::TypeCensusRow;

use crate::figures::{ConflationHistogram, GroupPropertyRow};
use crate::{Report, Similarity};

/// Fig 3 — `size,before,after`.
pub fn conflation_csv(h: &ConflationHistogram) -> String {
    let mut s = String::from("size,before,after\n");
    let sizes: std::collections::BTreeSet<usize> =
        h.before.keys().chain(h.after.keys()).copied().collect();
    for size in sizes {
        writeln!(
            s,
            "{},{},{}",
            size,
            h.before.get(&size).copied().unwrap_or(0),
            h.after.get(&size).copied().unwrap_or(0)
        )
        .unwrap();
    }
    s
}

/// Fig 4 / Fig 5 — `size,jobs,max_critical_path,max_width`.
pub fn size_groups_csv(rows: &[SizeGroupRow]) -> String {
    let mut s = String::from("size,jobs,max_critical_path,max_width\n");
    for r in rows {
        writeln!(
            s,
            "{},{},{},{}",
            r.size, r.jobs, r.max_critical_path, r.max_width
        )
        .unwrap();
    }
    s
}

/// Fig 6 — `job,size,m,j,r,model`.
pub fn type_census_csv(rows: &[TypeCensusRow]) -> String {
    let mut s = String::from("job,size,m,j,r,model\n");
    for r in rows {
        writeln!(
            s,
            "{},{},{},{},{},{}",
            r.name,
            r.size,
            r.counts.m,
            r.counts.j,
            r.counts.r,
            r.model.label()
        )
        .unwrap();
    }
    s
}

/// Fig 7 — similarity matrix, one row per line, comma separated. The
/// output is always the expanded n×n view; collapsed entries resolve
/// through the job→shape map (CSV is inherently O(n²), so there is no
/// memory to save here — only the intermediate matrix).
pub fn similarity_csv(similarity: &Similarity) -> String {
    let n = similarity.n();
    let mut s = String::new();
    for i in 0..n {
        for j in 0..n {
            if j > 0 {
                s.push(',');
            }
            write!(s, "{:.6}", similarity.get(i, j)).unwrap();
        }
        s.push('\n');
    }
    s
}

/// Fig 9 — one row per group with distribution summaries.
pub fn group_properties_csv(rows: &[GroupPropertyRow]) -> String {
    let mut s = String::from(
        "group,jobs,fraction,size_min,size_med,size_max,cp_min,cp_med,cp_max,\
         width_min,width_med,width_max,mean_size\n",
    );
    for r in rows {
        writeln!(
            s,
            "{},{},{:.4},{},{},{},{},{},{},{},{},{},{:.3}",
            r.label,
            r.population,
            r.fraction,
            r.size_mmm.0,
            r.size_mmm.1,
            r.size_mmm.2,
            r.cp_mmm.0,
            r.cp_mmm.1,
            r.cp_mmm.2,
            r.width_mmm.0,
            r.width_mmm.1,
            r.width_mmm.2,
            r.mean_size
        )
        .unwrap();
    }
    s
}

/// Pattern census — `pattern,count,fraction`.
pub fn pattern_census_csv(census: &PatternCensus) -> String {
    let mut s = String::from("pattern,count,fraction\n");
    for (label, count) in &census.counts {
        let frac = if census.total > 0 {
            *count as f64 / census.total as f64
        } else {
            0.0
        };
        writeln!(s, "{label},{count},{frac:.4}").unwrap();
    }
    s
}

/// Per-sample-job feature dump (the raw material of Figs 4–6).
pub fn features_csv(report: &Report) -> String {
    let mut s = String::from(
        "job,size,weight,critical_path,max_width,sources,sinks,edges,\
         map_tasks,join_tasks,reduce_tasks,total_instances,cpu_volume,min_makespan,group\n",
    );
    for (i, f) in report.features_raw.iter().enumerate() {
        let group = report.groups.group_of(i).label;
        writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.1},{},{}",
            f.name,
            f.size,
            f.weight,
            f.critical_path,
            f.max_width,
            f.sources,
            f.sinks,
            f.edges,
            f.map_tasks,
            f.join_tasks,
            f.reduce_tasks,
            f.total_instances,
            f.cpu_volume,
            f.min_makespan,
            group
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::{Pipeline, PipelineConfig};

    fn report() -> Report {
        Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 25,
            seed: 2,
            ..Default::default()
        })
        .run()
        .unwrap()
    }

    #[test]
    fn conflation_csv_shape() {
        let r = report();
        let csv = conflation_csv(&figures::fig3_conflation(&r));
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("size,before,after"));
        let data: Vec<&str> = lines.collect();
        assert!(!data.is_empty());
        // Column sums both equal the sample size.
        let (mut b, mut a) = (0usize, 0usize);
        for l in &data {
            let f: Vec<&str> = l.split(',').collect();
            b += f[1].parse::<usize>().unwrap();
            a += f[2].parse::<usize>().unwrap();
        }
        assert_eq!(b, 25);
        assert_eq!(a, 25);
    }

    #[test]
    fn size_groups_csv_parses_back() {
        let r = report();
        let csv = size_groups_csv(&figures::fig4_size_groups(&r));
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 4);
        }
    }

    #[test]
    fn type_census_csv_has_model_column() {
        let r = report();
        let csv = type_census_csv(&figures::fig6_type_distribution(&r));
        assert!(csv.starts_with("job,size,m,j,r,model"));
        assert!(csv.contains("map-reduce"));
    }

    #[test]
    fn similarity_csv_square() {
        let r = report();
        let csv = similarity_csv(&r.similarity);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 25);
        for l in &lines {
            assert_eq!(l.split(',').count(), 25);
        }
        // Diagonal is 1.
        let first: f64 = lines[0].split(',').next().unwrap().parse().unwrap();
        assert!((first - 1.0).abs() < 1e-6);
    }

    #[test]
    fn group_properties_csv_rows() {
        let r = report();
        let csv = group_properties_csv(&figures::fig9_group_properties(&r));
        assert_eq!(csv.lines().count(), 6); // header + 5 groups
        assert!(csv.contains("A,"));
    }

    #[test]
    fn pattern_and_features_csv() {
        let r = report();
        let pc = pattern_census_csv(&figures::pattern_census_of(&r.raw_dags));
        assert!(pc.contains("straight-chain"));
        let fc = features_csv(&r);
        assert_eq!(fc.lines().count(), 26); // header + 25 jobs
        assert!(fc.lines().nth(1).unwrap().split(',').count() == 15);
    }
}
