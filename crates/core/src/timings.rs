//! Per-stage wall-clock instrumentation for pipeline runs.

use std::time::Duration;

/// Wall-clock time spent in each pipeline stage of one
/// [`Pipeline::run_on`](crate::Pipeline::run_on) invocation.
///
/// All stages are measured on the calling thread, so a parallel stage's
/// duration is its wall-clock span, not CPU time summed over workers —
/// exactly the number a thread-count sweep should shrink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Trace-level statistics pass.
    pub stats: Duration,
    /// Integrity/availability filters + stratified sampling.
    pub sample: Duration,
    /// DAG construction and node conflation (parallel).
    pub dags: Duration,
    /// Structural feature extraction, raw + conflated (parallel).
    pub features: Duration,
    /// WL (or shortest-path) embedding of the sample (parallel).
    pub embed: Duration,
    /// WL-fingerprint deduplication of the embedded vectors (zero when
    /// `dedup_shapes` is off).
    pub dedup: Duration,
    /// Kernel-matrix assembly + normalization (parallel).
    pub kernel: Duration,
    /// Spectral clustering + per-group analysis.
    pub cluster: Duration,
    /// End-to-end wall clock of the whole run.
    pub total: Duration,
}

impl StageTimings {
    /// Named `(stage, duration)` rows in pipeline order, excluding the
    /// total.
    pub fn stages(&self) -> [(&'static str, Duration); 8] {
        [
            ("stats", self.stats),
            ("sample", self.sample),
            ("dags", self.dags),
            ("features", self.features),
            ("embed", self.embed),
            ("dedup", self.dedup),
            ("kernel", self.kernel),
            ("cluster", self.cluster),
        ]
    }

    /// Multi-line table: one row per stage with its share of the total.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("== stage timings ==\n");
        let total = self.total.as_secs_f64().max(f64::MIN_POSITIVE);
        for (name, d) in self.stages() {
            writeln!(
                s,
                "{:<9} {:>9.3} ms {:>5.1} %",
                name,
                1e3 * d.as_secs_f64(),
                100.0 * d.as_secs_f64() / total
            )
            .unwrap();
        }
        writeln!(
            s,
            "{:<9} {:>9.3} ms",
            "total",
            1e3 * self.total.as_secs_f64()
        )
        .unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_stage_and_total() {
        let t = StageTimings {
            stats: Duration::from_millis(1),
            sample: Duration::from_millis(2),
            dags: Duration::from_millis(3),
            features: Duration::from_millis(4),
            embed: Duration::from_millis(5),
            dedup: Duration::from_millis(0),
            kernel: Duration::from_millis(6),
            cluster: Duration::from_millis(7),
            total: Duration::from_millis(28),
        };
        let s = t.render();
        for name in [
            "stats", "sample", "dags", "features", "embed", "dedup", "kernel", "cluster", "total",
        ] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
        assert!(s.contains("25.0 %")); // cluster: 7/28
    }

    #[test]
    fn zero_total_renders_without_nan() {
        let s = StageTimings::default().render();
        assert!(!s.contains("NaN"));
    }
}
