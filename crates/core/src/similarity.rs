//! The pipeline's similarity matrix, in dense or collapsed form.
//!
//! At paper scale (a 100-job sample) the normalized WL similarity is a
//! small dense [`SymMatrix`] and every consumer reads it directly. At
//! full-trace scale the dense n×n expansion is exactly what the
//! collapsed engine exists to avoid, so the report instead carries the
//! **unique-shape** CSR similarity plus the job→shape map — `O(nnz)`
//! memory — and consumers read entries through [`Similarity::get`],
//! which resolves job indices to shapes on the fly.

use std::borrow::Cow;

use dagscope_linalg::{CsrSym, SymMatrix};

/// Normalized pairwise job similarity (Fig 7), dense or collapsed.
///
/// `PartialEq` is representational: two values compare equal only in
/// the same form (a dense and a collapsed encoding of the same matrix
/// are *not* `==`; compare expanded views via [`Similarity::to_sym`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Similarity {
    /// The expanded n×n matrix (paper scale; bit-identical baseline).
    Dense(SymMatrix),
    /// Unique-shape CSR similarity plus the job→shape map. Entry
    /// `(i, j)` is `unique[shape_of[i]][shape_of[j]]`; absent entries
    /// are exact zeros.
    Collapsed {
        /// Normalized unique-shape similarity (diag ∈ {0, 1} exactly).
        unique: CsrSym,
        /// Shape id of every sampled job, in sample order.
        shape_of: Vec<usize>,
    },
}

impl Similarity {
    /// Number of jobs (matrix order of the expanded view).
    pub fn n(&self) -> usize {
        match self {
            Similarity::Dense(m) => m.n(),
            Similarity::Collapsed { shape_of, .. } => shape_of.len(),
        }
    }

    /// Similarity of jobs `i` and `j` in the expanded view.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Similarity::Dense(m) => m.get(i, j),
            Similarity::Collapsed { unique, shape_of } => unique.get(shape_of[i], shape_of[j]),
        }
    }

    /// The dense matrix, when this run produced one.
    pub fn as_dense(&self) -> Option<&SymMatrix> {
        match self {
            Similarity::Dense(m) => Some(m),
            Similarity::Collapsed { .. } => None,
        }
    }

    /// A dense view, materializing the n×n expansion for collapsed runs.
    ///
    /// Only call this on sample-scale populations (baselines, figure
    /// exports): at full-trace scale the expansion is the allocation the
    /// collapsed engine avoids.
    pub fn to_sym(&self) -> Cow<'_, SymMatrix> {
        match self {
            Similarity::Dense(m) => Cow::Borrowed(m),
            Similarity::Collapsed { unique, shape_of } => {
                let n = shape_of.len();
                let mut out = SymMatrix::zeros(n);
                for i in 0..n {
                    for j in i..n {
                        out.set(i, j, unique.get(shape_of[i], shape_of[j]));
                    }
                }
                Cow::Owned(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collapsed_example() -> Similarity {
        // Shapes: 0 and 1 similar (0.5), 2 isolated with zero diagonal.
        let mut unique = SymMatrix::zeros(3);
        unique.set(0, 0, 1.0);
        unique.set(1, 1, 1.0);
        unique.set(0, 1, 0.5);
        Similarity::Collapsed {
            unique: CsrSym::from_sym(&unique),
            shape_of: vec![0, 1, 0, 2],
        }
    }

    #[test]
    fn collapsed_get_resolves_shapes() {
        let s = collapsed_example();
        assert_eq!(s.n(), 4);
        assert_eq!(s.get(0, 1), 0.5);
        assert_eq!(s.get(0, 2), 1.0, "same shape is fully similar");
        assert_eq!(s.get(1, 2), 0.5);
        assert_eq!(s.get(0, 3), 0.0, "absent entries are exact zeros");
        assert_eq!(s.get(3, 3), 0.0, "zero-diagonal shape");
        assert!(s.as_dense().is_none());
    }

    #[test]
    fn to_sym_expands_exactly() {
        let s = collapsed_example();
        let dense = s.to_sym();
        assert_eq!(dense.n(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(dense.get(i, j), s.get(i, j));
            }
        }
    }

    #[test]
    fn dense_passthrough() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 0.25);
        m.set(1, 1, 1.0);
        let s = Similarity::Dense(m.clone());
        assert_eq!(s.n(), 2);
        assert_eq!(s.get(0, 1), 0.25);
        assert!(s.as_dense().is_some());
        assert!(matches!(s.to_sym(), Cow::Borrowed(_)));
    }
}
