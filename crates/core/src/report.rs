//! The pipeline's output bundle.

use dagscope_graph::metrics::JobFeatures;
use dagscope_graph::JobDag;
use dagscope_trace::stats::TraceStats;
use dagscope_wl::{GramStats, SparseVec};

use crate::config::EngineKind;
use crate::{GroupAnalysis, PipelineConfig, Similarity, StageTimings};

/// Everything one pipeline run produces. The [`crate::figures`] module
/// renders individual paper figures from this bundle.
#[derive(Debug, Clone)]
pub struct Report {
    /// The configuration that produced this report.
    pub config: PipelineConfig,
    /// Trace-level statistics (E10).
    pub stats: TraceStats,
    /// Names of the sampled jobs, in sample order.
    pub sample_names: Vec<String>,
    /// Sampled job DAGs as reconstructed from task names.
    pub raw_dags: Vec<JobDag>,
    /// The same DAGs after node conflation.
    pub conflated_dags: Vec<JobDag>,
    /// Structural features of the raw DAGs (Fig 4).
    pub features_raw: Vec<JobFeatures>,
    /// Structural features of the conflated DAGs (Fig 5).
    pub features_conflated: Vec<JobFeatures>,
    /// WL φ vectors of the kernel-stage DAGs.
    pub wl_features: Vec<SparseVec>,
    /// Normalized pairwise WL similarity (Fig 7) — dense at paper scale,
    /// collapsed (unique-shape CSR) when the sparse engine ran.
    pub similarity: Similarity,
    /// The clustering engine this run actually used (after `Auto`
    /// resolution) — provenance for the report and snapshot.
    pub engine: EngineKind,
    /// Ascending eigenvalues of the normalized Laplacian (diagnostics).
    pub laplacian_eigenvalues: Vec<f64>,
    /// Spectral grouping and per-group statistics (Figs 8–9).
    pub groups: GroupAnalysis,
    /// Cost counters of the sparse Gram engine (`None` when
    /// `dedup_shapes` is off and the brute-force path ran).
    pub gram: Option<GramStats>,
    /// Per-stage wall-clock times for this run.
    pub timings: StageTimings,
}

impl Report {
    /// Features of the DAG population the kernel stage actually used.
    pub fn kernel_features(&self) -> &[JobFeatures] {
        if self.config.conflate {
            &self.features_conflated
        } else {
            &self.features_raw
        }
    }

    /// The DAGs the kernel stage actually used.
    pub fn kernel_dags(&self) -> &[JobDag] {
        if self.config.conflate {
            &self.conflated_dags
        } else {
            &self.raw_dags
        }
    }

    /// Multi-line executive summary: headline trace statistics plus the
    /// group table.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "== trace ==").unwrap();
        s.push_str(&self.stats.render());
        writeln!(s, "\n== sample ==").unwrap();
        writeln!(s, "jobs sampled:     {}", self.sample_names.len()).unwrap();
        let sizes: std::collections::BTreeSet<usize> =
            self.features_raw.iter().map(|f| f.size).collect();
        writeln!(s, "size types:       {}", sizes.len()).unwrap();
        writeln!(
            s,
            "\n== groups (silhouette {:.3}) ==",
            self.groups.silhouette
        )
        .unwrap();
        writeln!(
            s,
            "{:<6} {:>5} {:>6} {:>9} {:>7} {:>7} representative",
            "group", "jobs", "frac", "mean size", "chain%", "short%"
        )
        .unwrap();
        for g in &self.groups.groups {
            writeln!(
                s,
                "{:<6} {:>5} {:>5.1}% {:>9.2} {:>6.1}% {:>6.1}% {}",
                g.label,
                g.population,
                100.0 * g.fraction,
                g.mean_size,
                100.0 * g.chain_fraction,
                100.0 * g.short_fraction,
                g.representative
            )
            .unwrap();
        }
        s
    }

    /// Markdown paper-vs-measured record for this run — the auto-generated
    /// core of EXPERIMENTS.md.
    pub fn markdown(&self) -> String {
        use std::fmt::Write;
        let census = crate::figures::pattern_census_of(&self.raw_dags);
        let sim = crate::figures::fig7_summary(&self.similarity);
        let h = crate::figures::fig3_conflation(self);
        let a = &self.groups.groups[0];
        let max_mean = self
            .groups
            .groups
            .iter()
            .map(|g| g.mean_size)
            .fold(0.0f64, f64::max);

        let mut s = String::new();
        writeln!(s, "## Reproduction record (seed {})\n", self.config.seed).unwrap();
        writeln!(s, "| Claim | Paper | Measured |").unwrap();
        writeln!(s, "|---|---|---|").unwrap();
        writeln!(
            s,
            "| dependency-bearing batch jobs | ~50 % | {:.1} % |",
            100.0 * self.stats.dag_fraction
        )
        .unwrap();
        writeln!(
            s,
            "| their batch-resource share | 70–80 % | {:.1} % CPU |",
            100.0 * self.stats.dag_cpu_share
        )
        .unwrap();
        writeln!(
            s,
            "| straight-chain share (sample) | 58 % | {:.1} % |",
            100.0 * census.fraction("straight-chain")
        )
        .unwrap();
        writeln!(
            s,
            "| inverted-triangle share (sample) | 37 % | {:.1} % |",
            100.0 * census.fraction("inverted-triangle")
        )
        .unwrap();
        writeln!(
            s,
            "| conflation CDF(size ≤ 3) shift | increases | {:.0} % → {:.0} % |",
            100.0 * h.cdf(false, 3),
            100.0 * h.cdf(true, 3)
        )
        .unwrap();
        writeln!(
            s,
            "| similarity scores | 0–1, diag 1 | mean {:.3}, {} identical pairs |",
            sim.mean, sim.identical_pairs
        )
        .unwrap();
        writeln!(
            s,
            "| dominant group | A ≈ 75 %, short-job led | {} = {:.0} %, {:.0} % short, {:.0} % chains |",
            a.label,
            100.0 * a.fraction,
            100.0 * a.short_fraction,
            100.0 * a.chain_fraction
        )
        .unwrap();
        writeln!(
            s,
            "| large-job groups separate | B–E mean sizes grow | max group mean size {max_mean:.1} vs A {:.1} |",
            a.mean_size
        )
        .unwrap();
        writeln!(
            s,
            "| clustering quality | (not reported) | silhouette {:.3} |",
            self.groups.silhouette
        )
        .unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{Pipeline, PipelineConfig};

    #[test]
    fn summary_renders_groups() {
        let report = Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 30,
            seed: 3,
            ..Default::default()
        })
        .run()
        .unwrap();
        let s = report.summary();
        assert!(s.contains("== groups"));
        assert!(s.contains('A'));
        assert!(s.lines().count() > 10);
        assert_eq!(report.kernel_dags().len(), 30);
        assert_eq!(report.kernel_features().len(), 30);
    }
}
