//! Pipeline configuration.

use dagscope_cluster::ClusterCount;
use dagscope_trace::gen::GeneratorConfig;

/// Which base kernel instantiates eq. (1) of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseKernel {
    /// The WL subtree kernel (the paper's primary instantiation).
    WlSubtree,
    /// The shortest-path kernel (the alternative eq. (1) names).
    ShortestPath,
}

/// Which spectral-clustering engine the pipeline should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEngine {
    /// Dense NJW over the expanded n×n similarity matrix — the paper's
    /// procedure verbatim, bit-identical across runs. O(n²) memory.
    Dense,
    /// Sparse collapsed path: CSR unique-shape affinity + Lanczos
    /// smallest-k eigenpairs, weighted by shape multiplicities. O(nnz)
    /// affinity memory; partition-equivalent to dense (ARI 1.0), not
    /// floating-point-identical. Requires `dedup_shapes`.
    Collapsed,
    /// Dense at paper scale (preserving bit-identity with prior runs),
    /// collapsed once the sample outgrows [`AUTO_DENSE_MAX`] jobs.
    Auto,
}

/// Largest sample the `Auto` engine still clusters densely.
pub const AUTO_DENSE_MAX: usize = 512;

/// The engine a run actually used, after `Auto` resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Dense NJW ran.
    Dense,
    /// The collapsed sparse engine ran.
    Collapsed,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Dense => "dense",
            EngineKind::Collapsed => "collapsed",
        })
    }
}

/// Configuration of the end-to-end characterization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Number of synthetic jobs in the trace.
    pub jobs: usize,
    /// Jobs in the stratified analysis sample (the paper uses 100).
    pub sample: usize,
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// WL refinement iterations (the paper's `n`; 3 by default).
    pub wl_iterations: usize,
    /// Cluster-count policy (the paper fixes 5 groups).
    pub clusters: ClusterCount,
    /// Run the kernel/clustering stage on conflated DAGs (the paper
    /// conflates before estimating structure; set to `false` for the
    /// ablation).
    pub conflate: bool,
    /// Base kernel for the similarity stage.
    pub base_kernel: BaseKernel,
    /// Collapse bitwise-identical WL feature vectors before the Gram
    /// assembly (fingerprint dedup + inverted-index kernel). Results are
    /// bit-identical to the brute-force path either way; `false` forces
    /// the O(n²) pairwise scan (kept for oracle comparisons).
    pub dedup_shapes: bool,
    /// Spectral-clustering engine (dense NJW, sparse collapsed, or
    /// size-based auto selection).
    pub cluster_engine: ClusterEngine,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            jobs: 2_000,
            sample: 100,
            seed: 42,
            wl_iterations: 3,
            clusters: ClusterCount::Fixed(5),
            conflate: true,
            base_kernel: BaseKernel::WlSubtree,
            dedup_shapes: true,
            cluster_engine: ClusterEngine::Auto,
        }
    }
}

impl PipelineConfig {
    /// The generator configuration this pipeline config induces.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            jobs: self.jobs,
            seed: self.seed,
            ..GeneratorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.sample, 100);
        assert_eq!(c.wl_iterations, 3);
        assert_eq!(c.clusters, ClusterCount::Fixed(5));
        assert!(c.conflate);
        assert_eq!(c.base_kernel, BaseKernel::WlSubtree);
        assert!(c.dedup_shapes, "the sparse Gram engine is the default");
        assert_eq!(c.cluster_engine, ClusterEngine::Auto);
        assert_eq!(c.generator().jobs, c.jobs);
        assert_eq!(c.generator().seed, c.seed);
    }
}
