//! Pipeline configuration.

use dagscope_cluster::ClusterCount;
use dagscope_trace::gen::GeneratorConfig;

/// Which base kernel instantiates eq. (1) of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseKernel {
    /// The WL subtree kernel (the paper's primary instantiation).
    WlSubtree,
    /// The shortest-path kernel (the alternative eq. (1) names).
    ShortestPath,
}

/// Configuration of the end-to-end characterization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Number of synthetic jobs in the trace.
    pub jobs: usize,
    /// Jobs in the stratified analysis sample (the paper uses 100).
    pub sample: usize,
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// WL refinement iterations (the paper's `n`; 3 by default).
    pub wl_iterations: usize,
    /// Cluster-count policy (the paper fixes 5 groups).
    pub clusters: ClusterCount,
    /// Run the kernel/clustering stage on conflated DAGs (the paper
    /// conflates before estimating structure; set to `false` for the
    /// ablation).
    pub conflate: bool,
    /// Base kernel for the similarity stage.
    pub base_kernel: BaseKernel,
    /// Collapse bitwise-identical WL feature vectors before the Gram
    /// assembly (fingerprint dedup + inverted-index kernel). Results are
    /// bit-identical to the brute-force path either way; `false` forces
    /// the O(n²) pairwise scan (kept for oracle comparisons).
    pub dedup_shapes: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            jobs: 2_000,
            sample: 100,
            seed: 42,
            wl_iterations: 3,
            clusters: ClusterCount::Fixed(5),
            conflate: true,
            base_kernel: BaseKernel::WlSubtree,
            dedup_shapes: true,
        }
    }
}

impl PipelineConfig {
    /// The generator configuration this pipeline config induces.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            jobs: self.jobs,
            seed: self.seed,
            ..GeneratorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.sample, 100);
        assert_eq!(c.wl_iterations, 3);
        assert_eq!(c.clusters, ClusterCount::Fixed(5));
        assert!(c.conflate);
        assert_eq!(c.base_kernel, BaseKernel::WlSubtree);
        assert!(c.dedup_shapes, "the sparse Gram engine is the default");
        assert_eq!(c.generator().jobs, c.jobs);
        assert_eq!(c.generator().seed, c.seed);
    }
}
