//! Baseline comparison: the paper's WL + spectral grouping versus the
//! related-work alternatives.
//!
//! Section VII cites prior Alibaba-trace studies (e.g. Chen et al.,
//! ICPADS'18) that cluster jobs by *statistical properties* (size, depth,
//! parallelism, resource totals) with k-means, ignoring topology. This
//! module runs that baseline, plus average-linkage hierarchical clustering
//! on the same WL distances, and quantifies the agreement with the paper's
//! spectral groups via the adjusted Rand index — making the "what does
//! graph learning add?" question measurable.

use dagscope_cluster::validation::{kernel_distance_matrix, silhouette_from_distances};
use dagscope_cluster::{adjusted_rand_index, agglomerative, kmeans, purity, KMeansConfig};
use dagscope_linalg::Matrix;

use crate::Report;

/// Outcome of the baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Number of clusters used by every method.
    pub k: usize,
    /// Spectral (paper) assignments, copied from the report.
    pub spectral: Vec<usize>,
    /// Statistical-feature k-means assignments (topology-blind baseline).
    pub stat_kmeans: Vec<usize>,
    /// Hierarchical (average-linkage) assignments on the WL distances.
    pub hierarchical: Vec<usize>,
    /// ARI between spectral and the statistical baseline.
    pub ari_spectral_vs_stat: f64,
    /// ARI between spectral and hierarchical on the same kernel.
    pub ari_spectral_vs_hier: f64,
    /// Purity of the statistical baseline against the spectral reference.
    pub purity_stat_vs_spectral: f64,
    /// Kernel-space silhouettes: (spectral, stat k-means, hierarchical).
    pub silhouettes: (f64, f64, f64),
}

/// Z-score normalize feature columns so k-means is scale-free.
fn zscore_rows(rows: Vec<Vec<f64>>) -> Matrix {
    let n = rows.len();
    let d = rows.first().map_or(0, Vec::len);
    let mut means = vec![0.0f64; d];
    for r in &rows {
        for (m, x) in means.iter_mut().zip(r) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= n.max(1) as f64;
    }
    let mut stds = vec![0.0f64; d];
    for r in &rows {
        for j in 0..d {
            stds[j] += (r[j] - means[j]).powi(2);
        }
    }
    for s in &mut stds {
        *s = (*s / n.max(1) as f64).sqrt().max(1e-12);
    }
    let mut m = Matrix::zeros(n, d);
    for (i, r) in rows.iter().enumerate() {
        for j in 0..d {
            m[(i, j)] = (r[j] - means[j]) / stds[j];
        }
    }
    m
}

/// Run the comparison on a finished pipeline report.
pub fn compare_baselines(report: &Report, seed: u64) -> BaselineComparison {
    let k = report.groups.group_count();
    let spectral = report.groups.assignments.clone();

    // Topology-blind baseline: k-means on z-scored statistical features of
    // the raw DAGs.
    let rows: Vec<Vec<f64>> = report.features_raw.iter().map(|f| f.as_vector()).collect();
    let pts = zscore_rows(rows);
    let stat = kmeans(
        &pts,
        &KMeansConfig {
            k,
            seed,
            n_init: 10,
            max_iters: 200,
        },
    );

    // Hierarchical on the same WL kernel distances. Baselines run at
    // sample scale, so materializing the dense view of a collapsed run
    // is affordable here.
    let distances = kernel_distance_matrix(&report.similarity.to_sym());
    let hier = agglomerative(&distances, k);

    let silhouettes = (
        silhouette_from_distances(&distances, &spectral, k),
        silhouette_from_distances(&distances, &stat.assignments, k),
        silhouette_from_distances(&distances, &hier.assignments, k),
    );

    BaselineComparison {
        k,
        ari_spectral_vs_stat: adjusted_rand_index(&spectral, &stat.assignments),
        ari_spectral_vs_hier: adjusted_rand_index(&spectral, &hier.assignments),
        purity_stat_vs_spectral: purity(&stat.assignments, &spectral),
        spectral,
        stat_kmeans: stat.assignments,
        hierarchical: hier.assignments,
        silhouettes,
    }
}

impl BaselineComparison {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "baseline comparison (k = {})", self.k).unwrap();
        writeln!(
            s,
            "ARI spectral vs statistical k-means: {:.3}",
            self.ari_spectral_vs_stat
        )
        .unwrap();
        writeln!(
            s,
            "ARI spectral vs hierarchical (same kernel): {:.3}",
            self.ari_spectral_vs_hier
        )
        .unwrap();
        writeln!(
            s,
            "purity of statistical baseline against spectral: {:.3}",
            self.purity_stat_vs_spectral
        )
        .unwrap();
        writeln!(
            s,
            "kernel-space silhouette — spectral {:.3}, stat k-means {:.3}, hierarchical {:.3}",
            self.silhouettes.0, self.silhouettes.1, self.silhouettes.2
        )
        .unwrap();
        s
    }
}

/// Conflation-stability ablation: run the pipeline twice — kernel on
/// conflated vs raw DAGs — and report the ARI between the two groupings.
/// A high value means conflation is a pure speed-up (the grouping is a
/// property of the topology, not of the merge step).
pub fn conflation_stability(cfg: &crate::PipelineConfig) -> Result<f64, String> {
    let with = crate::Pipeline::new(crate::PipelineConfig {
        conflate: true,
        ..cfg.clone()
    })
    .run()?;
    let without = crate::Pipeline::new(crate::PipelineConfig {
        conflate: false,
        ..cfg.clone()
    })
    .run()?;
    Ok(adjusted_rand_index(
        &with.groups.assignments,
        &without.groups.assignments,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};
    use dagscope_cluster::validation::is_partition;

    fn report() -> Report {
        Pipeline::new(PipelineConfig {
            jobs: 500,
            sample: 60,
            seed: 23,
            ..Default::default()
        })
        .run()
        .unwrap()
    }

    #[test]
    fn comparison_runs_and_is_consistent() {
        let r = report();
        let cmp = compare_baselines(&r, 23);
        assert_eq!(cmp.k, 5);
        assert_eq!(cmp.spectral.len(), 60);
        assert!(is_partition(&cmp.stat_kmeans, 5));
        assert!(is_partition(&cmp.hierarchical, 5));
        // ARIs are in the legal range.
        for ari in [cmp.ari_spectral_vs_stat, cmp.ari_spectral_vs_hier] {
            assert!((-1.0..=1.0).contains(&ari), "ari {ari}");
        }
        assert!((0.0..=1.0).contains(&cmp.purity_stat_vs_spectral));
        assert!(cmp.render().contains("ARI"));
    }

    #[test]
    fn hierarchical_agrees_more_than_topology_blind_baseline() {
        // Two methods on the same kernel should agree with each other more
        // than a topology-blind method does — the measurable version of
        // "graph learning adds information".
        let r = report();
        let cmp = compare_baselines(&r, 23);
        assert!(
            cmp.ari_spectral_vs_hier >= cmp.ari_spectral_vs_stat,
            "hier {} < stat {}",
            cmp.ari_spectral_vs_hier,
            cmp.ari_spectral_vs_stat
        );
        // Spectral groups score a healthy silhouette in their own space.
        assert!(
            cmp.silhouettes.0 > 0.2,
            "spectral silhouette {}",
            cmp.silhouettes.0
        );
    }

    #[test]
    fn conflation_is_mostly_grouping_neutral() {
        let ari = conflation_stability(&PipelineConfig {
            jobs: 500,
            sample: 60,
            seed: 23,
            ..Default::default()
        })
        .unwrap();
        // Conflation changes what the kernel sees for convergent shapes, so
        // perfect agreement is not expected — but the groupings must remain
        // strongly related, far above chance.
        assert!(ari > 0.3, "conflation ARI {ari}");
    }

    #[test]
    fn zscore_normalizes() {
        let m = zscore_rows(vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]]);
        // Column means ~0, stds ~1.
        for j in 0..2 {
            let col = m.col(j);
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            let var: f64 = col.iter().map(|x| x * x).sum::<f64>() / 3.0;
            assert!((var - 1.0).abs() < 1e-9);
        }
    }
}
