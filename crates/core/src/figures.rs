//! One regenerator per paper figure.
//!
//! Each `figN_*` function derives the figure's underlying data from a
//! [`Report`] and renders a terminal version of the plot, so
//! `examples/characterize.rs --figure N` and the benches in
//! `dagscope-bench` reproduce every figure of the evaluation.

use std::collections::BTreeMap;
use std::fmt::Write;

use dagscope_graph::metrics::{size_group_table, SizeGroupRow};
use dagscope_graph::pattern::PatternCensus;
use dagscope_graph::tasktype::{type_census, TypeCensusRow};
use dagscope_graph::{render, JobDag};
use dagscope_linalg::SymMatrix;

use crate::{Report, Similarity};

/// Fig 2 — job-level abstraction of sampled DAG batch jobs: ASCII level
/// renderings of the first `count` sample DAGs.
pub fn fig2_sample_dags(report: &Report, count: usize) -> String {
    let mut s = String::new();
    writeln!(s, "Fig 2: sample of job-level DAG abstractions").unwrap();
    for dag in report.raw_dags.iter().take(count) {
        writeln!(s, "\n{} ({} tasks):", dag.name, dag.len()).unwrap();
        s.push_str(&render::to_ascii(dag));
    }
    s
}

/// The Fig 3 dataset: DAG size histograms before and after conflation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflationHistogram {
    /// `size → job count` before conflation.
    pub before: BTreeMap<usize, usize>,
    /// `size → job count` after conflation.
    pub after: BTreeMap<usize, usize>,
}

impl ConflationHistogram {
    /// Fraction of jobs at or below `size` (CDF) in the chosen histogram.
    pub fn cdf(&self, after: bool, size: usize) -> f64 {
        let h = if after { &self.after } else { &self.before };
        let total: usize = h.values().sum();
        if total == 0 {
            return 0.0;
        }
        let small: usize = h.iter().filter(|(s, _)| **s <= size).map(|(_, c)| c).sum();
        small as f64 / total as f64
    }

    /// Render as a two-column histogram table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        writeln!(s, "Fig 3: DAG job sizes before and after node conflation").unwrap();
        writeln!(s, "{:>5} {:>8} {:>8}", "size", "before", "after").unwrap();
        let sizes: std::collections::BTreeSet<usize> = self
            .before
            .keys()
            .chain(self.after.keys())
            .copied()
            .collect();
        for size in sizes {
            writeln!(
                s,
                "{:>5} {:>8} {:>8}",
                size,
                self.before.get(&size).copied().unwrap_or(0),
                self.after.get(&size).copied().unwrap_or(0)
            )
            .unwrap();
        }
        s
    }
}

/// Fig 3 — size distribution before vs after conflation.
pub fn fig3_conflation(report: &Report) -> ConflationHistogram {
    let mut before = BTreeMap::new();
    let mut after = BTreeMap::new();
    for d in &report.raw_dags {
        *before.entry(d.len()).or_insert(0) += 1;
    }
    for d in &report.conflated_dags {
        *after.entry(d.len()).or_insert(0) += 1;
    }
    ConflationHistogram { before, after }
}

/// Render a Fig 4 / Fig 5 size-group table.
pub fn render_size_groups(title: &str, rows: &[SizeGroupRow]) -> String {
    let mut s = String::new();
    writeln!(s, "{title}").unwrap();
    writeln!(
        s,
        "{:>5} {:>6} {:>17} {:>10}",
        "size", "jobs", "max critical path", "max width"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:>5} {:>6} {:>17} {:>10}",
            r.size, r.jobs, r.max_critical_path, r.max_width
        )
        .unwrap();
    }
    s
}

/// Fig 4 — per-size-group job count, max critical path and max width
/// *before* conflation.
pub fn fig4_size_groups(report: &Report) -> Vec<SizeGroupRow> {
    size_group_table(&report.features_raw)
}

/// Fig 5 — the same measurements *after* conflation.
pub fn fig5_size_groups(report: &Report) -> Vec<SizeGroupRow> {
    size_group_table(&report.features_conflated)
}

/// Fig 6 — per-job Map/Join/Reduce task composition of the sample.
pub fn fig6_type_distribution(report: &Report) -> Vec<TypeCensusRow> {
    let mut rows = type_census(&report.raw_dags);
    rows.sort_by_key(|r| (r.size, r.name.clone()));
    rows
}

/// Render the Fig 6 rows as a stacked-bar-style table.
pub fn render_type_distribution(rows: &[TypeCensusRow]) -> String {
    let mut s = String::new();
    writeln!(s, "Fig 6: distribution of Map-Join-Reduce tasks per job").unwrap();
    writeln!(
        s,
        "{:<14} {:>4} {:>3} {:>3} {:>3}  model",
        "job", "size", "M", "J", "R"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<14} {:>4} {:>3} {:>3} {:>3}  {}",
            r.name,
            r.size,
            r.counts.m,
            r.counts.j,
            r.counts.r,
            r.model.label()
        )
        .unwrap();
    }
    s
}

/// Render the Fig 7 similarity matrix as an ASCII heat map (shade ramp
/// `.:-=+*#%@`, diagonal marked `@`).
pub fn fig7_heatmap(similarity: &Similarity) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let n = similarity.n();
    let mut s = String::new();
    writeln!(s, "Fig 7: pairwise WL similarity ({n}×{n}, ' '=0 … '@'=1)").unwrap();
    for i in 0..n {
        for j in 0..n {
            let v = similarity.get(i, j).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            s.push(RAMP[idx] as char);
        }
        s.push('\n');
    }
    s
}

/// Summary statistics of the off-diagonal similarity mass — the numbers the
/// paper discusses alongside Fig 7.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilaritySummary {
    /// Mean off-diagonal similarity.
    pub mean: f64,
    /// Minimum off-diagonal similarity.
    pub min: f64,
    /// Maximum off-diagonal similarity.
    pub max: f64,
    /// Number of identical pairs (similarity ≈ 1).
    pub identical_pairs: usize,
}

/// Compute the off-diagonal summary of a similarity matrix.
///
/// Dense runs scan all pairs; collapsed runs aggregate per stored CSR
/// entry weighted by shape multiplicities (`O(m + nnz)` — absent entries
/// are exact zeros, counted in bulk), so the summary never expands n×n.
pub fn fig7_summary(similarity: &Similarity) -> SimilaritySummary {
    match similarity {
        Similarity::Dense(m) => fig7_summary_dense(m),
        Similarity::Collapsed { unique, shape_of } => fig7_summary_collapsed(unique, shape_of),
    }
}

fn fig7_summary_dense(similarity: &SymMatrix) -> SimilaritySummary {
    let n = similarity.n();
    let mut mean = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut identical = 0usize;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let v = similarity.get(i, j);
            mean += v;
            min = min.min(v);
            max = max.max(v);
            if v > 1.0 - 1e-9 {
                identical += 1;
            }
            count += 1;
        }
    }
    if count > 0 {
        mean /= count as f64;
    } else {
        min = 0.0;
        max = 0.0;
    }
    SimilaritySummary {
        mean,
        min,
        max,
        identical_pairs: identical,
    }
}

fn fig7_summary_collapsed(
    unique: &dagscope_linalg::CsrSym,
    shape_of: &[usize],
) -> SimilaritySummary {
    let n = shape_of.len();
    let total_pairs = n * n.saturating_sub(1) / 2;
    if total_pairs == 0 {
        return SimilaritySummary {
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            identical_pairs: 0,
        };
    }
    // Shape multiplicities.
    let mut w = vec![0usize; unique.n()];
    for &s in shape_of {
        w[s] += 1;
    }
    let mut sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut identical = 0usize;
    let mut covered = 0usize;
    // One visit per stored upper-triangle entry. A diagonal entry stands
    // for the within-shape pairs (all at the shape's self-similarity); an
    // off-diagonal (a, b) entry stands for w_a·w_b cross pairs.
    for a in 0..unique.n() {
        let (cols, vals) = unique.row(a);
        for (&b, &v) in cols.iter().zip(vals) {
            let b = b as usize;
            if b < a {
                continue;
            }
            let pairs = if b == a {
                w[a] * w[a].saturating_sub(1) / 2
            } else {
                w[a] * w[b]
            };
            if pairs == 0 {
                continue;
            }
            sum += v * pairs as f64;
            min = min.min(v);
            max = max.max(v);
            if v > 1.0 - 1e-9 {
                identical += pairs;
            }
            covered += pairs;
        }
    }
    // Every pair without a stored entry is an exact zero (disjoint WL
    // feature sets — or a zero φ vector, whose diagonal is also absent).
    if covered < total_pairs {
        min = min.min(0.0);
        max = max.max(0.0);
    }
    if covered == 0 {
        min = 0.0;
        max = 0.0;
    }
    SimilaritySummary {
        mean: sum / total_pairs as f64,
        min,
        max,
        identical_pairs: identical,
    }
}

/// Fig 8 — the representative (medoid) DAG of every group, rendered as
/// ASCII levels.
pub fn fig8_representatives(report: &Report) -> String {
    let mut s = String::new();
    writeln!(s, "Fig 8: clustering groups and representative jobs").unwrap();
    let dags = report.kernel_dags();
    for g in &report.groups.groups {
        writeln!(
            s,
            "\nGroup {} ({} jobs, {:.1} %) — representative {}:",
            g.label,
            g.population,
            100.0 * g.fraction,
            g.representative
        )
        .unwrap();
        if let Some(dag) = dags.iter().find(|d| d.name == g.representative) {
            s.push_str(&render::to_ascii(dag));
        }
    }
    s
}

/// One row of the Fig 9 group-property table.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPropertyRow {
    /// Group label (A–E).
    pub label: char,
    /// Population and fraction.
    pub population: usize,
    /// Fraction of the sample.
    pub fraction: f64,
    /// Size distribution (min, median, max).
    pub size_mmm: (usize, usize, usize),
    /// Critical-path distribution (min, median, max).
    pub cp_mmm: (usize, usize, usize),
    /// Max-parallelism distribution (min, median, max).
    pub width_mmm: (usize, usize, usize),
    /// Mean size (the paper's B/A ≈ 1.55 comparison).
    pub mean_size: f64,
}

fn mmm(values: &[usize]) -> (usize, usize, usize) {
    if values.is_empty() {
        return (0, 0, 0);
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    (v[0], v[v.len() / 2], v[v.len() - 1])
}

/// Fig 9 — per-group population plus size / critical-path / parallelism
/// distributions.
pub fn fig9_group_properties(report: &Report) -> Vec<GroupPropertyRow> {
    report
        .groups
        .groups
        .iter()
        .map(|g| GroupPropertyRow {
            label: g.label,
            population: g.population,
            fraction: g.fraction,
            size_mmm: mmm(&g.sizes),
            cp_mmm: mmm(&g.critical_paths),
            width_mmm: mmm(&g.max_widths),
            mean_size: g.mean_size,
        })
        .collect()
}

/// Render the Fig 9 table.
pub fn render_group_properties(rows: &[GroupPropertyRow]) -> String {
    let mut s = String::new();
    writeln!(s, "Fig 9: properties of job DAGs in cluster groups").unwrap();
    writeln!(
        s,
        "{:<6} {:>5} {:>6} {:>15} {:>15} {:>15} {:>9}",
        "group", "jobs", "frac", "size min/med/max", "cp min/med/max", "width m/m/m", "mean size"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<6} {:>5} {:>5.1}% {:>15} {:>15} {:>15} {:>9.2}",
            r.label,
            r.population,
            100.0 * r.fraction,
            format!("{}/{}/{}", r.size_mmm.0, r.size_mmm.1, r.size_mmm.2),
            format!("{}/{}/{}", r.cp_mmm.0, r.cp_mmm.1, r.cp_mmm.2),
            format!("{}/{}/{}", r.width_mmm.0, r.width_mmm.1, r.width_mmm.2),
            r.mean_size
        )
        .unwrap();
    }
    s
}

/// Per-group shape composition: which of the paper's named patterns each
/// cluster is made of (Section VI discusses exactly this — group A "involves
/// inverted triangle, straight chain, and diamonds", groups C/E are
/// diffuse).
pub fn group_shape_composition(report: &Report) -> Vec<(char, PatternCensus)> {
    report
        .groups
        .groups
        .iter()
        .map(|g| {
            let members: Vec<dagscope_graph::JobDag> = report
                .raw_dags
                .iter()
                .enumerate()
                .filter(|(i, _)| report.groups.assignments[*i] == g.cluster)
                .map(|(_, d)| d.clone())
                .collect();
            (g.label, PatternCensus::compute(&members))
        })
        .collect()
}

/// Render the per-group shape composition as a compact table.
pub fn render_group_shapes(rows: &[(char, PatternCensus)]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Group shape composition (share of each pattern per group)"
    )
    .unwrap();
    write!(s, "{:<6}", "group").unwrap();
    if let Some((_, first)) = rows.first() {
        for (label, _) in &first.counts {
            write!(s, " {:>9}", &label[..label.len().min(9)]).unwrap();
        }
    }
    s.push('\n');
    for (g, census) in rows {
        write!(s, "{g:<6}").unwrap();
        for (label, _) in &census.counts {
            write!(s, " {:>8.0}%", 100.0 * census.fraction(label)).unwrap();
        }
        s.push('\n');
    }
    s
}

/// Section V-B — the shape-pattern census over a DAG population (the
/// 58 % chain / 37 % inverted-triangle headline, E6).
pub fn pattern_census_of(dags: &[JobDag]) -> PatternCensus {
    PatternCensus::compute(dags)
}

/// Render a pattern census.
pub fn render_pattern_census(census: &PatternCensus) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Section V-B: shape-pattern census over {} DAG jobs",
        census.total
    )
    .unwrap();
    for (label, count) in &census.counts {
        let frac = if census.total > 0 {
            100.0 * *count as f64 / census.total as f64
        } else {
            0.0
        };
        writeln!(s, "{label:<20} {count:>8} ({frac:>5.1} %)").unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};

    fn report() -> Report {
        Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 30,
            seed: 11,
            ..Default::default()
        })
        .run()
        .unwrap()
    }

    #[test]
    fn fig2_renders_requested_count() {
        let r = report();
        let s = fig2_sample_dags(&r, 3);
        assert_eq!(s.matches("tasks):").count(), 3);
        assert!(s.contains("L0:"));
    }

    #[test]
    fn fig3_mass_conserved_and_shifted_left() {
        let r = report();
        let h = fig3_conflation(&r);
        let before_total: usize = h.before.values().sum();
        let after_total: usize = h.after.values().sum();
        assert_eq!(before_total, after_total);
        assert_eq!(before_total, 30);
        // Paper: the ratio of smaller jobs increases after merging.
        assert!(h.cdf(true, 3) >= h.cdf(false, 3));
        assert!(h.render().contains("before"));
    }

    #[test]
    fn fig4_fig5_tables() {
        let r = report();
        let f4 = fig4_size_groups(&r);
        let f5 = fig5_size_groups(&r);
        assert!(!f4.is_empty() && !f5.is_empty());
        let total4: usize = f4.iter().map(|r| r.jobs).sum();
        assert_eq!(total4, 30);
        // Critical path within published bounds.
        for row in &f4 {
            assert!(row.max_critical_path >= 1 && row.max_critical_path <= 8);
            assert!(row.max_width < 32);
        }
        let rendered = render_size_groups("Fig 4", &f4);
        assert!(rendered.contains("max critical path"));
    }

    #[test]
    fn fig6_rows_cover_sample() {
        let r = report();
        let rows = fig6_type_distribution(&r);
        assert_eq!(rows.len(), 30);
        for w in rows.windows(2) {
            assert!(w[0].size <= w[1].size, "rows sorted by size");
        }
        for row in &rows {
            assert_eq!(row.counts.total() as usize, row.size);
        }
        assert!(render_type_distribution(&rows).contains("model"));
    }

    #[test]
    fn fig7_heatmap_and_summary() {
        let r = report();
        let map = fig7_heatmap(&r.similarity);
        let lines: Vec<&str> = map.lines().skip(1).collect();
        assert_eq!(lines.len(), 30);
        assert!(lines.iter().all(|l| l.len() == 30));
        // Diagonal is the max shade.
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.as_bytes()[i], b'@');
        }
        let sum = fig7_summary(&r.similarity);
        assert!(sum.min >= 0.0 && sum.max <= 1.0 + 1e-9);
        assert!(sum.mean > 0.0 && sum.mean < 1.0);
    }

    #[test]
    fn fig7_summary_degenerate() {
        let s = fig7_summary(&Similarity::Dense(dagscope_linalg::SymMatrix::zeros(1)));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.identical_pairs, 0);
        let c = fig7_summary(&Similarity::Collapsed {
            unique: dagscope_linalg::CsrSym::from_sym(&dagscope_linalg::SymMatrix::zeros(1)),
            shape_of: vec![0],
        });
        assert_eq!(c.mean, 0.0);
        assert_eq!(c.identical_pairs, 0);
    }

    #[test]
    fn fig7_summary_collapsed_matches_dense_expansion() {
        // Dense oracle: expand the collapsed view and summarize all pairs.
        let mut unique = dagscope_linalg::SymMatrix::zeros(3);
        unique.set(0, 0, 1.0);
        unique.set(1, 1, 1.0);
        unique.set(0, 1, 0.25);
        // Shape 2 has a zero φ vector: absent row, zero diagonal.
        let shape_of = vec![0, 0, 1, 2, 2, 1];
        let collapsed = Similarity::Collapsed {
            unique: dagscope_linalg::CsrSym::from_sym(&unique),
            shape_of: shape_of.clone(),
        };
        let dense = Similarity::Dense((*collapsed.to_sym()).clone());
        let fast = fig7_summary(&collapsed);
        let slow = fig7_summary(&dense);
        assert!((fast.mean - slow.mean).abs() < 1e-12);
        assert_eq!(fast.min, slow.min);
        assert_eq!(fast.max, slow.max);
        assert_eq!(fast.identical_pairs, slow.identical_pairs);
    }

    #[test]
    fn fig8_contains_every_group() {
        let r = report();
        let s = fig8_representatives(&r);
        for g in &r.groups.groups {
            assert!(s.contains(&format!("Group {}", g.label)));
            assert!(s.contains(&g.representative));
        }
    }

    #[test]
    fn fig9_rows_consistent() {
        let r = report();
        let rows = fig9_group_properties(&r);
        assert_eq!(rows.len(), 5);
        let pop: usize = rows.iter().map(|r| r.population).sum();
        assert_eq!(pop, 30);
        for row in &rows {
            assert!(row.size_mmm.0 <= row.size_mmm.1 && row.size_mmm.1 <= row.size_mmm.2);
            assert!(row.cp_mmm.2 <= 8);
        }
        assert!(render_group_properties(&rows).contains("group"));
    }

    #[test]
    fn census_renders() {
        let r = report();
        let census = pattern_census_of(&r.raw_dags);
        assert_eq!(census.total, 30);
        assert!(render_pattern_census(&census).contains("straight-chain"));
    }

    #[test]
    fn group_shapes_partition_the_sample() {
        let r = report();
        let rows = group_shape_composition(&r);
        assert_eq!(rows.len(), 5);
        let total: usize = rows.iter().map(|(_, c)| c.total).sum();
        assert_eq!(total, 30);
        let rendered = render_group_shapes(&rows);
        assert!(rendered.contains("group"));
        assert!(rendered.lines().count() >= 6);
    }

    #[test]
    fn mmm_of_empty() {
        assert_eq!(mmm(&[]), (0, 0, 0));
        assert_eq!(mmm(&[4]), (4, 4, 4));
        assert_eq!(mmm(&[3, 1, 2]), (1, 2, 3));
    }
}
