//! Per-cluster group analysis (Section VI, Figs 8–9).

use serde::{Deserialize, Serialize};

use dagscope_graph::metrics::JobFeatures;
use dagscope_graph::pattern::{self, Pattern};
use dagscope_graph::JobDag;
use dagscope_linalg::{CsrSym, SymMatrix};
use dagscope_trace::gen::ShapeKind;

/// Statistics of one clustered group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Group label (`'A'` for the most populated, then `'B'`, …) — the
    /// paper orders its five groups the same way.
    pub label: char,
    /// Cluster index in the raw assignment vector.
    pub cluster: usize,
    /// Number of sample jobs in the group.
    pub population: usize,
    /// Fraction of the sample.
    pub fraction: f64,
    /// Job sizes in the group.
    pub sizes: Vec<usize>,
    /// Critical paths in the group.
    pub critical_paths: Vec<usize>,
    /// Maximum widths (parallelism) in the group.
    pub max_widths: Vec<usize>,
    /// Mean job size.
    pub mean_size: f64,
    /// Share of straight-chain jobs.
    pub chain_fraction: f64,
    /// Share of short jobs (≤ 3 tasks) — the paper reports 90.6 % for A.
    pub short_fraction: f64,
    /// Medoid job name — the member most similar to the rest of the group,
    /// shown as the group's representative DAG in Fig 8.
    pub representative: String,
}

/// The full clustering analysis of the job sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAnalysis {
    /// Cluster assignment per sample index (raw cluster ids).
    pub assignments: Vec<usize>,
    /// Groups ordered by population (descending) and labeled `A`, `B`, ….
    pub groups: Vec<GroupStats>,
    /// Mean silhouette of the clustering in kernel-distance space.
    pub silhouette: f64,
}

impl GroupAnalysis {
    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group containing sample index `i`.
    pub fn group_of(&self, i: usize) -> &GroupStats {
        let c = self.assignments[i];
        self.groups
            .iter()
            .find(|g| g.cluster == c)
            .expect("cluster without group")
    }

    /// Build the analysis from cluster assignments, the sample's DAGs and
    /// features, and the normalized similarity matrix (for medoids and the
    /// silhouette).
    pub fn build(
        assignments: &[usize],
        k: usize,
        dags: &[JobDag],
        features: &[JobFeatures],
        similarity: &SymMatrix,
    ) -> GroupAnalysis {
        assert_eq!(assignments.len(), similarity.n());

        let distances = dagscope_cluster::validation::kernel_distance_matrix(similarity);
        let silhouette =
            dagscope_cluster::validation::silhouette_from_distances(&distances, assignments, k);

        // Medoid totals: member's summed similarity over its group.
        let totals = |ms: &[usize]| -> Vec<f64> {
            ms.iter()
                .map(|&i| ms.iter().map(|&j| similarity.get(i, j)).sum())
                .collect()
        };
        assemble(assignments, k, dags, features, &totals, silhouette)
    }

    /// Build the analysis for a collapsed run, never expanding the n×n
    /// similarity: medoids come from weighted unique-shape row scans and
    /// the silhouette from
    /// [`dagscope_cluster::validation::silhouette_collapsed`]. Equal to
    /// [`GroupAnalysis::build`] on the expanded matrix up to
    /// floating-point summation order.
    ///
    /// `unique` is the normalized unique-shape similarity, `shape_of`
    /// maps jobs to shapes, and `weights[a]` is shape `a`'s multiplicity.
    /// Collapsed clustering assigns whole shapes, so all jobs of one
    /// shape must share a cluster.
    pub fn build_collapsed(
        assignments: &[usize],
        k: usize,
        dags: &[JobDag],
        features: &[JobFeatures],
        unique: &CsrSym,
        shape_of: &[usize],
        weights: &[f64],
    ) -> GroupAnalysis {
        assert_eq!(assignments.len(), shape_of.len());
        assert_eq!(unique.n(), weights.len());
        // Recover per-shape clusters; shapes must not straddle clusters.
        let mut shape_cluster = vec![usize::MAX; unique.n()];
        for (i, &s) in shape_of.iter().enumerate() {
            if shape_cluster[s] == usize::MAX {
                shape_cluster[s] = assignments[i];
            } else {
                assert_eq!(
                    shape_cluster[s], assignments[i],
                    "jobs of shape {s} straddle clusters"
                );
            }
        }
        // Shapes absent from the sample (none, by construction) would
        // keep usize::MAX; map them to cluster 0 defensively.
        for c in shape_cluster.iter_mut() {
            if *c == usize::MAX {
                *c = 0;
            }
        }

        let silhouette =
            dagscope_cluster::validation::silhouette_collapsed(unique, weights, &shape_cluster, k);

        // Medoid totals per group: every member of shape `a` has the same
        // summed similarity U(a) = Σ_t count_g(t)·S(a, t), computed by one
        // sparse row scan per distinct member shape.
        let totals = |ms: &[usize]| -> Vec<f64> {
            let mut count_g: std::collections::HashMap<usize, f64> =
                std::collections::HashMap::new();
            for &i in ms {
                *count_g.entry(shape_of[i]).or_insert(0.0) += 1.0;
            }
            let mut u_of: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &a in count_g.keys() {
                let (cols, vals) = unique.row(a);
                let u = cols
                    .iter()
                    .zip(vals)
                    .filter_map(|(&t, &v)| count_g.get(&(t as usize)).map(|c| c * v))
                    .sum();
                u_of.insert(a, u);
            }
            ms.iter().map(|&i| u_of[&shape_of[i]]).collect()
        };
        assemble(assignments, k, dags, features, &totals, silhouette)
    }
}

/// Shared group-stat assembly: population ordering, labels, per-group
/// structural statistics, and medoid selection from precomputed member
/// totals (largest total wins; ties break to the last member, matching
/// `Iterator::max_by`).
fn assemble(
    assignments: &[usize],
    k: usize,
    dags: &[JobDag],
    features: &[JobFeatures],
    member_totals: &dyn Fn(&[usize]) -> Vec<f64>,
    silhouette: f64,
) -> GroupAnalysis {
    assert_eq!(assignments.len(), dags.len());
    assert_eq!(assignments.len(), features.len());
    let n = assignments.len();

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignments.iter().enumerate() {
        members[c].push(i);
    }

    // Order clusters by population descending and label them A, B, C, …
    // Population ties break on the earliest member in sample order — a
    // content-based key, so the labeling is invariant under the arbitrary
    // cluster numbering k-means happens to produce (dense and collapsed
    // engines agree on labels whenever they agree on the partition).
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&c| {
        (
            std::cmp::Reverse(members[c].len()),
            members[c].first().copied().unwrap_or(usize::MAX),
            c,
        )
    });

    let mut groups = Vec::with_capacity(k);
    for (rank, &c) in order.iter().enumerate() {
        let ms = &members[c];
        let sizes: Vec<usize> = ms.iter().map(|&i| features[i].size).collect();
        let critical_paths: Vec<usize> = ms.iter().map(|&i| features[i].critical_path).collect();
        let max_widths: Vec<usize> = ms.iter().map(|&i| features[i].max_width).collect();
        let mean_size = if ms.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / ms.len() as f64
        };
        let chains = ms
            .iter()
            .filter(|&&i| pattern::classify(&dags[i]) == Pattern::Shape(ShapeKind::Chain))
            .count();
        let short = sizes.iter().filter(|&&s| s <= 3).count();

        // Medoid: member with the largest total similarity to the rest.
        let totals = member_totals(ms);
        let representative = ms
            .iter()
            .zip(&totals)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(&i, _)| dags[i].name.clone())
            .unwrap_or_default();

        groups.push(GroupStats {
            label: (b'A' + rank as u8) as char,
            cluster: c,
            population: ms.len(),
            fraction: if n == 0 {
                0.0
            } else {
                ms.len() as f64 / n as f64
            },
            mean_size,
            chain_fraction: if ms.is_empty() {
                0.0
            } else {
                chains as f64 / ms.len() as f64
            },
            short_fraction: if ms.is_empty() {
                0.0
            } else {
                short as f64 / ms.len() as f64
            },
            sizes,
            critical_paths,
            max_widths,
            representative,
        });
    }

    GroupAnalysis {
        assignments: assignments.to_vec(),
        groups,
        silhouette,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_trace::{Job, Status, TaskRecord};

    fn t(name: &str) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: "j".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            plan_cpu: 1.0,
            plan_mem: 0.1,
        }
    }

    fn dag(name: &str, names: &[&str]) -> JobDag {
        JobDag::from_job(&Job {
            name: name.into(),
            tasks: names.iter().map(|n| t(n)).collect(),
        })
        .unwrap()
    }

    fn setup() -> (Vec<JobDag>, Vec<JobFeatures>, SymMatrix) {
        let dags = vec![
            dag("j_c1", &["M1", "R2_1"]),
            dag("j_c2", &["M1", "R2_1"]),
            dag("j_c3", &["M1", "R2_1", "R3_2"]),
            dag("j_t1", &["M1", "M2", "M3", "M4", "R5_4_3_2_1"]),
        ];
        let features: Vec<JobFeatures> = dags.iter().map(JobFeatures::extract).collect();
        let mut wl = dagscope_wl::WlVectorizer::new(3);
        let feats = wl.transform_all(&dags);
        let sim = dagscope_wl::normalize_kernel(&dagscope_wl::kernel_matrix(&feats));
        (dags, features, sim)
    }

    #[test]
    fn labels_follow_population_order() {
        let (dags, features, sim) = setup();
        // Cluster 1 is the big one (3 members) — must become group A.
        let assignments = vec![1, 1, 1, 0];
        let ga = GroupAnalysis::build(&assignments, 2, &dags, &features, &sim);
        assert_eq!(ga.group_count(), 2);
        assert_eq!(ga.groups[0].label, 'A');
        assert_eq!(ga.groups[0].cluster, 1);
        assert_eq!(ga.groups[0].population, 3);
        assert!((ga.groups[0].fraction - 0.75).abs() < 1e-12);
        assert_eq!(ga.groups[1].label, 'B');
        assert_eq!(ga.groups[1].population, 1);
    }

    #[test]
    fn group_stats_contents() {
        let (dags, features, sim) = setup();
        let ga = GroupAnalysis::build(&[0, 0, 0, 1], 2, &dags, &features, &sim);
        let a = &ga.groups[0];
        assert_eq!(a.sizes, vec![2, 2, 3]);
        assert!((a.mean_size - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.chain_fraction, 1.0);
        assert_eq!(a.short_fraction, 1.0);
        // Medoid of the chain group is one of the two identical 2-chains.
        assert!(a.representative.starts_with("j_c"));
        let b = &ga.groups[1];
        assert_eq!(b.sizes, vec![5]);
        assert_eq!(b.chain_fraction, 0.0);
        assert_eq!(b.representative, "j_t1");
    }

    #[test]
    fn group_of_resolves() {
        let (dags, features, sim) = setup();
        let ga = GroupAnalysis::build(&[0, 0, 0, 1], 2, &dags, &features, &sim);
        assert_eq!(ga.group_of(3).label, 'B');
        assert_eq!(ga.group_of(0).label, 'A');
    }

    #[test]
    fn silhouette_positive_for_sane_grouping() {
        let (dags, features, sim) = setup();
        let good = GroupAnalysis::build(&[0, 0, 0, 1], 2, &dags, &features, &sim);
        assert!(good.silhouette > 0.0, "silhouette {}", good.silhouette);
    }

    #[test]
    fn build_collapsed_matches_dense_build() {
        // j_c1 and j_c2 are the same WL shape, so the collapsed view has
        // three unique shapes with multiplicities [2, 1, 1].
        let (dags, features, sim) = setup();
        let wl_feats = {
            let mut wl = dagscope_wl::WlVectorizer::new(3);
            wl.transform_all(&dags)
        };
        let dedup = dagscope_wl::ShapeDedup::from_features(&wl_feats);
        assert_eq!(dedup.unique_count(), 3, "j_c1/j_c2 must collapse");
        let reps: Vec<&dagscope_wl::SparseVec> = dedup
            .representatives()
            .iter()
            .map(|&i| &wl_feats[i])
            .collect();
        let (gram, _) = dagscope_wl::unique_gram_sparse(&reps);
        let unique = dagscope_wl::normalize_unique_sparse(&gram);
        let weights = dedup.weights();

        let assignments = [0, 0, 0, 1];
        let dense = GroupAnalysis::build(&assignments, 2, &dags, &features, &sim);
        let collapsed = GroupAnalysis::build_collapsed(
            &assignments,
            2,
            &dags,
            &features,
            &unique,
            dedup.shape_of(),
            &weights,
        );
        assert_eq!(collapsed.assignments, dense.assignments);
        assert!(
            (collapsed.silhouette - dense.silhouette).abs() < 1e-12,
            "collapsed={} dense={}",
            collapsed.silhouette,
            dense.silhouette
        );
        for (c, d) in collapsed.groups.iter().zip(&dense.groups) {
            assert_eq!(c.label, d.label);
            assert_eq!(c.population, d.population);
            assert_eq!(c.sizes, d.sizes);
            assert_eq!(c.representative, d.representative, "medoids must agree");
        }
    }

    #[test]
    #[should_panic(expected = "straddle clusters")]
    fn build_collapsed_rejects_shape_straddling_clusters() {
        let (dags, features, _) = setup();
        let mut unique = dagscope_linalg::SymMatrix::zeros(3);
        for s in 0..3 {
            unique.set(s, s, 1.0);
        }
        let unique = CsrSym::from_sym(&unique);
        // Jobs 0 and 1 share shape 0 but sit in different clusters.
        GroupAnalysis::build_collapsed(
            &[0, 1, 0, 1],
            2,
            &dags,
            &features,
            &unique,
            &[0, 0, 1, 2],
            &[2.0, 1.0, 1.0],
        );
    }
}
