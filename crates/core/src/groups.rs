//! Per-cluster group analysis (Section VI, Figs 8–9).

use serde::{Deserialize, Serialize};

use dagscope_graph::metrics::JobFeatures;
use dagscope_graph::pattern::{self, Pattern};
use dagscope_graph::JobDag;
use dagscope_linalg::SymMatrix;
use dagscope_trace::gen::ShapeKind;

/// Statistics of one clustered group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Group label (`'A'` for the most populated, then `'B'`, …) — the
    /// paper orders its five groups the same way.
    pub label: char,
    /// Cluster index in the raw assignment vector.
    pub cluster: usize,
    /// Number of sample jobs in the group.
    pub population: usize,
    /// Fraction of the sample.
    pub fraction: f64,
    /// Job sizes in the group.
    pub sizes: Vec<usize>,
    /// Critical paths in the group.
    pub critical_paths: Vec<usize>,
    /// Maximum widths (parallelism) in the group.
    pub max_widths: Vec<usize>,
    /// Mean job size.
    pub mean_size: f64,
    /// Share of straight-chain jobs.
    pub chain_fraction: f64,
    /// Share of short jobs (≤ 3 tasks) — the paper reports 90.6 % for A.
    pub short_fraction: f64,
    /// Medoid job name — the member most similar to the rest of the group,
    /// shown as the group's representative DAG in Fig 8.
    pub representative: String,
}

/// The full clustering analysis of the job sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAnalysis {
    /// Cluster assignment per sample index (raw cluster ids).
    pub assignments: Vec<usize>,
    /// Groups ordered by population (descending) and labeled `A`, `B`, ….
    pub groups: Vec<GroupStats>,
    /// Mean silhouette of the clustering in kernel-distance space.
    pub silhouette: f64,
}

impl GroupAnalysis {
    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group containing sample index `i`.
    pub fn group_of(&self, i: usize) -> &GroupStats {
        let c = self.assignments[i];
        self.groups
            .iter()
            .find(|g| g.cluster == c)
            .expect("cluster without group")
    }

    /// Build the analysis from cluster assignments, the sample's DAGs and
    /// features, and the normalized similarity matrix (for medoids and the
    /// silhouette).
    pub fn build(
        assignments: &[usize],
        k: usize,
        dags: &[JobDag],
        features: &[JobFeatures],
        similarity: &SymMatrix,
    ) -> GroupAnalysis {
        assert_eq!(assignments.len(), dags.len());
        assert_eq!(assignments.len(), features.len());
        assert_eq!(assignments.len(), similarity.n());
        let n = assignments.len();

        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in assignments.iter().enumerate() {
            members[c].push(i);
        }

        // Order clusters by population descending (stable: by cluster id on
        // ties) and label them A, B, C, ...
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(members[c].len()), c));

        let mut groups = Vec::with_capacity(k);
        for (rank, &c) in order.iter().enumerate() {
            let ms = &members[c];
            let sizes: Vec<usize> = ms.iter().map(|&i| features[i].size).collect();
            let critical_paths: Vec<usize> =
                ms.iter().map(|&i| features[i].critical_path).collect();
            let max_widths: Vec<usize> = ms.iter().map(|&i| features[i].max_width).collect();
            let mean_size = if ms.is_empty() {
                0.0
            } else {
                sizes.iter().sum::<usize>() as f64 / ms.len() as f64
            };
            let chains = ms
                .iter()
                .filter(|&&i| pattern::classify(&dags[i]) == Pattern::Shape(ShapeKind::Chain))
                .count();
            let short = sizes.iter().filter(|&&s| s <= 3).count();

            // Medoid: member with the largest total similarity to the rest.
            let representative = ms
                .iter()
                .map(|&i| {
                    let total: f64 = ms.iter().map(|&j| similarity.get(i, j)).sum();
                    (i, total)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(i, _)| dags[i].name.clone())
                .unwrap_or_default();

            groups.push(GroupStats {
                label: (b'A' + rank as u8) as char,
                cluster: c,
                population: ms.len(),
                fraction: if n == 0 {
                    0.0
                } else {
                    ms.len() as f64 / n as f64
                },
                mean_size,
                chain_fraction: if ms.is_empty() {
                    0.0
                } else {
                    chains as f64 / ms.len() as f64
                },
                short_fraction: if ms.is_empty() {
                    0.0
                } else {
                    short as f64 / ms.len() as f64
                },
                sizes,
                critical_paths,
                max_widths,
                representative,
            });
        }

        let distances = dagscope_cluster::validation::kernel_distance_matrix(similarity);
        let silhouette =
            dagscope_cluster::validation::silhouette_from_distances(&distances, assignments, k);

        GroupAnalysis {
            assignments: assignments.to_vec(),
            groups,
            silhouette,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_trace::{Job, Status, TaskRecord};

    fn t(name: &str) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: "j".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            plan_cpu: 1.0,
            plan_mem: 0.1,
        }
    }

    fn dag(name: &str, names: &[&str]) -> JobDag {
        JobDag::from_job(&Job {
            name: name.into(),
            tasks: names.iter().map(|n| t(n)).collect(),
        })
        .unwrap()
    }

    fn setup() -> (Vec<JobDag>, Vec<JobFeatures>, SymMatrix) {
        let dags = vec![
            dag("j_c1", &["M1", "R2_1"]),
            dag("j_c2", &["M1", "R2_1"]),
            dag("j_c3", &["M1", "R2_1", "R3_2"]),
            dag("j_t1", &["M1", "M2", "M3", "M4", "R5_4_3_2_1"]),
        ];
        let features: Vec<JobFeatures> = dags.iter().map(JobFeatures::extract).collect();
        let mut wl = dagscope_wl::WlVectorizer::new(3);
        let feats = wl.transform_all(&dags);
        let sim = dagscope_wl::normalize_kernel(&dagscope_wl::kernel_matrix(&feats));
        (dags, features, sim)
    }

    #[test]
    fn labels_follow_population_order() {
        let (dags, features, sim) = setup();
        // Cluster 1 is the big one (3 members) — must become group A.
        let assignments = vec![1, 1, 1, 0];
        let ga = GroupAnalysis::build(&assignments, 2, &dags, &features, &sim);
        assert_eq!(ga.group_count(), 2);
        assert_eq!(ga.groups[0].label, 'A');
        assert_eq!(ga.groups[0].cluster, 1);
        assert_eq!(ga.groups[0].population, 3);
        assert!((ga.groups[0].fraction - 0.75).abs() < 1e-12);
        assert_eq!(ga.groups[1].label, 'B');
        assert_eq!(ga.groups[1].population, 1);
    }

    #[test]
    fn group_stats_contents() {
        let (dags, features, sim) = setup();
        let ga = GroupAnalysis::build(&[0, 0, 0, 1], 2, &dags, &features, &sim);
        let a = &ga.groups[0];
        assert_eq!(a.sizes, vec![2, 2, 3]);
        assert!((a.mean_size - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.chain_fraction, 1.0);
        assert_eq!(a.short_fraction, 1.0);
        // Medoid of the chain group is one of the two identical 2-chains.
        assert!(a.representative.starts_with("j_c"));
        let b = &ga.groups[1];
        assert_eq!(b.sizes, vec![5]);
        assert_eq!(b.chain_fraction, 0.0);
        assert_eq!(b.representative, "j_t1");
    }

    #[test]
    fn group_of_resolves() {
        let (dags, features, sim) = setup();
        let ga = GroupAnalysis::build(&[0, 0, 0, 1], 2, &dags, &features, &sim);
        assert_eq!(ga.group_of(3).label, 'B');
        assert_eq!(ga.group_of(0).label, 'A');
    }

    #[test]
    fn silhouette_positive_for_sane_grouping() {
        let (dags, features, sim) = setup();
        let good = GroupAnalysis::build(&[0, 0, 0, 1], 2, &dags, &features, &sim);
        assert!(good.silhouette > 0.0, "silhouette {}", good.silhouette);
    }
}
