//! The end-to-end characterization pipeline.

use dagscope_cluster::{spectral_cluster, SpectralConfig};
use dagscope_graph::metrics::JobFeatures;
use dagscope_graph::{conflate, JobDag};
use dagscope_trace::filter::{stratified_sample, SampleCriteria};
use dagscope_trace::gen::TraceGenerator;
use dagscope_trace::stats::TraceStats;
use dagscope_trace::{Job, JobSet};
use dagscope_wl::{
    kernel_matrix, kernel_matrix_via_dedup, normalize_kernel, ShapeDedup, SpVectorizer,
    WlVectorizer,
};

use std::time::Instant;

use crate::groups::GroupAnalysis;
use crate::{PipelineConfig, Report, StageTimings};

/// Orchestrates trace synthesis → filtering → DAGs → WL kernel →
/// spectral groups, producing a [`Report`].
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(cfg: PipelineConfig) -> Pipeline {
        Pipeline { cfg }
    }

    /// Access the configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Run on a synthetic trace generated from the config.
    pub fn run(&self) -> Result<Report, String> {
        let trace = TraceGenerator::new(self.cfg.generator()).generate();
        self.run_on(&trace.job_set())
    }

    /// Run on an existing job population (e.g. parsed from the real trace
    /// CSVs) — the synthetic generator is bypassed entirely.
    pub fn run_on(&self, jobs: &JobSet) -> Result<Report, String> {
        let run_start = Instant::now();
        let mut timings = StageTimings::default();

        let clock = Instant::now();
        let stats = TraceStats::compute(jobs);
        timings.stats = clock.elapsed();

        // Integrity + availability filters, then the variability-stratified
        // sample.
        let clock = Instant::now();
        let criteria = SampleCriteria::default();
        let eligible: Vec<&Job> = criteria.filter(jobs);
        if eligible.is_empty() {
            return Err("no job passed the integrity/availability filters".to_string());
        }
        let sample = stratified_sample(&eligible, self.cfg.sample, self.cfg.seed);
        timings.sample = clock.elapsed();

        // DAG construction (parallel); filters guarantee buildability.
        let clock = Instant::now();
        let raw_dags: Vec<JobDag> = dagscope_par::par_map(&sample, |job| {
            JobDag::from_job(job).expect("filtered job must build")
        });
        let conflated: Vec<JobDag> = dagscope_par::par_map(&raw_dags, conflate::conflate);
        timings.dags = clock.elapsed();

        // Features before and after conflation (Figs 4 and 5).
        let clock = Instant::now();
        let features_raw: Vec<JobFeatures> = dagscope_par::par_map(&raw_dags, JobFeatures::extract);
        let features_conflated: Vec<JobFeatures> =
            dagscope_par::par_map(&conflated, JobFeatures::extract);
        timings.features = clock.elapsed();

        // Kernel embedding + normalized similarity matrix (Fig 7). The
        // base kernel of eq. (1) is configurable: WL subtree (default) or
        // shortest-path.
        let kernel_input: &[JobDag] = if self.cfg.conflate {
            &conflated
        } else {
            &raw_dags
        };
        let clock = Instant::now();
        let wl_features = match self.cfg.base_kernel {
            crate::BaseKernel::WlSubtree => {
                let mut wl = WlVectorizer::new(self.cfg.wl_iterations);
                wl.transform_all(kernel_input)
            }
            crate::BaseKernel::ShortestPath => {
                let mut sp = SpVectorizer::new();
                sp.transform_all(kernel_input)
            }
        };
        timings.embed = clock.elapsed();

        // Gram assembly: the sparse engine collapses bitwise-identical φ
        // vectors to unique shapes and scans the feature→shape inverted
        // index — bit-identical to the brute-force pairwise path, which
        // stays available as the oracle (`dedup_shapes: false`).
        let clock = Instant::now();
        let dedup = self
            .cfg
            .dedup_shapes
            .then(|| ShapeDedup::from_features(&wl_features));
        timings.dedup = clock.elapsed();
        let clock = Instant::now();
        let (gram, gram_stats) = match &dedup {
            Some(d) => {
                let (k, stats) = kernel_matrix_via_dedup(d, &wl_features);
                (k, Some(stats))
            }
            None => (kernel_matrix(&wl_features), None),
        };
        let similarity = normalize_kernel(&gram);
        timings.kernel = clock.elapsed();

        // Spectral grouping (Figs 8–9).
        let clock = Instant::now();
        let spectral = spectral_cluster(
            &similarity,
            &SpectralConfig {
                k: self.cfg.clusters,
                seed: self.cfg.seed,
                n_init: 10,
            },
        )?;
        // Group statistics describe the jobs as they ran (raw structure):
        // the similarity stage may look at conflated DAGs, but Fig 9's
        // sizes / critical paths / shape shares are properties of the
        // original task graphs.
        let groups = GroupAnalysis::build(
            &spectral.assignments,
            spectral.k,
            &raw_dags,
            &features_raw,
            &similarity,
        );
        timings.cluster = clock.elapsed();
        timings.total = run_start.elapsed();

        Ok(Report {
            config: self.cfg.clone(),
            stats,
            sample_names: sample.iter().map(|j| j.name.clone()).collect(),
            raw_dags,
            conflated_dags: conflated,
            features_raw,
            features_conflated,
            wl_features,
            similarity,
            laplacian_eigenvalues: spectral.eigenvalues,
            groups,
            gram: gram_stats,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_cluster::validation::is_partition;

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            jobs: 400,
            sample: 40,
            seed: 7,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let report = Pipeline::new(small_cfg()).run().unwrap();
        assert_eq!(report.sample_names.len(), 40);
        assert_eq!(report.raw_dags.len(), 40);
        assert_eq!(report.similarity.n(), 40);
        assert_eq!(report.groups.group_count(), 5);
        assert!(is_partition(&report.groups.assignments, 5));
        // Conflation never grows a DAG.
        for (raw, conf) in report.raw_dags.iter().zip(&report.conflated_dags) {
            assert!(conf.len() <= raw.len());
            assert_eq!(conf.total_weight() as usize, raw.len());
        }
    }

    #[test]
    fn deterministic() {
        let a = Pipeline::new(small_cfg()).run().unwrap();
        let b = Pipeline::new(small_cfg()).run().unwrap();
        assert_eq!(a.groups.assignments, b.groups.assignments);
        assert_eq!(a.sample_names, b.sample_names);
    }

    #[test]
    fn seed_changes_sample() {
        let a = Pipeline::new(PipelineConfig {
            seed: 1,
            ..small_cfg()
        })
        .run()
        .unwrap();
        let b = Pipeline::new(PipelineConfig {
            seed: 2,
            ..small_cfg()
        })
        .run()
        .unwrap();
        assert_ne!(a.sample_names, b.sample_names);
    }

    #[test]
    fn similarity_matrix_well_formed() {
        let report = Pipeline::new(small_cfg()).run().unwrap();
        let s = &report.similarity;
        for i in 0..s.n() {
            assert!((s.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..s.n() {
                let v = s.get(i, j);
                assert!((-1e-9..=1.0 + 1e-9).contains(&v), "s[{i}][{j}]={v}");
            }
        }
    }

    #[test]
    fn ablation_without_conflation_also_runs() {
        let cfg = PipelineConfig {
            conflate: false,
            ..small_cfg()
        };
        let report = Pipeline::new(cfg).run().unwrap();
        assert_eq!(report.groups.group_count(), 5);
    }

    #[test]
    fn shortest_path_base_kernel_runs_end_to_end() {
        let cfg = PipelineConfig {
            base_kernel: crate::BaseKernel::ShortestPath,
            ..small_cfg()
        };
        let report = Pipeline::new(cfg).run().unwrap();
        assert_eq!(report.groups.group_count(), 5);
        assert!(is_partition(&report.groups.assignments, 5));
        // The two base kernels agree on the dominant-group story.
        let wl = Pipeline::new(small_cfg()).run().unwrap();
        assert!(report.groups.groups[0].fraction >= 0.2);
        assert!(wl.groups.groups[0].fraction >= 0.2);
    }

    #[test]
    fn dedup_path_is_bit_identical_to_brute_force() {
        // The acceptance bar of the sparse Gram engine: similarity matrix
        // and downstream assignments must match the brute-force oracle
        // bitwise, on the paper-scale 100-job sample.
        let base = PipelineConfig {
            jobs: 2_000,
            sample: 100,
            seed: 42,
            ..PipelineConfig::default()
        };
        let dedup = Pipeline::new(base.clone()).run().unwrap();
        let brute = Pipeline::new(PipelineConfig {
            dedup_shapes: false,
            ..base
        })
        .run()
        .unwrap();
        for (a, b) in dedup
            .similarity
            .packed()
            .iter()
            .zip(brute.similarity.packed())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(dedup.groups.assignments, brute.groups.assignments);
        assert_eq!(
            dedup.laplacian_eigenvalues, brute.laplacian_eigenvalues,
            "identical input must produce identical spectra"
        );
        let stats = dedup.gram.expect("dedup path records gram stats");
        assert!(brute.gram.is_none());
        assert_eq!(stats.jobs, 100);
        assert!(
            stats.unique_shapes < stats.jobs,
            "synthetic population must contain duplicate shapes"
        );
        assert!(
            stats.dot_products < (stats.jobs * (stats.jobs + 1) / 2) as u64,
            "inverted index must beat the all-pairs scan"
        );
    }

    #[test]
    fn timings_cover_the_run() {
        let report = Pipeline::new(small_cfg()).run().unwrap();
        let t = &report.timings;
        assert!(t.total > std::time::Duration::ZERO);
        // Stages are disjoint sub-intervals of the run.
        let staged: std::time::Duration = t.stages().iter().map(|(_, d)| *d).sum();
        assert!(staged <= t.total);
        assert!(t.render().contains("total"));
    }

    #[test]
    fn empty_population_is_an_error() {
        let err = Pipeline::new(small_cfg())
            .run_on(&JobSet::default())
            .unwrap_err();
        assert!(err.contains("no job passed"));
    }
}
