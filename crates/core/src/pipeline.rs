//! The end-to-end characterization pipeline.

use dagscope_cluster::{
    expand_assignments, spectral_cluster, spectral_cluster_collapsed, SpectralConfig,
};
use dagscope_graph::metrics::JobFeatures;
use dagscope_graph::{conflate, JobDag};
use dagscope_trace::filter::{stratified_sample, SampleCriteria};
use dagscope_trace::gen::TraceGenerator;
use dagscope_trace::stats::TraceStats;
use dagscope_trace::stream::StreamedTrace;
use dagscope_trace::{Job, JobSet};

use dagscope_wl::{
    kernel_matrix, kernel_matrix_via_dedup, normalize_kernel, normalize_unique_sparse,
    unique_gram_sparse, ShapeDedup, SpVectorizer, SparseVec, WlVectorizer,
};
use std::io::{Read, Seek};

use std::time::Instant;

use crate::config::{ClusterEngine, EngineKind, AUTO_DENSE_MAX};
use crate::groups::GroupAnalysis;
use crate::{PipelineConfig, Report, Similarity, StageTimings};

/// Orchestrates trace synthesis → filtering → DAGs → WL kernel →
/// spectral groups, producing a [`Report`].
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(cfg: PipelineConfig) -> Pipeline {
        Pipeline { cfg }
    }

    /// Access the configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Run on a synthetic trace generated from the config.
    pub fn run(&self) -> Result<Report, String> {
        let trace = TraceGenerator::new(self.cfg.generator()).generate();
        self.run_on(&trace.job_set())
    }

    /// Run on an existing job population (e.g. parsed from the real trace
    /// CSVs) — the synthetic generator is bypassed entirely.
    pub fn run_on(&self, jobs: &JobSet) -> Result<Report, String> {
        let run_start = Instant::now();
        let mut timings = StageTimings::default();

        let clock = Instant::now();
        let stats = TraceStats::compute(jobs);
        timings.stats = clock.elapsed();

        // Integrity + availability filters, then the variability-stratified
        // sample.
        let clock = Instant::now();
        let criteria = SampleCriteria::default();
        let eligible: Vec<&Job> = criteria.filter(jobs);
        if eligible.is_empty() {
            return Err("no job passed the integrity/availability filters".to_string());
        }
        let sample: Vec<Job> = stratified_sample(&eligible, self.cfg.sample, self.cfg.seed)
            .into_iter()
            .cloned()
            .collect();
        timings.sample = clock.elapsed();

        self.finish(run_start, timings, stats, sample)
    }

    /// Run on a streamed trace: statistics come from the scan's running
    /// accumulator, the stratified sample is picked from the bare size
    /// column ([`StreamedTrace::sample_eligible`] consumes the identical
    /// random stream as the batch sampler), and only the sampled jobs are
    /// materialized — the full population never exists in memory at once.
    ///
    /// Produces a [`Report`] bit-identical to [`Pipeline::run_on`] over the
    /// batch-ingested (suspect-stripped) population of the same trace.
    pub fn run_streamed<R: Read + Seek>(
        &self,
        streamed: &mut StreamedTrace<R>,
    ) -> Result<Report, String> {
        let run_start = Instant::now();
        let mut timings = StageTimings::default();

        let clock = Instant::now();
        let stats = streamed.stats();
        timings.stats = clock.elapsed();

        let clock = Instant::now();
        if streamed.eligible_count() == 0 {
            return Err("no job passed the integrity/availability filters".to_string());
        }
        let picked = streamed.sample_eligible(self.cfg.sample, self.cfg.seed);
        let mut sample = Vec::with_capacity(picked.len());
        for pos in picked {
            sample.push(
                streamed
                    .materialize_eligible(pos)
                    .map_err(|e| e.to_string())?,
            );
        }
        timings.sample = clock.elapsed();

        self.finish(run_start, timings, stats, sample)
    }

    /// The shared back half of every entry point: everything after
    /// sampling (DAGs, conflation, features, WL embedding, Gram assembly,
    /// spectral grouping) depends only on the sampled jobs, so batch and
    /// streaming ingestion converge here.
    fn finish(
        &self,
        run_start: Instant,
        mut timings: StageTimings,
        stats: TraceStats,
        sample: Vec<Job>,
    ) -> Result<Report, String> {
        // DAG construction (parallel); filters guarantee buildability.
        let clock = Instant::now();
        let raw_dags: Vec<JobDag> = dagscope_par::par_map(&sample, |job| {
            JobDag::from_job(job).expect("filtered job must build")
        });
        let conflated: Vec<JobDag> = dagscope_par::par_map(&raw_dags, conflate::conflate);
        timings.dags = clock.elapsed();

        // Features before and after conflation (Figs 4 and 5).
        let clock = Instant::now();
        let features_raw: Vec<JobFeatures> = dagscope_par::par_map(&raw_dags, JobFeatures::extract);
        let features_conflated: Vec<JobFeatures> =
            dagscope_par::par_map(&conflated, JobFeatures::extract);
        timings.features = clock.elapsed();

        // Kernel embedding + normalized similarity matrix (Fig 7). The
        // base kernel of eq. (1) is configurable: WL subtree (default) or
        // shortest-path.
        let kernel_input: &[JobDag] = if self.cfg.conflate {
            &conflated
        } else {
            &raw_dags
        };
        let clock = Instant::now();
        let wl_features = match self.cfg.base_kernel {
            crate::BaseKernel::WlSubtree => {
                let mut wl = WlVectorizer::new(self.cfg.wl_iterations);
                wl.transform_all(kernel_input)
            }
            crate::BaseKernel::ShortestPath => {
                let mut sp = SpVectorizer::new();
                sp.transform_all(kernel_input)
            }
        };
        timings.embed = clock.elapsed();

        // Resolve the clustering engine before the Gram stage: the
        // collapsed engine consumes the unique-shape CSR affinity
        // directly and must never see (or allocate) the dense matrix.
        let engine = match self.cfg.cluster_engine {
            ClusterEngine::Dense => EngineKind::Dense,
            ClusterEngine::Collapsed => {
                if !self.cfg.dedup_shapes {
                    return Err(
                        "--cluster-engine collapsed requires --dedup-shapes on: the sparse \
                         affinity is built from the shape-deduplicated Gram index"
                            .to_string(),
                    );
                }
                EngineKind::Collapsed
            }
            ClusterEngine::Auto => {
                if self.cfg.dedup_shapes && sample.len() > AUTO_DENSE_MAX {
                    EngineKind::Collapsed
                } else {
                    EngineKind::Dense
                }
            }
        };

        // Gram assembly: the sparse engine collapses bitwise-identical φ
        // vectors to unique shapes and scans the feature→shape inverted
        // index — bit-identical to the brute-force pairwise path, which
        // stays available as the oracle (`dedup_shapes: false`).
        let clock = Instant::now();
        let dedup = self
            .cfg
            .dedup_shapes
            .then(|| ShapeDedup::from_features(&wl_features));
        timings.dedup = clock.elapsed();

        let spectral_cfg = SpectralConfig {
            k: self.cfg.clusters,
            seed: self.cfg.seed,
            n_init: 10,
        };

        let (similarity, gram_stats, spectral, groups) = match engine {
            EngineKind::Dense => {
                let clock = Instant::now();
                let (gram, gram_stats) = match &dedup {
                    Some(d) => {
                        let (k, stats) = kernel_matrix_via_dedup(d, &wl_features);
                        (k, Some(stats))
                    }
                    None => (kernel_matrix(&wl_features), None),
                };
                let similarity = normalize_kernel(&gram);
                timings.kernel = clock.elapsed();

                // Spectral grouping (Figs 8–9).
                let clock = Instant::now();
                let spectral = spectral_cluster(&similarity, &spectral_cfg)?;
                // Group statistics describe the jobs as they ran (raw
                // structure): the similarity stage may look at conflated
                // DAGs, but Fig 9's sizes / critical paths / shape shares
                // are properties of the original task graphs.
                let groups = GroupAnalysis::build(
                    &spectral.assignments,
                    spectral.k,
                    &raw_dags,
                    &features_raw,
                    &similarity,
                );
                timings.cluster = clock.elapsed();
                (Similarity::Dense(similarity), gram_stats, spectral, groups)
            }
            EngineKind::Collapsed => {
                let dedup = dedup.as_ref().expect("collapsed engine requires dedup");
                let clock = Instant::now();
                let reps: Vec<&SparseVec> = dedup
                    .representatives()
                    .iter()
                    .map(|&i| &wl_features[i])
                    .collect();
                let (gram, mut stats) = unique_gram_sparse(&reps);
                // The sparse assembler only sees unique shapes; restore
                // the population-level counters the dense engine reports.
                stats.jobs = wl_features.len();
                stats.unique_shapes = dedup.unique_count();
                let unique = normalize_unique_sparse(&gram);
                timings.kernel = clock.elapsed();

                let clock = Instant::now();
                let weights = dedup.weights();
                let mut spectral = spectral_cluster_collapsed(&unique, &weights, &spectral_cfg)?;
                spectral.assignments = expand_assignments(dedup.shape_of(), &spectral.assignments);
                let groups = GroupAnalysis::build_collapsed(
                    &spectral.assignments,
                    spectral.k,
                    &raw_dags,
                    &features_raw,
                    &unique,
                    dedup.shape_of(),
                    &weights,
                );
                timings.cluster = clock.elapsed();
                let similarity = Similarity::Collapsed {
                    unique,
                    shape_of: dedup.shape_of().to_vec(),
                };
                (similarity, Some(stats), spectral, groups)
            }
        };
        timings.total = run_start.elapsed();

        Ok(Report {
            config: self.cfg.clone(),
            stats,
            sample_names: sample.iter().map(|j| j.name.clone()).collect(),
            raw_dags,
            conflated_dags: conflated,
            features_raw,
            features_conflated,
            wl_features,
            similarity,
            engine,
            laplacian_eigenvalues: spectral.eigenvalues,
            groups,
            gram: gram_stats,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_cluster::validation::is_partition;

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            jobs: 400,
            sample: 40,
            seed: 7,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let report = Pipeline::new(small_cfg()).run().unwrap();
        assert_eq!(report.sample_names.len(), 40);
        assert_eq!(report.raw_dags.len(), 40);
        assert_eq!(report.similarity.n(), 40);
        assert_eq!(report.groups.group_count(), 5);
        assert!(is_partition(&report.groups.assignments, 5));
        // Conflation never grows a DAG.
        for (raw, conf) in report.raw_dags.iter().zip(&report.conflated_dags) {
            assert!(conf.len() <= raw.len());
            assert_eq!(conf.total_weight() as usize, raw.len());
        }
    }

    #[test]
    fn deterministic() {
        let a = Pipeline::new(small_cfg()).run().unwrap();
        let b = Pipeline::new(small_cfg()).run().unwrap();
        assert_eq!(a.groups.assignments, b.groups.assignments);
        assert_eq!(a.sample_names, b.sample_names);
    }

    #[test]
    fn seed_changes_sample() {
        let a = Pipeline::new(PipelineConfig {
            seed: 1,
            ..small_cfg()
        })
        .run()
        .unwrap();
        let b = Pipeline::new(PipelineConfig {
            seed: 2,
            ..small_cfg()
        })
        .run()
        .unwrap();
        assert_ne!(a.sample_names, b.sample_names);
    }

    #[test]
    fn similarity_matrix_well_formed() {
        let report = Pipeline::new(small_cfg()).run().unwrap();
        let s = &report.similarity;
        for i in 0..s.n() {
            assert!((s.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..s.n() {
                let v = s.get(i, j);
                assert!((-1e-9..=1.0 + 1e-9).contains(&v), "s[{i}][{j}]={v}");
            }
        }
    }

    #[test]
    fn ablation_without_conflation_also_runs() {
        let cfg = PipelineConfig {
            conflate: false,
            ..small_cfg()
        };
        let report = Pipeline::new(cfg).run().unwrap();
        assert_eq!(report.groups.group_count(), 5);
    }

    #[test]
    fn shortest_path_base_kernel_runs_end_to_end() {
        let cfg = PipelineConfig {
            base_kernel: crate::BaseKernel::ShortestPath,
            ..small_cfg()
        };
        let report = Pipeline::new(cfg).run().unwrap();
        assert_eq!(report.groups.group_count(), 5);
        assert!(is_partition(&report.groups.assignments, 5));
        // The two base kernels agree on the dominant-group story.
        let wl = Pipeline::new(small_cfg()).run().unwrap();
        assert!(report.groups.groups[0].fraction >= 0.2);
        assert!(wl.groups.groups[0].fraction >= 0.2);
    }

    #[test]
    fn dedup_path_is_bit_identical_to_brute_force() {
        // The acceptance bar of the sparse Gram engine: similarity matrix
        // and downstream assignments must match the brute-force oracle
        // bitwise, on the paper-scale 100-job sample.
        let base = PipelineConfig {
            jobs: 2_000,
            sample: 100,
            seed: 42,
            ..PipelineConfig::default()
        };
        let dedup = Pipeline::new(base.clone()).run().unwrap();
        let brute = Pipeline::new(PipelineConfig {
            dedup_shapes: false,
            ..base
        })
        .run()
        .unwrap();
        for (a, b) in dedup
            .similarity
            .as_dense()
            .expect("paper scale runs dense")
            .packed()
            .iter()
            .zip(brute.similarity.as_dense().unwrap().packed())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(dedup.groups.assignments, brute.groups.assignments);
        assert_eq!(
            dedup.laplacian_eigenvalues, brute.laplacian_eigenvalues,
            "identical input must produce identical spectra"
        );
        let stats = dedup.gram.expect("dedup path records gram stats");
        assert!(brute.gram.is_none());
        assert_eq!(stats.jobs, 100);
        assert!(
            stats.unique_shapes < stats.jobs,
            "synthetic population must contain duplicate shapes"
        );
        assert!(
            stats.dot_products < (stats.jobs * (stats.jobs + 1) / 2) as u64,
            "inverted index must beat the all-pairs scan"
        );
    }

    #[test]
    fn streamed_run_is_bit_identical_to_batch_run() {
        // The tentpole acceptance bar: over the same CSV bytes, the
        // streaming engine must reproduce the batch pipeline's report —
        // same sample, same exact statistics, same group tables.
        use dagscope_trace::stream::StreamedTrace;
        use dagscope_trace::{csv, ReadPolicy};

        let cfg = PipelineConfig {
            jobs: 1_500,
            sample: 60,
            seed: 11,
            ..PipelineConfig::default()
        };
        let trace = TraceGenerator::new(cfg.generator()).generate();
        let mut doc = Vec::new();
        csv::write_tasks(&mut doc, &trace.tasks).unwrap();

        let batch_set = JobSet::from_tasks(csv::read_tasks(&doc[..]).unwrap());
        let batch = Pipeline::new(cfg.clone()).run_on(&batch_set).unwrap();

        let mut streamed = StreamedTrace::scan(
            std::io::Cursor::new(doc),
            &ReadPolicy::Strict,
            &SampleCriteria::default(),
        )
        .unwrap();
        let report = Pipeline::new(cfg).run_streamed(&mut streamed).unwrap();

        assert_eq!(report.sample_names, batch.sample_names);
        assert_eq!(report.stats, batch.stats);
        assert_eq!(report.groups.assignments, batch.groups.assignments);
        assert_eq!(
            report.laplacian_eigenvalues, batch.laplacian_eigenvalues,
            "identical sample must produce identical spectra"
        );
        assert_eq!(report.summary(), batch.summary());
        assert_eq!(
            crate::figures::render_group_properties(&crate::figures::fig9_group_properties(
                &report
            )),
            crate::figures::render_group_properties(&crate::figures::fig9_group_properties(&batch))
        );
        assert_eq!(
            crate::figures::render_group_shapes(&crate::figures::group_shape_composition(&report)),
            crate::figures::render_group_shapes(&crate::figures::group_shape_composition(&batch))
        );
    }

    #[test]
    fn timings_cover_the_run() {
        let report = Pipeline::new(small_cfg()).run().unwrap();
        let t = &report.timings;
        assert!(t.total > std::time::Duration::ZERO);
        // Stages are disjoint sub-intervals of the run.
        let staged: std::time::Duration = t.stages().iter().map(|(_, d)| *d).sum();
        assert!(staged <= t.total);
        assert!(t.render().contains("total"));
    }

    #[test]
    fn empty_population_is_an_error() {
        let err = Pipeline::new(small_cfg())
            .run_on(&JobSet::default())
            .unwrap_err();
        assert!(err.contains("no job passed"));
    }

    #[test]
    fn collapsed_engine_reproduces_the_dense_partition() {
        // The acceptance bar of the collapsed engine: on the paper-scale
        // 100-job sample, collapsed + Lanczos must reproduce the dense
        // 5-group partition exactly (ARI 1.0) and leave the Fig 8/9 group
        // story (labels, populations, medoids) unchanged.
        let base = PipelineConfig {
            jobs: 2_000,
            sample: 100,
            seed: 42,
            ..PipelineConfig::default()
        };
        let dense = Pipeline::new(base.clone()).run().unwrap();
        assert_eq!(
            dense.engine,
            crate::EngineKind::Dense,
            "auto stays dense at paper scale"
        );
        let collapsed = Pipeline::new(PipelineConfig {
            cluster_engine: crate::ClusterEngine::Collapsed,
            ..base
        })
        .run()
        .unwrap();
        assert_eq!(collapsed.engine, crate::EngineKind::Collapsed);
        assert!(
            collapsed.similarity.as_dense().is_none(),
            "no dense allocation"
        );
        assert_eq!(
            dagscope_cluster::adjusted_rand_index(
                &collapsed.groups.assignments,
                &dense.groups.assignments
            ),
            1.0
        );
        for (c, d) in collapsed.groups.groups.iter().zip(&dense.groups.groups) {
            assert_eq!(c.label, d.label);
            assert_eq!(c.population, d.population);
            assert_eq!(c.sizes, d.sizes);
            assert_eq!(c.representative, d.representative);
        }
        assert!(
            (collapsed.groups.silhouette - dense.groups.silhouette).abs() < 1e-9,
            "collapsed={} dense={}",
            collapsed.groups.silhouette,
            dense.groups.silhouette
        );
        // The expanded views agree entry-wise (the Gram engines are
        // bitwise-compatible; only the storage differs).
        let expanded = collapsed.similarity.to_sym();
        let dd = dense.similarity.as_dense().unwrap();
        for (a, b) in expanded.packed().iter().zip(dd.packed()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Both spectra start at the Laplacian's zero eigenvalue.
        assert!(collapsed.laplacian_eigenvalues[0].abs() < 1e-8);
    }

    #[test]
    fn auto_engine_is_bit_identical_to_dense_at_paper_scale() {
        let auto = Pipeline::new(small_cfg()).run().unwrap();
        let dense = Pipeline::new(PipelineConfig {
            cluster_engine: crate::ClusterEngine::Dense,
            ..small_cfg()
        })
        .run()
        .unwrap();
        assert_eq!(auto.engine, crate::EngineKind::Dense);
        assert_eq!(auto.groups.assignments, dense.groups.assignments);
        assert_eq!(auto.laplacian_eigenvalues, dense.laplacian_eigenvalues);
        for (a, b) in auto
            .similarity
            .as_dense()
            .unwrap()
            .packed()
            .iter()
            .zip(dense.similarity.as_dense().unwrap().packed())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn auto_engine_goes_collapsed_above_the_dense_ceiling() {
        let report = Pipeline::new(PipelineConfig {
            jobs: 4_000,
            sample: crate::AUTO_DENSE_MAX + 88,
            seed: 5,
            ..PipelineConfig::default()
        })
        .run()
        .unwrap();
        assert_eq!(report.engine, crate::EngineKind::Collapsed);
        assert!(report.similarity.as_dense().is_none());
        assert_eq!(report.similarity.n(), crate::AUTO_DENSE_MAX + 88);
        assert_eq!(report.groups.group_count(), 5);
        assert!(is_partition(&report.groups.assignments, 5));
        let stats = report.gram.expect("collapsed path records gram stats");
        assert_eq!(stats.jobs, crate::AUTO_DENSE_MAX + 88);
        assert!(stats.unique_shapes < stats.jobs);
    }

    #[test]
    fn collapsed_engine_requires_dedup() {
        let err = Pipeline::new(PipelineConfig {
            cluster_engine: crate::ClusterEngine::Collapsed,
            dedup_shapes: false,
            ..small_cfg()
        })
        .run()
        .unwrap_err();
        assert!(err.contains("dedup"), "err: {err}");
        // Auto with dedup off silently stays dense instead of failing.
        let report = Pipeline::new(PipelineConfig {
            dedup_shapes: false,
            ..small_cfg()
        })
        .run()
        .unwrap();
        assert_eq!(report.engine, crate::EngineKind::Dense);
    }
}
