//! A loadable on-disk index of a completed pipeline run.
//!
//! The batch pipeline characterizes a sample once; `dagscope serve` must
//! answer queries about that characterization long after the process that
//! computed it has exited. [`IndexSnapshot`] is the hand-off format: the
//! sampled jobs (as `batch_task`-format rows, so the snapshot reuses the
//! trace CSV codec), the fitted [`GroupModel`], and the per-group summary
//! statistics.
//!
//! The snapshot deliberately stores *jobs*, not derived artifacts like DAGs
//! or WL vectors: every derivation in this workspace is deterministic, so a
//! loader that replays DAG construction → conflation → WL embedding over
//! the same rows reproduces the offline run **bit-identically**, and the
//! format stays robust to internal representation changes.
//!
//! Layout of a snapshot directory:
//!
//! ```text
//! meta.txt         key=value lines (version, kernel, wl_iterations, …)
//! jobs.csv         batch_task rows of the sample, in sample order
//! model.txt        GroupModel text form (see dagscope_cluster::model)
//! groups.csv       per-group summary rows (label, population, medoid, …)
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use dagscope_cluster::GroupModel;
use dagscope_trace::{csv, Job, Status, TaskRecord};

use crate::{BaseKernel, Report};

/// Snapshot format version this build writes and reads.
const VERSION: u32 = 1;

/// Run-level metadata carried alongside the index.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// WL refinement iterations used by the offline embedding.
    pub wl_iterations: usize,
    /// Whether the kernel stage ran on conflated DAGs.
    pub conflate: bool,
    /// Seed of the producing run (provenance only).
    pub seed: u64,
    /// Number of groups.
    pub k: usize,
    /// Silhouette of the offline clustering (provenance only).
    pub silhouette: f64,
}

/// Summary of one group, mirroring [`crate::GroupStats`] minus the bulky
/// per-member distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotGroup {
    /// Group label (`'A'` = most populated).
    pub label: char,
    /// Raw cluster id behind the label.
    pub cluster: usize,
    /// Member count.
    pub population: usize,
    /// Fraction of the sample.
    pub fraction: f64,
    /// Mean job size.
    pub mean_size: f64,
    /// Share of straight-chain jobs.
    pub chain_fraction: f64,
    /// Share of short (≤ 3 task) jobs.
    pub short_fraction: f64,
    /// Medoid job name.
    pub representative: String,
}

/// Everything `dagscope serve` needs, in saveable/loadable form.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSnapshot {
    /// Run metadata.
    pub meta: SnapshotMeta,
    /// The sampled jobs in sample order (aligned with the model's
    /// assignment vector).
    pub jobs: Vec<Job>,
    /// Assignments + per-group WL centroids.
    pub model: GroupModel,
    /// Group summaries, ordered by label.
    pub groups: Vec<SnapshotGroup>,
}

impl IndexSnapshot {
    /// Distill a completed [`Report`] into a snapshot.
    ///
    /// Only WL-subtree runs are supported: the online classifier embeds
    /// probes with the WL vectorizer, so centroids from a shortest-path
    /// run would live in the wrong feature space.
    pub fn from_report(report: &Report) -> Result<IndexSnapshot, String> {
        if report.config.base_kernel != BaseKernel::WlSubtree {
            return Err(
                "serve snapshots require the WL subtree base kernel (--base-kernel wl)".to_string(),
            );
        }
        let jobs: Vec<Job> = report.raw_dags.iter().map(dag_to_job).collect();
        let model = GroupModel::fit(
            &report.groups.assignments,
            report.groups.group_count(),
            &report.wl_features,
        );
        let groups = report
            .groups
            .groups
            .iter()
            .map(|g| SnapshotGroup {
                label: g.label,
                cluster: g.cluster,
                population: g.population,
                fraction: g.fraction,
                mean_size: g.mean_size,
                chain_fraction: g.chain_fraction,
                short_fraction: g.short_fraction,
                representative: g.representative.clone(),
            })
            .collect();
        Ok(IndexSnapshot {
            meta: SnapshotMeta {
                wl_iterations: report.config.wl_iterations,
                conflate: report.config.conflate,
                seed: report.config.seed,
                k: report.groups.group_count(),
                silhouette: report.groups.silhouette,
            },
            jobs,
            model,
            groups,
        })
    }

    /// Write the snapshot into `dir` (created if absent).
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let write = |name: &str, data: &str| -> Result<(), String> {
            let path = dir.join(name);
            fs::write(&path, data).map_err(|e| format!("write {}: {e}", path.display()))
        };

        let mut meta = String::new();
        writeln!(meta, "version={VERSION}").unwrap();
        writeln!(meta, "kernel=wl").unwrap();
        writeln!(meta, "wl_iterations={}", self.meta.wl_iterations).unwrap();
        writeln!(meta, "conflate={}", self.meta.conflate as u8).unwrap();
        writeln!(meta, "seed={}", self.meta.seed).unwrap();
        writeln!(meta, "k={}", self.meta.k).unwrap();
        writeln!(meta, "silhouette={}", self.meta.silhouette).unwrap();
        write("meta.txt", &meta)?;

        let mut rows = String::new();
        for job in &self.jobs {
            for t in &job.tasks {
                rows.push_str(&csv::format_task_line(t));
                rows.push('\n');
            }
        }
        write("jobs.csv", &rows)?;

        write("model.txt", &self.model.to_text())?;

        let mut groups = String::from(
            "label,cluster,population,fraction,mean_size,chain_fraction,short_fraction,representative\n",
        );
        for g in &self.groups {
            writeln!(
                groups,
                "{},{},{},{},{},{},{},{}",
                g.label,
                g.cluster,
                g.population,
                g.fraction,
                g.mean_size,
                g.chain_fraction,
                g.short_fraction,
                g.representative
            )
            .unwrap();
        }
        write("groups.csv", &groups)
    }

    /// Load a snapshot previously written with [`save`](Self::save).
    pub fn load(dir: &Path) -> Result<IndexSnapshot, String> {
        let read = |name: &str| -> Result<String, String> {
            let path = dir.join(name);
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))
        };

        let meta_text = read("meta.txt")?;
        let meta_kv = |key: &str| -> Result<&str, String> {
            meta_text
                .lines()
                .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                .ok_or_else(|| format!("meta.txt missing {key}"))
        };
        let version: u32 = meta_kv("version")?
            .parse()
            .map_err(|e| format!("bad version: {e}"))?;
        if version != VERSION {
            return Err(format!(
                "snapshot version {version} unsupported (this build reads {VERSION})"
            ));
        }
        if meta_kv("kernel")? != "wl" {
            return Err("snapshot built with a non-WL base kernel".to_string());
        }
        let meta = SnapshotMeta {
            wl_iterations: meta_kv("wl_iterations")?
                .parse()
                .map_err(|e| format!("bad wl_iterations: {e}"))?,
            conflate: meta_kv("conflate")? == "1",
            seed: meta_kv("seed")?
                .parse()
                .map_err(|e| format!("bad seed: {e}"))?,
            k: meta_kv("k")?.parse().map_err(|e| format!("bad k: {e}"))?,
            silhouette: meta_kv("silhouette")?
                .parse()
                .map_err(|e| format!("bad silhouette: {e}"))?,
        };

        let rows = csv::read_tasks(read("jobs.csv")?.as_bytes()).map_err(|e| e.to_string())?;
        let jobs = group_rows_in_order(rows);

        let model = GroupModel::from_text(&read("model.txt")?)?;

        let mut groups = Vec::new();
        for line in read("groups.csv")?.lines().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 8 {
                return Err(format!("bad groups.csv row: {line:?}"));
            }
            let num = |s: &str, what: &str| -> Result<f64, String> {
                s.parse().map_err(|e| format!("bad {what}: {e}"))
            };
            groups.push(SnapshotGroup {
                label: f[0]
                    .chars()
                    .next()
                    .ok_or_else(|| format!("empty label in {line:?}"))?,
                cluster: f[1].parse().map_err(|e| format!("bad cluster: {e}"))?,
                population: f[2].parse().map_err(|e| format!("bad population: {e}"))?,
                fraction: num(f[3], "fraction")?,
                mean_size: num(f[4], "mean_size")?,
                chain_fraction: num(f[5], "chain_fraction")?,
                short_fraction: num(f[6], "short_fraction")?,
                representative: f[7].to_string(),
            });
        }

        let snapshot = IndexSnapshot {
            meta,
            jobs,
            model,
            groups,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Internal consistency checks shared by loaders.
    pub fn validate(&self) -> Result<(), String> {
        if self.model.k() != self.meta.k {
            return Err(format!(
                "model k={} disagrees with meta k={}",
                self.model.k(),
                self.meta.k
            ));
        }
        if self.model.assignments().len() != self.jobs.len() {
            return Err(format!(
                "{} assignments for {} jobs",
                self.model.assignments().len(),
                self.jobs.len()
            ));
        }
        if self.groups.len() != self.meta.k {
            return Err(format!(
                "{} group rows for k={}",
                self.groups.len(),
                self.meta.k
            ));
        }
        let mut covered = vec![false; self.meta.k];
        for g in &self.groups {
            if g.cluster >= self.meta.k || covered[g.cluster] {
                return Err(format!(
                    "group rows do not partition clusters 0..{}",
                    self.meta.k
                ));
            }
            covered[g.cluster] = true;
        }
        Ok(())
    }
}

/// Reconstruct a [`Job`]'s task rows from its (pre-conflation) DAG. The
/// dependency structure lives entirely in the task names; attributes the
/// DAG kept are restored, and fields it dropped (status, absolute
/// timestamps, type code) get fixed placeholder values — none of them
/// participate in serving.
fn dag_to_job(dag: &dagscope_graph::JobDag) -> Job {
    let tasks = (0..dag.len())
        .map(|i| {
            let a = dag.attr(i);
            TaskRecord {
                task_name: dag.task_name(i).to_string(),
                instance_num: a.instance_num,
                job_name: dag.name.clone(),
                task_type: "1".into(),
                status: Status::Terminated,
                start_time: 1,
                end_time: 1 + a.duration,
                plan_cpu: a.plan_cpu,
                plan_mem: a.plan_mem,
            }
        })
        .collect();
    Job {
        name: dag.name.clone(),
        tasks,
    }
}

/// Group task rows into jobs preserving **first-appearance order** — unlike
/// [`dagscope_trace::JobSet::from_tasks`], which name-sorts. Snapshot rows
/// are written in sample order and the model's assignment vector is aligned
/// with that order, so it must survive the round trip.
fn group_rows_in_order(rows: Vec<TaskRecord>) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for row in rows {
        match index.get(&row.job_name) {
            Some(&i) => jobs[i].tasks.push(row),
            None => {
                index.insert(row.job_name.clone(), jobs.len());
                jobs.push(Job {
                    name: row.job_name.clone(),
                    tasks: vec![row],
                });
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};

    fn report() -> Report {
        Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 25,
            seed: 11,
            ..Default::default()
        })
        .run()
        .unwrap()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dagscope_snap_{tag}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        assert_eq!(snap.jobs.len(), 25);
        assert_eq!(snap.model.assignments(), &r.groups.assignments[..]);
        assert_eq!(snap.groups.len(), 5);

        let dir = tmp_dir("rt");
        snap.save(&dir).unwrap();
        let back = IndexSnapshot::load(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.model, snap.model, "model must round-trip bit-exactly");
        assert_eq!(back.groups, snap.groups);
        // Job order and structure survive; rebuilt DAGs embed identically.
        assert_eq!(back.jobs.len(), snap.jobs.len());
        for (a, b) in back.jobs.iter().zip(&snap.jobs) {
            assert_eq!(a.name, b.name);
            let da = dagscope_graph::JobDag::from_job(a).unwrap();
            let db = dagscope_graph::JobDag::from_job(b).unwrap();
            let mut wl = dagscope_wl::WlVectorizer::new(3);
            assert_eq!(wl.transform(&da), wl.transform(&db));
        }
    }

    #[test]
    fn rebuilt_dags_match_report_wl_features() {
        // The core bit-identity claim: replaying DAG build → conflate → WL
        // over snapshot rows reproduces the offline feature vectors.
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        let dags: Vec<_> = snap
            .jobs
            .iter()
            .map(|j| dagscope_graph::JobDag::from_job(j).unwrap())
            .collect();
        let kernel_input: Vec<_> = if snap.meta.conflate {
            dags.iter()
                .map(dagscope_graph::conflate::conflate)
                .collect()
        } else {
            dags
        };
        let mut wl = dagscope_wl::WlVectorizer::new(snap.meta.wl_iterations);
        let feats = wl.transform_all_sequential(&kernel_input);
        assert_eq!(feats, r.wl_features);
    }

    #[test]
    fn sp_kernel_run_is_rejected() {
        let r = Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 20,
            seed: 3,
            base_kernel: BaseKernel::ShortestPath,
            ..Default::default()
        })
        .run()
        .unwrap();
        assert!(IndexSnapshot::from_report(&r).is_err());
    }

    #[test]
    fn load_rejects_corruption() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        let dir = tmp_dir("bad");
        snap.save(&dir).unwrap();

        // Wrong version.
        let meta = std::fs::read_to_string(dir.join("meta.txt")).unwrap();
        std::fs::write(dir.join("meta.txt"), meta.replace("version=1", "version=9")).unwrap();
        assert!(IndexSnapshot::load(&dir).is_err());
        std::fs::write(dir.join("meta.txt"), meta).unwrap();
        assert!(IndexSnapshot::load(&dir).is_ok());

        // Truncated model: assignments no longer match the job count.
        let model = std::fs::read_to_string(dir.join("model.txt")).unwrap();
        let truncated = model.replace("assignments ", "assignments 0 ");
        std::fs::write(dir.join("model.txt"), truncated).unwrap();
        assert!(IndexSnapshot::load(&dir).is_err());
        std::fs::write(dir.join("model.txt"), model).unwrap();

        // Missing file.
        std::fs::remove_file(dir.join("groups.csv")).unwrap();
        assert!(IndexSnapshot::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_appearance_grouping_keeps_sample_order() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        let names: Vec<&str> = snap.jobs.iter().map(|j| j.name.as_str()).collect();
        let sample: Vec<&str> = r.sample_names.iter().map(String::as_str).collect();
        assert_eq!(names, sample);
    }
}
