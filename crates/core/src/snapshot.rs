//! A loadable on-disk index of a completed pipeline run.
//!
//! The batch pipeline characterizes a sample once; `dagscope serve` must
//! answer queries about that characterization long after the process that
//! computed it has exited. [`IndexSnapshot`] is the hand-off format: the
//! sampled jobs (as `batch_task`-format rows, so the snapshot reuses the
//! trace CSV codec), the fitted [`GroupModel`], and the per-group summary
//! statistics.
//!
//! The snapshot deliberately stores *jobs*, not derived artifacts like DAGs
//! or WL vectors: every derivation in this workspace is deterministic, so a
//! loader that replays DAG construction → conflation → WL embedding over
//! the same rows reproduces the offline run **bit-identically**, and the
//! format stays robust to internal representation changes.
//!
//! Layout of a snapshot directory:
//!
//! ```text
//! meta.txt         key=value lines (version, kernel, wl_iterations, …)
//! jobs.csv         batch_task rows of the sample, in sample order
//! model.txt        GroupModel text form (see dagscope_cluster::model)
//! groups.csv       per-group summary rows (label, population, medoid, …)
//! shapes.csv       per-job WL shape id + fingerprint (dedup provenance)
//! checksums.txt    CRC64 per section, verified on load
//! ```
//!
//! **Integrity**: every section carries a CRC64 (ECMA-182, reflected)
//! recorded in `checksums.txt` and verified before parsing, so a torn or
//! bit-flipped file is rejected with [`SnapshotError::Corrupt`] naming
//! the damaged section instead of surfacing as a confusing parse error
//! deep in a codec. Saves are **atomic**: sections are staged into a
//! sibling temp directory and renamed into place, so a crashed
//! `snapshot` command never leaves a half-written index where a loader
//! can find it.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use dagscope_cluster::GroupModel;
use dagscope_faults::failpoint;
use dagscope_trace::{csv, Job, Status, TaskRecord};
use dagscope_wl::ShapeDedup;

use crate::{BaseKernel, Report};

/// Snapshot format version this build writes and reads.
/// Version 2 added `checksums.txt`; version 3 added `shapes.csv` (WL
/// shape dedup provenance); version 4 added the clustering-engine and
/// Laplacian-spectrum meta keys. Older snapshots must be regenerated.
const VERSION: u32 = 4;

/// How many leading Laplacian eigenvalues the snapshot records — enough
/// to redraw the eigengap diagnostic, without ever scaling with n.
const SPECTRUM_KEEP: usize = 16;

/// A disposable sibling path of `dir`: `<dir>.<tag>`. Staging and backup
/// directories live next to the target so the final rename stays within
/// one filesystem.
fn sibling(dir: &Path, tag: &str) -> PathBuf {
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    dir.with_file_name(format!("{name}.{tag}"))
}

/// Directory rename with an injectable failure (`snapshot.save.rename`;
/// hit 1 is the swap-out to `.old`, hit 2 the commit of staging — pick
/// one with a skip modifier).
fn rename_dir(from: &Path, to: &Path) -> std::io::Result<()> {
    failpoint!("snapshot.save.rename", |_arg: Option<String>| Err(
        std::io::Error::other("injected rename failure")
    ));
    fs::rename(from, to)
}

/// Render `checksums.txt` for the given sections. The
/// `snapshot.save.crc_flip` site simulates bit rot at write time: the
/// recorded checksum of the *last* section gains a flipped low bit, so a
/// later load must reject that section as [`SnapshotError::Corrupt`]
/// rather than serve a silently wrong model.
fn checksum_lines(sections: &[(&'static str, String)]) -> String {
    let mut sums = String::new();
    for (name, data) in sections {
        writeln!(sums, "{name} {:016x}", crc64::checksum(data.as_bytes())).unwrap();
    }
    failpoint!("snapshot.save.crc_flip", |_arg: Option<String>| {
        let mut flipped = sums.clone();
        let idx = flipped.trim_end().len() - 1;
        let digit = flipped.as_bytes()[idx];
        flipped.replace_range(idx..=idx, if digit == b'0' { "1" } else { "0" });
        flipped
    });
    sums
}

/// Errors from snapshot persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A section's bytes disagree with the CRC64 recorded at save time.
    Corrupt {
        /// Damaged section file name (e.g. `jobs.csv`).
        section: String,
        /// Checksum recorded in `checksums.txt`.
        expected: u64,
        /// Checksum of the bytes actually on disk.
        found: u64,
    },
    /// An I/O failure, with the path involved.
    Io {
        /// Path that failed.
        path: String,
        /// Stringified OS error.
        detail: String,
    },
    /// A structural or parse problem in an intact (checksum-verified)
    /// snapshot, or an unsupported configuration.
    Format(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt {
                section,
                expected,
                found,
            } => write!(
                f,
                "snapshot section {section} is corrupt: \
                 crc64 {found:016x} does not match recorded {expected:016x}"
            ),
            SnapshotError::Io { path, detail } => write!(f, "{path}: {detail}"),
            SnapshotError::Format(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC64/ECMA-182 (reflected; the `xz` variant), table-driven.
mod crc64 {
    /// Reflected ECMA-182 polynomial.
    const POLY: u64 = 0xC96C_5795_D787_0F42;

    const fn build_table() -> [u64; 256] {
        let mut table = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }

    static TABLE: [u64; 256] = build_table();

    /// Checksum of one byte slice.
    pub fn checksum(data: &[u8]) -> u64 {
        let mut crc = !0u64;
        for &b in data {
            crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
        }
        !crc
    }

    #[cfg(test)]
    mod tests {
        /// Known-answer test for CRC-64/XZ ("123456789" → 0x995DC9BBDF1939FA).
        #[test]
        fn known_answer() {
            assert_eq!(super::checksum(b"123456789"), 0x995D_C9BB_DF19_39FA);
            assert_eq!(super::checksum(b""), 0);
        }
    }
}

/// Run-level metadata carried alongside the index.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// WL refinement iterations used by the offline embedding.
    pub wl_iterations: usize,
    /// Whether the kernel stage ran on conflated DAGs.
    pub conflate: bool,
    /// Seed of the producing run (provenance only).
    pub seed: u64,
    /// Number of groups.
    pub k: usize,
    /// Silhouette of the offline clustering (provenance only).
    pub silhouette: f64,
    /// Clustering engine of the producing run (`"dense"` or
    /// `"collapsed"`; provenance only).
    pub cluster_engine: String,
    /// Leading (smallest) normalized-Laplacian eigenvalues of the
    /// offline clustering, ascending — the eigengap diagnostic.
    pub eigenvalues: Vec<f64>,
}

/// Summary of one group, mirroring [`crate::GroupStats`] minus the bulky
/// per-member distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotGroup {
    /// Group label (`'A'` = most populated).
    pub label: char,
    /// Raw cluster id behind the label.
    pub cluster: usize,
    /// Member count.
    pub population: usize,
    /// Fraction of the sample.
    pub fraction: f64,
    /// Mean job size.
    pub mean_size: f64,
    /// Share of straight-chain jobs.
    pub chain_fraction: f64,
    /// Share of short (≤ 3 task) jobs.
    pub short_fraction: f64,
    /// Medoid job name.
    pub representative: String,
}

/// Per-job WL shape provenance: which deduplicated shape a job's φ
/// vector collapsed to, plus the fingerprint of that shape.
///
/// Shape ids are dense and assigned in **first-appearance order** over
/// the sample, so a loader replaying the embedding can verify its own
/// [`ShapeDedup`] reproduces the offline one exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotShape {
    /// Dense shape id (first-appearance order).
    pub shape: usize,
    /// WL fingerprint of the shape's feature vector.
    pub fingerprint: u64,
}

/// Everything `dagscope serve` needs, in saveable/loadable form.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSnapshot {
    /// Run metadata.
    pub meta: SnapshotMeta,
    /// The sampled jobs in sample order (aligned with the model's
    /// assignment vector).
    pub jobs: Vec<Job>,
    /// Assignments + per-group WL centroids.
    pub model: GroupModel,
    /// Group summaries, ordered by label.
    pub groups: Vec<SnapshotGroup>,
    /// Per-job shape ids + fingerprints, in sample order.
    pub shapes: Vec<SnapshotShape>,
}

impl IndexSnapshot {
    /// Distill a completed [`Report`] into a snapshot.
    ///
    /// Only WL-subtree runs are supported: the online classifier embeds
    /// probes with the WL vectorizer, so centroids from a shortest-path
    /// run would live in the wrong feature space.
    pub fn from_report(report: &Report) -> Result<IndexSnapshot, SnapshotError> {
        if report.config.base_kernel != BaseKernel::WlSubtree {
            return Err(SnapshotError::Format(
                "serve snapshots require the WL subtree base kernel (--base-kernel wl)".to_string(),
            ));
        }
        let jobs: Vec<Job> = report.raw_dags.iter().map(dag_to_job).collect();
        let model = GroupModel::fit(
            &report.groups.assignments,
            report.groups.group_count(),
            &report.wl_features,
        );
        let groups = report
            .groups
            .groups
            .iter()
            .map(|g| SnapshotGroup {
                label: g.label,
                cluster: g.cluster,
                population: g.population,
                fraction: g.fraction,
                mean_size: g.mean_size,
                chain_fraction: g.chain_fraction,
                short_fraction: g.short_fraction,
                representative: g.representative.clone(),
            })
            .collect();
        let dedup = ShapeDedup::from_features(&report.wl_features);
        let shapes = dedup
            .shape_of()
            .iter()
            .map(|&s| SnapshotShape {
                shape: s,
                fingerprint: dedup.fingerprints()[s],
            })
            .collect();
        Ok(IndexSnapshot {
            meta: SnapshotMeta {
                wl_iterations: report.config.wl_iterations,
                conflate: report.config.conflate,
                seed: report.config.seed,
                k: report.groups.group_count(),
                silhouette: report.groups.silhouette,
                cluster_engine: report.engine.to_string(),
                eigenvalues: report
                    .laplacian_eigenvalues
                    .iter()
                    .take(SPECTRUM_KEEP)
                    .copied()
                    .collect(),
            },
            jobs,
            model,
            groups,
            shapes,
        })
    }

    /// Render every section to its text form, in write order.
    fn render_sections(&self) -> [(&'static str, String); 5] {
        let mut meta = String::new();
        writeln!(meta, "version={VERSION}").unwrap();
        writeln!(meta, "kernel=wl").unwrap();
        writeln!(meta, "wl_iterations={}", self.meta.wl_iterations).unwrap();
        writeln!(meta, "conflate={}", self.meta.conflate as u8).unwrap();
        writeln!(meta, "seed={}", self.meta.seed).unwrap();
        writeln!(meta, "k={}", self.meta.k).unwrap();
        writeln!(meta, "silhouette={}", self.meta.silhouette).unwrap();
        writeln!(meta, "cluster_engine={}", self.meta.cluster_engine).unwrap();
        // `{}` on f64 round-trips exactly through parse.
        let spectrum: Vec<String> = self.meta.eigenvalues.iter().map(f64::to_string).collect();
        writeln!(meta, "eigenvalues={}", spectrum.join(",")).unwrap();

        let mut rows = String::new();
        for job in &self.jobs {
            for t in &job.tasks {
                rows.push_str(&csv::format_task_line(t));
                rows.push('\n');
            }
        }

        let mut groups = String::from(
            "label,cluster,population,fraction,mean_size,chain_fraction,short_fraction,representative\n",
        );
        for g in &self.groups {
            writeln!(
                groups,
                "{},{},{},{},{},{},{},{}",
                g.label,
                g.cluster,
                g.population,
                g.fraction,
                g.mean_size,
                g.chain_fraction,
                g.short_fraction,
                g.representative
            )
            .unwrap();
        }

        let mut shapes = String::from("shape,fingerprint\n");
        for s in &self.shapes {
            writeln!(shapes, "{},{:016x}", s.shape, s.fingerprint).unwrap();
        }

        [
            ("meta.txt", meta),
            ("jobs.csv", rows),
            ("model.txt", self.model.to_text()),
            ("groups.csv", groups),
            ("shapes.csv", shapes),
        ]
    }

    /// Write the snapshot into `dir` (created if absent), atomically.
    ///
    /// Sections and their checksums are staged into a sibling temp
    /// directory, then renamed into place; a crash mid-save leaves the
    /// previous snapshot (or nothing) at `dir`, never a torn one. The
    /// rename sequence swaps any existing snapshot out via a `.old`
    /// sibling, so re-saving over a live directory is safe too. A crash
    /// in the window between swap-out and swap-in leaves only the `.old`
    /// sibling; [`load`](Self::load) heals that case by renaming the
    /// backup into place before reading.
    pub fn save(&self, dir: &Path) -> Result<(), SnapshotError> {
        let io = |path: &Path, e: std::io::Error| SnapshotError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        };
        let staging = sibling(dir, "staging");
        let backup = sibling(dir, "old");
        // A dead process may have left either sibling behind; both are
        // disposable by construction.
        fs::remove_dir_all(&staging).ok();
        fs::remove_dir_all(&backup).ok();
        fs::create_dir_all(&staging).map_err(|e| io(&staging, e))?;
        // `snapshot.save.abort` marks every crash window between the
        // first byte written and the end of the commit sequence; armed
        // with a `panic` action it simulates the process dying right
        // there (no cleanup code below the site runs). The torture test
        // sweeps the skip count over every window.
        failpoint!("snapshot.save.abort");

        let result = (|| {
            let sections = self.render_sections();
            for (name, data) in &sections {
                let path = staging.join(name);
                // A torn section write: half the bytes land, then the
                // writer dies. Only staging is damaged, so recovery must
                // still find the previous snapshot intact at `dir`.
                failpoint!("snapshot.save.torn_section", |_arg: Option<String>| {
                    fs::write(&path, &data.as_bytes()[..data.len() / 2]).ok();
                    Err(io(
                        &path,
                        std::io::Error::other("injected torn section write"),
                    ))
                });
                fs::write(&path, data).map_err(|e| io(&path, e))?;
                failpoint!("snapshot.save.abort");
            }
            let sums = checksum_lines(&sections);
            let sums_path = staging.join("checksums.txt");
            fs::write(&sums_path, &sums).map_err(|e| io(&sums_path, e))?;
            failpoint!("snapshot.save.abort");

            let had_previous = dir.exists();
            if had_previous {
                rename_dir(dir, &backup).map_err(|e| io(dir, e))?;
                failpoint!("snapshot.save.abort");
            }
            if let Err(e) = rename_dir(&staging, dir) {
                if had_previous {
                    // Roll the previous snapshot back into place.
                    fs::rename(&backup, dir).ok();
                }
                return Err(io(&staging, e));
            }
            failpoint!("snapshot.save.abort");
            fs::remove_dir_all(&backup).ok();
            failpoint!("snapshot.save.abort");
            Ok(())
        })();
        if result.is_err() {
            fs::remove_dir_all(&staging).ok();
        }
        result
    }

    /// Load a snapshot previously written with [`save`](Self::save).
    ///
    /// Every section's CRC64 is verified against `checksums.txt` before
    /// its bytes are parsed; damage surfaces as
    /// [`SnapshotError::Corrupt`] naming the section. If a previous save
    /// died between swapping the old snapshot out and the new one in
    /// (`dir` missing, `<dir>.old` present), the backup is first renamed
    /// back into place — the crash-recovery half of save's atomicity
    /// contract.
    pub fn load(dir: &Path) -> Result<IndexSnapshot, SnapshotError> {
        let backup = sibling(dir, "old");
        if !dir.exists() && backup.exists() {
            fs::rename(&backup, dir).map_err(|e| SnapshotError::Io {
                path: backup.display().to_string(),
                detail: e.to_string(),
            })?;
        }
        let read_raw = |name: &str| -> Result<String, SnapshotError> {
            let path = dir.join(name);
            failpoint!("snapshot.load.read_io", |_arg: Option<String>| Err(
                SnapshotError::Io {
                    path: path.display().to_string(),
                    detail: "injected section read failure".to_string(),
                }
            ));
            fs::read_to_string(&path).map_err(|e| SnapshotError::Io {
                path: path.display().to_string(),
                detail: e.to_string(),
            })
        };
        let bad = |msg: String| SnapshotError::Format(msg);

        let sums_text = read_raw("checksums.txt")?;
        let recorded = |name: &str| -> Result<u64, SnapshotError> {
            let hex = sums_text
                .lines()
                .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
                .ok_or_else(|| bad(format!("checksums.txt has no entry for {name}")))?;
            u64::from_str_radix(hex.trim(), 16)
                .map_err(|e| bad(format!("checksums.txt entry for {name}: {e}")))
        };
        let read = |name: &str| -> Result<String, SnapshotError> {
            let data = read_raw(name)?;
            let expected = recorded(name)?;
            let found = crc64::checksum(data.as_bytes());
            if found != expected {
                return Err(SnapshotError::Corrupt {
                    section: name.to_string(),
                    expected,
                    found,
                });
            }
            Ok(data)
        };

        let meta_text = read("meta.txt")?;
        let meta_kv = |key: &str| -> Result<&str, SnapshotError> {
            meta_text
                .lines()
                .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                .ok_or_else(|| SnapshotError::Format(format!("meta.txt missing {key}")))
        };
        let version: u32 = meta_kv("version")?
            .parse()
            .map_err(|e| bad(format!("bad version: {e}")))?;
        if version != VERSION {
            return Err(bad(format!(
                "snapshot version {version} unsupported (this build reads {VERSION})"
            )));
        }
        if meta_kv("kernel")? != "wl" {
            return Err(bad("snapshot built with a non-WL base kernel".to_string()));
        }
        let meta = SnapshotMeta {
            wl_iterations: meta_kv("wl_iterations")?
                .parse()
                .map_err(|e| bad(format!("bad wl_iterations: {e}")))?,
            conflate: meta_kv("conflate")? == "1",
            seed: meta_kv("seed")?
                .parse()
                .map_err(|e| bad(format!("bad seed: {e}")))?,
            k: meta_kv("k")?
                .parse()
                .map_err(|e| bad(format!("bad k: {e}")))?,
            silhouette: meta_kv("silhouette")?
                .parse()
                .map_err(|e| bad(format!("bad silhouette: {e}")))?,
            cluster_engine: {
                let engine = meta_kv("cluster_engine")?;
                if engine != "dense" && engine != "collapsed" {
                    return Err(bad(format!("bad cluster_engine: {engine:?}")));
                }
                engine.to_string()
            },
            eigenvalues: {
                let raw = meta_kv("eigenvalues")?;
                if raw.is_empty() {
                    Vec::new()
                } else {
                    raw.split(',')
                        .map(|v| v.parse().map_err(|e| bad(format!("bad eigenvalue: {e}"))))
                        .collect::<Result<Vec<f64>, _>>()?
                }
            },
        };

        let rows = csv::read_tasks(read("jobs.csv")?.as_bytes()).map_err(|e| bad(e.to_string()))?;
        let jobs = group_rows_in_order(rows);

        let model = GroupModel::from_text(&read("model.txt")?).map_err(bad)?;

        let mut groups = Vec::new();
        for line in read("groups.csv")?.lines().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 8 {
                return Err(bad(format!("bad groups.csv row: {line:?}")));
            }
            let num = |s: &str, what: &str| -> Result<f64, SnapshotError> {
                s.parse().map_err(|e| bad(format!("bad {what}: {e}")))
            };
            groups.push(SnapshotGroup {
                label: f[0]
                    .chars()
                    .next()
                    .ok_or_else(|| bad(format!("empty label in {line:?}")))?,
                cluster: f[1].parse().map_err(|e| bad(format!("bad cluster: {e}")))?,
                population: f[2]
                    .parse()
                    .map_err(|e| bad(format!("bad population: {e}")))?,
                fraction: num(f[3], "fraction")?,
                mean_size: num(f[4], "mean_size")?,
                chain_fraction: num(f[5], "chain_fraction")?,
                short_fraction: num(f[6], "short_fraction")?,
                representative: f[7].to_string(),
            });
        }

        let mut shapes = Vec::new();
        for line in read("shapes.csv")?.lines().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let (shape, fp) = line
                .split_once(',')
                .ok_or_else(|| bad(format!("bad shapes.csv row: {line:?}")))?;
            shapes.push(SnapshotShape {
                shape: shape.parse().map_err(|e| bad(format!("bad shape: {e}")))?,
                fingerprint: u64::from_str_radix(fp.trim(), 16)
                    .map_err(|e| bad(format!("bad fingerprint: {e}")))?,
            });
        }

        let snapshot = IndexSnapshot {
            meta,
            jobs,
            model,
            groups,
            shapes,
        };
        snapshot.validate().map_err(bad)?;
        Ok(snapshot)
    }

    /// Internal consistency checks shared by loaders.
    pub fn validate(&self) -> Result<(), String> {
        if self.model.k() != self.meta.k {
            return Err(format!(
                "model k={} disagrees with meta k={}",
                self.model.k(),
                self.meta.k
            ));
        }
        if self.model.assignments().len() != self.jobs.len() {
            return Err(format!(
                "{} assignments for {} jobs",
                self.model.assignments().len(),
                self.jobs.len()
            ));
        }
        if self.groups.len() != self.meta.k {
            return Err(format!(
                "{} group rows for k={}",
                self.groups.len(),
                self.meta.k
            ));
        }
        let mut covered = vec![false; self.meta.k];
        for g in &self.groups {
            if g.cluster >= self.meta.k || covered[g.cluster] {
                return Err(format!(
                    "group rows do not partition clusters 0..{}",
                    self.meta.k
                ));
            }
            covered[g.cluster] = true;
        }
        if self.shapes.len() != self.jobs.len() {
            return Err(format!(
                "{} shape rows for {} jobs",
                self.shapes.len(),
                self.jobs.len()
            ));
        }
        // Shape ids must be dense in first-appearance order, and every
        // occurrence of a shape must carry the same fingerprint.
        let mut next_shape = 0usize;
        let mut fp_of: Vec<u64> = Vec::new();
        for (i, s) in self.shapes.iter().enumerate() {
            if s.shape > next_shape {
                return Err(format!(
                    "shapes.csv row {i}: shape {} breaks first-appearance order",
                    s.shape
                ));
            }
            if s.shape == next_shape {
                next_shape += 1;
                fp_of.push(s.fingerprint);
            } else if fp_of[s.shape] != s.fingerprint {
                return Err(format!(
                    "shapes.csv row {i}: fingerprint {:016x} disagrees with \
                     shape {}'s {:016x}",
                    s.fingerprint, s.shape, fp_of[s.shape]
                ));
            }
        }
        Ok(())
    }
}

/// Reconstruct a [`Job`]'s task rows from its (pre-conflation) DAG. The
/// dependency structure lives entirely in the task names; attributes the
/// DAG kept are restored, and fields it dropped (status, absolute
/// timestamps, type code) get fixed placeholder values — none of them
/// participate in serving.
fn dag_to_job(dag: &dagscope_graph::JobDag) -> Job {
    let job_name: dagscope_trace::IStr = dag.name.as_str().into();
    let tasks = (0..dag.len())
        .map(|i| {
            let a = dag.attr(i);
            TaskRecord {
                task_name: dag.task_name(i).to_string(),
                instance_num: a.instance_num,
                job_name: job_name.clone(),
                task_type: "1".into(),
                status: Status::Terminated,
                start_time: 1,
                end_time: 1 + a.duration,
                plan_cpu: a.plan_cpu,
                plan_mem: a.plan_mem,
            }
        })
        .collect();
    Job {
        name: dag.name.clone(),
        tasks,
    }
}

/// Group task rows into jobs preserving **first-appearance order** — unlike
/// [`dagscope_trace::JobSet::from_tasks`], which name-sorts. Snapshot rows
/// are written in sample order and the model's assignment vector is aligned
/// with that order, so it must survive the round trip.
fn group_rows_in_order(rows: Vec<TaskRecord>) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    let mut index: std::collections::HashMap<dagscope_trace::IStr, usize> =
        std::collections::HashMap::new();
    for row in rows {
        match index.get(&row.job_name) {
            Some(&i) => jobs[i].tasks.push(row),
            None => {
                index.insert(row.job_name.clone(), jobs.len());
                jobs.push(Job {
                    name: row.job_name.to_string(),
                    tasks: vec![row],
                });
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};

    fn report() -> Report {
        Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 25,
            seed: 11,
            ..Default::default()
        })
        .run()
        .unwrap()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dagscope_snap_{tag}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        assert_eq!(snap.jobs.len(), 25);
        assert_eq!(snap.model.assignments(), &r.groups.assignments[..]);
        assert_eq!(snap.groups.len(), 5);
        assert_eq!(snap.shapes.len(), 25);

        let dir = tmp_dir("rt");
        snap.save(&dir).unwrap();
        let back = IndexSnapshot::load(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.model, snap.model, "model must round-trip bit-exactly");
        assert_eq!(back.groups, snap.groups);
        assert_eq!(back.shapes, snap.shapes);
        // Job order and structure survive; rebuilt DAGs embed identically.
        assert_eq!(back.jobs.len(), snap.jobs.len());
        for (a, b) in back.jobs.iter().zip(&snap.jobs) {
            assert_eq!(a.name, b.name);
            let da = dagscope_graph::JobDag::from_job(a).unwrap();
            let db = dagscope_graph::JobDag::from_job(b).unwrap();
            let mut wl = dagscope_wl::WlVectorizer::new(3);
            assert_eq!(wl.transform(&da), wl.transform(&db));
        }
    }

    #[test]
    fn rebuilt_dags_match_report_wl_features() {
        // The core bit-identity claim: replaying DAG build → conflate → WL
        // over snapshot rows reproduces the offline feature vectors.
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        let dags: Vec<_> = snap
            .jobs
            .iter()
            .map(|j| dagscope_graph::JobDag::from_job(j).unwrap())
            .collect();
        let kernel_input: Vec<_> = if snap.meta.conflate {
            dags.iter()
                .map(dagscope_graph::conflate::conflate)
                .collect()
        } else {
            dags
        };
        let mut wl = dagscope_wl::WlVectorizer::new(snap.meta.wl_iterations);
        let feats = wl.transform_all_sequential(&kernel_input);
        assert_eq!(feats, r.wl_features);
        // Replayed dedup reproduces the recorded shape provenance.
        let dedup = ShapeDedup::from_features(&feats);
        for (i, s) in snap.shapes.iter().enumerate() {
            assert_eq!(s.shape, dedup.shape_of()[i]);
            assert_eq!(s.fingerprint, dedup.fingerprints()[s.shape]);
        }
    }

    #[test]
    fn meta_records_engine_and_spectrum() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        assert_eq!(snap.meta.cluster_engine, "dense");
        let eig = &snap.meta.eigenvalues;
        assert!(!eig.is_empty() && eig.len() <= SPECTRUM_KEEP);
        assert!(eig[0].abs() < 1e-8, "Laplacian spectrum starts at 0");
        assert!(eig.windows(2).all(|w| w[0] <= w[1]), "ascending");
        // A collapsed run records its engine too.
        let rc = Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 25,
            seed: 11,
            cluster_engine: crate::ClusterEngine::Collapsed,
            ..Default::default()
        })
        .run()
        .unwrap();
        let snap_c = IndexSnapshot::from_report(&rc).unwrap();
        assert_eq!(snap_c.meta.cluster_engine, "collapsed");
        // Exact f64 round-trip through the text form is covered by the
        // meta equality assertion in `round_trip_preserves_everything`;
        // an unknown engine value is rejected by the loader.
        let dir = tmp_dir("engine");
        snap.save(&dir).unwrap();
        let meta = std::fs::read_to_string(dir.join("meta.txt")).unwrap();
        tamper_with_valid_crc(
            &dir,
            "meta.txt",
            &meta.replace("cluster_engine=dense", "cluster_engine=bogus"),
        );
        assert!(matches!(
            IndexSnapshot::load(&dir).unwrap_err(),
            SnapshotError::Format(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sp_kernel_run_is_rejected() {
        let r = Pipeline::new(PipelineConfig {
            jobs: 300,
            sample: 20,
            seed: 3,
            base_kernel: BaseKernel::ShortestPath,
            ..Default::default()
        })
        .run()
        .unwrap();
        assert!(IndexSnapshot::from_report(&r).is_err());
    }

    /// Rewrite one section and refresh its recorded checksum, so the
    /// tamper reaches the parser instead of tripping the CRC gate.
    fn tamper_with_valid_crc(dir: &Path, name: &str, data: &str) {
        std::fs::write(dir.join(name), data).unwrap();
        let sums = std::fs::read_to_string(dir.join("checksums.txt")).unwrap();
        let fixed: String = sums
            .lines()
            .map(|l| {
                if l.starts_with(name) {
                    format!("{name} {:016x}\n", crc64::checksum(data.as_bytes()))
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(dir.join("checksums.txt"), fixed).unwrap();
    }

    #[test]
    fn load_rejects_corruption() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        let dir = tmp_dir("bad");
        snap.save(&dir).unwrap();

        // A bit-flip in any section trips the CRC gate, naming the section.
        let meta = std::fs::read_to_string(dir.join("meta.txt")).unwrap();
        std::fs::write(dir.join("meta.txt"), meta.replace("kernel=wl", "kernel=wL")).unwrap();
        match IndexSnapshot::load(&dir).unwrap_err() {
            SnapshotError::Corrupt { section, .. } => assert_eq!(section, "meta.txt"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::write(dir.join("meta.txt"), meta.clone()).unwrap();
        assert!(IndexSnapshot::load(&dir).is_ok());

        // Wrong version (checksum refreshed so the parser sees it).
        tamper_with_valid_crc(&dir, "meta.txt", &meta.replace("version=4", "version=9"));
        assert!(matches!(
            IndexSnapshot::load(&dir).unwrap_err(),
            SnapshotError::Format(_)
        ));
        tamper_with_valid_crc(&dir, "meta.txt", &meta);
        assert!(IndexSnapshot::load(&dir).is_ok());

        // Truncated model: assignments no longer match the job count.
        let model = std::fs::read_to_string(dir.join("model.txt")).unwrap();
        tamper_with_valid_crc(
            &dir,
            "model.txt",
            &model.replace("assignments ", "assignments 0 "),
        );
        assert!(IndexSnapshot::load(&dir).is_err());
        tamper_with_valid_crc(&dir, "model.txt", &model);
        assert!(IndexSnapshot::load(&dir).is_ok());

        // Torn write: a truncated section is caught by the CRC, not by a
        // codec error deep inside parsing.
        let rows = std::fs::read_to_string(dir.join("jobs.csv")).unwrap();
        std::fs::write(dir.join("jobs.csv"), &rows[..rows.len() / 2]).unwrap();
        match IndexSnapshot::load(&dir).unwrap_err() {
            SnapshotError::Corrupt { section, .. } => assert_eq!(section, "jobs.csv"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::write(dir.join("jobs.csv"), rows).unwrap();

        // Shape ids out of first-appearance order fail validation even
        // with a valid checksum.
        let shapes = std::fs::read_to_string(dir.join("shapes.csv")).unwrap();
        let skipped = shapes.replacen("0,", "7,", 1);
        tamper_with_valid_crc(&dir, "shapes.csv", &skipped);
        assert!(matches!(
            IndexSnapshot::load(&dir).unwrap_err(),
            SnapshotError::Format(_)
        ));
        tamper_with_valid_crc(&dir, "shapes.csv", &shapes);
        assert!(IndexSnapshot::load(&dir).is_ok());

        // checksums.txt missing an entry.
        let sums = std::fs::read_to_string(dir.join("checksums.txt")).unwrap();
        let partial: String = sums.lines().skip(1).map(|l| format!("{l}\n")).collect();
        std::fs::write(dir.join("checksums.txt"), partial).unwrap();
        assert!(matches!(
            IndexSnapshot::load(&dir).unwrap_err(),
            SnapshotError::Format(_)
        ));
        std::fs::write(dir.join("checksums.txt"), sums).unwrap();

        // Missing file.
        std::fs::remove_file(dir.join("groups.csv")).unwrap();
        assert!(matches!(
            IndexSnapshot::load(&dir).unwrap_err(),
            SnapshotError::Io { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_and_resave_safe() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        let dir = tmp_dir("atomic");
        snap.save(&dir).unwrap();
        // Re-saving over a live snapshot must succeed and leave no
        // staging/backup residue.
        snap.save(&dir).unwrap();
        assert!(!sibling(&dir, "staging").exists());
        assert!(!sibling(&dir, "old").exists());
        assert!(IndexSnapshot::load(&dir).is_ok());
        // A stale staging directory from a crashed save is swept.
        std::fs::create_dir_all(sibling(&dir, "staging")).unwrap();
        std::fs::write(sibling(&dir, "staging").join("junk"), "x").unwrap();
        snap.save(&dir).unwrap();
        assert!(!sibling(&dir, "staging").exists());
        assert!(IndexSnapshot::load(&dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_appearance_grouping_keeps_sample_order() {
        let r = report();
        let snap = IndexSnapshot::from_report(&r).unwrap();
        let names: Vec<&str> = snap.jobs.iter().map(|j| j.name.as_str()).collect();
        let sample: Vec<&str> = r.sample_names.iter().map(String::as_str).collect();
        assert_eq!(names, sample);
    }
}
