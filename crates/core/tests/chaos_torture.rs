//! Crash-consistency torture for the snapshot save path.
//!
//! `IndexSnapshot::save` claims atomicity: a crash anywhere between the
//! first byte written and the final rename must leave a directory from
//! which `load` yields either the intact previous snapshot or the
//! complete new one — never a torn accept. This suite *proves* it by
//! sweeping a `panic`-armed failpoint (`snapshot.save.abort`) across
//! every crash window of an overwriting save and loading after each
//! simulated death.
//!
//! Build with `--features failpoints`; the whole file vanishes without
//! the feature.
#![cfg(feature = "failpoints")]

use dagscope_core::{IndexSnapshot, Pipeline, PipelineConfig, SnapshotError};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The failpoint registry is process-global and `reset()` clears every
/// site, so tests sharing this binary must not overlap.
fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn snapshot(jobs: usize, sample: usize, seed: u64) -> IndexSnapshot {
    let report = Pipeline::new(PipelineConfig {
        jobs,
        sample,
        seed,
        ..Default::default()
    })
    .run()
    .unwrap();
    IndexSnapshot::from_report(&report).unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dagscope_chaos_{tag}_{}", std::process::id()))
}

/// Silence the default panic hook for the duration of `f` so the abort
/// sweep does not spray backtraces into the test output.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Kill the save at every abort window of an overwriting save; after
/// each crash the directory must load as exactly the old snapshot or
/// exactly the new one, and a follow-up clean save must still commit.
#[test]
fn crash_at_every_abort_point_preserves_a_complete_snapshot() {
    let _g = exclusive();
    let old = snapshot(300, 25, 11);
    let new = snapshot(400, 30, 17);
    assert_ne!(old, new, "torture needs two distinguishable snapshots");
    let dir = tmp_dir("sweep");
    std::fs::remove_dir_all(&dir).ok();
    for p in ["staging", "old"] {
        std::fs::remove_dir_all(dir.with_extension(p)).ok();
    }

    // Count the abort windows of one overwriting save: arm the site with
    // `off` (counts hits, never fires) and save new-over-old once.
    old.save(&dir).unwrap();
    dagscope_faults::configure("snapshot.save.abort", "off").unwrap();
    new.save(&dir).unwrap();
    let windows = dagscope_faults::hits("snapshot.save.abort");
    dagscope_faults::reset();
    assert!(
        windows >= 9,
        "expected a window per section write plus the commit sequence, got {windows}"
    );

    let mut survived_old = 0u64;
    let mut survived_new = 0u64;
    quiet_panics(|| {
        for k in 0..windows {
            // Fresh previous snapshot, then a save of `new` that dies at
            // abort window k (skip k hits, then panic once).
            std::fs::remove_dir_all(&dir).ok();
            old.save(&dir).unwrap();
            dagscope_faults::configure("snapshot.save.abort", &format!("{k}>1*panic(crash)"))
                .unwrap();
            let death = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| new.save(&dir)));
            dagscope_faults::reset();
            assert!(
                death.is_err(),
                "abort window {k} of {windows} never fired — sweep out of range"
            );

            // Recovery: a restarted process loads the directory.
            let loaded = IndexSnapshot::load(&dir)
                .unwrap_or_else(|e| panic!("crash at window {k}: recovery load failed: {e}"));
            if loaded == old {
                survived_old += 1;
            } else if loaded == new {
                survived_new += 1;
            } else {
                panic!("crash at window {k}: loaded snapshot is neither old nor new");
            }

            // And the next clean save must commit regardless of debris.
            new.save(&dir).unwrap();
            assert_eq!(IndexSnapshot::load(&dir).unwrap(), new);
        }
    });
    // Early windows keep the old snapshot, the post-commit windows the
    // new one; both outcomes must actually occur across the sweep.
    assert!(survived_old > 0, "no window preserved the old snapshot");
    assert!(survived_new > 0, "no window preserved the new snapshot");

    std::fs::remove_dir_all(&dir).ok();
}

/// The two rename steps are injectable failures (not crashes): save must
/// report the error and leave the previous snapshot in place.
#[test]
fn rename_failures_report_error_and_keep_previous() {
    let _g = exclusive();
    let old = snapshot(300, 25, 11);
    let new = snapshot(400, 30, 17);
    let dir = tmp_dir("rename");
    std::fs::remove_dir_all(&dir).ok();
    old.save(&dir).unwrap();

    // Hit 1: the swap-out of the previous snapshot to `.old`.
    dagscope_faults::configure("snapshot.save.rename", "1*return").unwrap();
    assert!(matches!(new.save(&dir), Err(SnapshotError::Io { .. })));
    dagscope_faults::reset();
    assert_eq!(IndexSnapshot::load(&dir).unwrap(), old);

    // Hit 2: the commit rename; the rollback path must restore `.old`.
    dagscope_faults::configure("snapshot.save.rename", "1>1*return").unwrap();
    assert!(matches!(new.save(&dir), Err(SnapshotError::Io { .. })));
    dagscope_faults::reset();
    assert_eq!(IndexSnapshot::load(&dir).unwrap(), old);

    std::fs::remove_dir_all(&dir).ok();
}

/// A torn section write fails the save; the staged debris never reaches
/// the live directory.
#[test]
fn torn_section_write_keeps_previous_snapshot() {
    let _g = exclusive();
    let old = snapshot(300, 25, 11);
    let new = snapshot(400, 30, 17);
    let dir = tmp_dir("torn");
    std::fs::remove_dir_all(&dir).ok();
    old.save(&dir).unwrap();

    dagscope_faults::configure("snapshot.save.torn_section", "2>1*return").unwrap();
    assert!(matches!(new.save(&dir), Err(SnapshotError::Io { .. })));
    dagscope_faults::reset();
    assert_eq!(IndexSnapshot::load(&dir).unwrap(), old);
    std::fs::remove_dir_all(&dir).ok();
}

/// Bit rot injected into the recorded checksums commits "successfully"
/// but must be rejected at load with `Corrupt` naming the section —
/// never a silently wrong model.
#[test]
fn crc_flip_is_rejected_at_load_naming_the_section() {
    let _g = exclusive();
    let snap = snapshot(300, 25, 11);
    let dir = tmp_dir("crc");
    std::fs::remove_dir_all(&dir).ok();

    dagscope_faults::configure("snapshot.save.crc_flip", "1*return").unwrap();
    snap.save(&dir).unwrap();
    dagscope_faults::reset();
    match IndexSnapshot::load(&dir) {
        Err(SnapshotError::Corrupt { section, .. }) => {
            assert_eq!(section, "shapes.csv", "the flip lands on the last section")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// An injected read failure at load surfaces as `Io`, not a bogus parse.
#[test]
fn injected_load_read_error_is_io() {
    let _g = exclusive();
    let snap = snapshot(300, 25, 11);
    let dir = tmp_dir("loadio");
    std::fs::remove_dir_all(&dir).ok();
    snap.save(&dir).unwrap();

    dagscope_faults::configure("snapshot.load.read_io", "1*return").unwrap();
    assert!(matches!(
        IndexSnapshot::load(&dir),
        Err(SnapshotError::Io { .. })
    ));
    dagscope_faults::reset();
    assert_eq!(IndexSnapshot::load(&dir).unwrap(), snap);
    std::fs::remove_dir_all(&dir).ok();
}
