//! Property tests: sharded batch embedding is bit-identical to the
//! sequential oracle for random DAG batches, iteration depths, shard
//! counts, and weighting modes — and leaves the vectorizer in the same
//! vocabulary state.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dagscope_graph::JobDag;
use dagscope_trace::gen::{build_shape, ShapeKind};
use dagscope_wl::WlVectorizer;

fn shape_strategy() -> impl Strategy<Value = ShapeKind> {
    prop::sample::select(ShapeKind::ALL.to_vec())
}

fn arbitrary_dag() -> impl Strategy<Value = JobDag> {
    (shape_strategy(), 2usize..=16, any::<u64>()).prop_map(|(shape, n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        JobDag::from_plan("j", &build_shape(&mut rng, shape, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_bit_identical_for_random_batches(
        dags in prop::collection::vec(arbitrary_dag(), 1..32),
        h in 0usize..4,
        threads in 1usize..9,
        weighted in any::<bool>(),
    ) {
        let mut seq = WlVectorizer::new(h).weighted(weighted);
        let want = seq.transform_all_sequential(&dags);
        let mut par = WlVectorizer::new(h).weighted(weighted);
        let got = par.transform_all_sharded(&dags, threads);
        prop_assert_eq!(&got, &want);
        // The merged vocabulary is canonical: same size, and the next
        // embedding out of either vectorizer agrees.
        prop_assert_eq!(par.vocabulary_size(), seq.vocabulary_size());
        prop_assert_eq!(par.transform(&dags[0]), seq.transform(&dags[0]));
    }

    #[test]
    fn sharded_after_warmup_matches(
        warmup in arbitrary_dag(),
        dags in prop::collection::vec(arbitrary_dag(), 1..16),
        threads in 2usize..6,
    ) {
        // A pre-populated vocabulary (labels below the shard base) must
        // be reused, not re-minted, by every shard.
        let mut seq = WlVectorizer::new(3);
        seq.transform(&warmup);
        let want = seq.transform_all_sequential(&dags);
        let mut par = WlVectorizer::new(3);
        par.transform(&warmup);
        prop_assert_eq!(par.transform_all_sharded(&dags, threads), want);
        prop_assert_eq!(par.vocabulary_size(), seq.vocabulary_size());
    }
}
