//! Property tests over random job DAGs: kernel axioms for both base
//! kernels, plus PSD-ness of assembled Gram matrices.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dagscope_graph::JobDag;
use dagscope_linalg::eigh;
use dagscope_trace::gen::{build_shape, ShapeKind};
use dagscope_wl::{kernel_matrix, normalize_kernel, sp_kernel, SpVectorizer, WlVectorizer};

fn shape_strategy() -> impl Strategy<Value = ShapeKind> {
    prop::sample::select(ShapeKind::ALL.to_vec())
}

fn arbitrary_dag() -> impl Strategy<Value = JobDag> {
    (shape_strategy(), 2usize..=20, any::<u64>()).prop_map(|(shape, n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        JobDag::from_plan("j", &build_shape(&mut rng, shape, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wl_kernel_axioms(a in arbitrary_dag(), b in arbitrary_dag(), h in 0usize..4) {
        let mut wl = WlVectorizer::new(h);
        let fa = wl.transform(&a);
        let fb = wl.transform(&b);
        // Symmetry + Cauchy-Schwarz.
        prop_assert!((fa.dot(&fb) - fb.dot(&fa)).abs() < 1e-9);
        prop_assert!(fa.dot(&fb) <= (fa.norm_sq() * fb.norm_sq()).sqrt() + 1e-9);
        // Self-similarity dominates after normalization.
        let c = fa.cosine(&fb);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn sp_kernel_axioms(a in arbitrary_dag(), b in arbitrary_dag()) {
        let k = sp_kernel(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&k));
        prop_assert!((sp_kernel(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((sp_kernel(&b, &a) - k).abs() < 1e-9);
    }

    #[test]
    fn kernel_matrices_are_psd(dags in prop::collection::vec(arbitrary_dag(), 2..12),
                               h in 0usize..3) {
        let mut wl = WlVectorizer::new(h);
        let feats = wl.transform_all(&dags);
        let k = kernel_matrix(&feats);
        let eig = eigh(&k).unwrap();
        let scale = eig.eigenvalues.last().copied().unwrap_or(1.0).abs().max(1.0);
        for ev in &eig.eigenvalues {
            prop_assert!(*ev >= -1e-8 * scale, "negative eigenvalue {ev}");
        }
        // Normalization keeps PSD and bounds entries.
        let kn = normalize_kernel(&k);
        for i in 0..kn.n() {
            for j in 0..kn.n() {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&kn.get(i, j)));
            }
        }
        let eign = eigh(&kn).unwrap();
        for ev in &eign.eigenvalues {
            prop_assert!(*ev >= -1e-8, "normalized negative eigenvalue {ev}");
        }
    }

    #[test]
    fn conflation_preserves_unweighted_embedding_for_pure_fanin(width in 2u32..12) {
        // k parallel maps + one reduce conflates to M→R; unweighted WL and
        // the weighted SP kernel must both treat it consistently.
        let names: Vec<String> = (1..=width).map(|i| format!("M{i}")).collect();
        let sink = format!(
            "R{}_{}",
            width + 1,
            (1..=width).rev().map(|i| i.to_string()).collect::<Vec<_>>().join("_")
        );
        let tasks: Vec<dagscope_trace::TaskRecord> = names
            .iter()
            .chain(std::iter::once(&sink))
            .map(|n| dagscope_trace::TaskRecord {
                task_name: n.clone(),
                instance_num: 1,
                job_name: "j".into(),
                task_type: "1".into(),
                status: dagscope_trace::Status::Terminated,
                start_time: 1,
                end_time: 2,
                plan_cpu: 1.0,
                plan_mem: 0.1,
            })
            .collect();
        let dag = JobDag::from_job(&dagscope_trace::Job { name: "j".into(), tasks }).unwrap();
        let merged = dagscope_graph::conflate::conflate(&dag);
        prop_assert_eq!(merged.len(), 2);
        // Unweighted WL: merged fan-in == plain 2-chain.
        let mut wl = WlVectorizer::new(2);
        let f_merged = wl.transform(&merged);
        let two = JobDag::from_job(&dagscope_trace::Job {
            name: "c".into(),
            tasks: vec![
                dagscope_trace::TaskRecord {
                    task_name: "M1".into(),
                    instance_num: 1,
                    job_name: "c".into(),
                    task_type: "1".into(),
                    status: dagscope_trace::Status::Terminated,
                    start_time: 1,
                    end_time: 2,
                    plan_cpu: 1.0,
                    plan_mem: 0.1,
                },
                dagscope_trace::TaskRecord {
                    task_name: "R2_1".into(),
                    instance_num: 1,
                    job_name: "c".into(),
                    task_type: "1".into(),
                    status: dagscope_trace::Status::Terminated,
                    start_time: 1,
                    end_time: 2,
                    plan_cpu: 1.0,
                    plan_mem: 0.1,
                },
            ],
        })
        .unwrap();
        prop_assert_eq!(f_merged, wl.transform(&two));
        // Weighted SP kernel: merged == original (weights restore counts).
        let mut sp = SpVectorizer::new();
        prop_assert_eq!(sp.transform(&dag), sp.transform(&merged));
    }
}
