//! Property tests pinning the sparse Gram engine to its brute-force
//! oracles: the fingerprint-dedup + inverted-index kernel and the pruned
//! top-k searcher must be **bit-identical** to the pairwise paths on
//! arbitrary DAG populations. Populations get duplicates injected, since
//! collapsing repeats is the whole point of the dedup layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dagscope_graph::JobDag;
use dagscope_trace::gen::{build_shape, ShapeKind};
use dagscope_wl::{kernel_matrix, kernel_matrix_dedup, KernelCache, WlVectorizer};

fn shape_strategy() -> impl Strategy<Value = ShapeKind> {
    prop::sample::select(ShapeKind::ALL.to_vec())
}

fn arbitrary_dag() -> impl Strategy<Value = JobDag> {
    (shape_strategy(), 2usize..=20, any::<u64>()).prop_map(|(shape, n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        JobDag::from_plan("j", &build_shape(&mut rng, shape, n))
    })
}

/// Base DAGs plus extra copies picked by index, so the dedup layer always
/// has identical shapes to collapse.
fn dag_population() -> impl Strategy<Value = Vec<JobDag>> {
    (
        prop::collection::vec(arbitrary_dag(), 2..10),
        prop::collection::vec(any::<u64>(), 0..12),
    )
        .prop_map(|(mut dags, dups)| {
            let extra: Vec<JobDag> = dups
                .iter()
                .map(|&d| dags[(d % dags.len() as u64) as usize].clone())
                .collect();
            dags.extend(extra);
            dags
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dedup_gram_matches_brute_force_bitwise(dags in dag_population(), h in 0usize..3) {
        let mut wl = WlVectorizer::new(h);
        let feats = wl.transform_all_sequential(&dags);
        let oracle = kernel_matrix(&feats);
        let (engine, stats) = kernel_matrix_dedup(&feats);
        prop_assert_eq!(engine.n(), oracle.n());
        for (a, b) in engine.packed().iter().zip(oracle.packed()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(stats.jobs, dags.len());
        prop_assert!(stats.unique_shapes <= stats.jobs);
    }

    #[test]
    fn pruned_nearest_matches_full_scan(dags in dag_population(),
                                        h in 0usize..3,
                                        k in 0usize..25) {
        let cache = KernelCache::from_dags(h, &dags);
        for i in 0..cache.len() {
            let fast = cache.nearest(i, k);
            let slow = cache.nearest_scan(i, k);
            prop_assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert_eq!(a.0, b.0, "query {i} k {k}");
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits(), "query {i} k {k}");
            }
        }
    }

    #[test]
    fn indexed_probe_matches_full_scan(dags in dag_population(),
                                       probe in arbitrary_dag(),
                                       h in 0usize..3) {
        let cache = KernelCache::from_dags(h, &dags);
        let fast = cache.probe(&probe);
        let slow = cache.probe_scan(&probe);
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
