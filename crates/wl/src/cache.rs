//! Incremental kernel cache: grow a similarity index one job at a time.
//!
//! The paper's scheduling use case embeds *incoming* jobs against an
//! existing characterized population. Rebuilding the full kernel matrix per
//! arrival is `O(n²)`; this cache keeps the shared WL vocabulary and the
//! embedded vectors, so adding a job costs one transform plus `n` sparse
//! dots.

use std::sync::OnceLock;

use dagscope_graph::JobDag;
use dagscope_linalg::SymMatrix;
use dagscope_par::pairs::par_upper_triangle;

use crate::topk::{QueryStats, TopkIndex};
use crate::{SparseVec, WlVectorizer};

/// A growing collection of WL-embedded jobs with cosine-similarity queries.
///
/// ```
/// use dagscope_trace::{Job, TaskRecord, Status};
/// use dagscope_graph::JobDag;
/// use dagscope_wl::KernelCache;
/// # fn t(name: &str) -> TaskRecord {
/// #     TaskRecord { task_name: name.into(), instance_num: 1, job_name: "j".into(),
/// #         task_type: "1".into(), status: Status::Terminated, start_time: 1,
/// #         end_time: 2, plan_cpu: 100.0, plan_mem: 0.5 }
/// # }
/// let hist = JobDag::from_job(&Job { name: "old".into(), tasks: vec![t("M1"), t("R2_1")] }).unwrap();
/// let cache = KernelCache::from_dags(3, &[hist]);
/// // Probe an incoming job against the history in O(n) — read-only, so a
/// // server can share the cache across request threads without locking:
/// let incoming = JobDag::from_job(&Job { name: "new".into(), tasks: vec![t("M1"), t("R2_1")] }).unwrap();
/// assert!((cache.probe(&incoming)[0] - 1.0).abs() < 1e-12);
/// ```
///
/// The lifecycle is split in two phases: a **build phase** where
/// [`push`](Self::push) interns each population member's labels into the
/// shared vocabulary (`&mut self`), and a **read phase** where
/// [`probe`](Self::probe) / [`similarity`](Self::similarity) /
/// [`nearest`](Self::nearest) answer queries through `&self` — probes of
/// novel structures use a call-local label overlay
/// ([`WlVectorizer::transform_frozen`]) instead of growing the vocabulary.
#[derive(Debug, Default)]
pub struct KernelCache {
    vectorizer: WlVectorizer,
    names: Vec<String>,
    features: Vec<SparseVec>,
    // Lazily built pruned-search index; invalidated by `push`. Building
    // through `OnceLock` keeps queries `&self` so concurrent readers
    // share one index without locking.
    topk: OnceLock<TopkIndex>,
}

impl KernelCache {
    /// Empty cache with `h` WL iterations.
    pub fn new(h: usize) -> KernelCache {
        KernelCache {
            vectorizer: WlVectorizer::new(h),
            names: Vec::new(),
            features: Vec::new(),
            topk: OnceLock::new(),
        }
    }

    /// Build from an initial population.
    pub fn from_dags(h: usize, dags: &[JobDag]) -> KernelCache {
        let mut cache = KernelCache::new(h);
        for dag in dags {
            cache.push(dag);
        }
        cache
    }

    /// Number of cached jobs.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Job name at index `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// The embedded φ vector of cached job `i`.
    pub fn feature(&self, i: usize) -> &SparseVec {
        &self.features[i]
    }

    /// The shared vectorizer (read access; the vocabulary only grows via
    /// [`push`](Self::push)).
    pub fn vectorizer(&self) -> &WlVectorizer {
        &self.vectorizer
    }

    /// Embed an uncached DAG against the frozen vocabulary (see
    /// [`WlVectorizer::transform_frozen`]).
    pub fn embed(&self, dag: &JobDag) -> SparseVec {
        self.vectorizer.transform_frozen(dag)
    }

    /// Embed and append a job; returns its index. Previously computed
    /// vectors stay valid (the vocabulary only grows); the search index
    /// is rebuilt lazily on the next query.
    pub fn push(&mut self, dag: &JobDag) -> usize {
        self.names.push(dag.name.clone());
        self.features.push(self.vectorizer.transform(dag));
        self.topk.take();
        self.features.len() - 1
    }

    /// The pruned-search index over the current population, built on
    /// first use.
    fn index(&self) -> &TopkIndex {
        self.topk.get_or_init(|| TopkIndex::build(&self.features))
    }

    /// Cosine similarity between cached jobs `i` and `j`.
    pub fn similarity(&self, i: usize, j: usize) -> f64 {
        self.features[i].cosine(&self.features[j])
    }

    /// Similarities of an *uncached* probe DAG against every cached job.
    ///
    /// Read-only: the probe embeds against the frozen vocabulary, with any
    /// novel signature resolved in a call-local overlay, so concurrent
    /// request handlers can probe a shared cache without locking. Results
    /// are bit-identical to the mutable embedding path and independent of
    /// probe order.
    pub fn probe(&self, dag: &JobDag) -> Vec<f64> {
        self.probe_with_stats(dag).0
    }

    /// [`probe`](Self::probe) with the searcher's cost counters: the probe
    /// scores each *unique shape* once through the inverted index and
    /// broadcasts the score to duplicates, instead of one cosine per job.
    pub fn probe_with_stats(&self, dag: &JobDag) -> (Vec<f64>, QueryStats) {
        let feat = self.vectorizer.transform_frozen(dag);
        self.index().scores(&feat)
    }

    /// Reference full-scan probe (one cosine per cached job). Kept as the
    /// equivalence oracle for the inverted-index path; results are
    /// bitwise identical to [`probe`](Self::probe).
    pub fn probe_scan(&self, dag: &JobDag) -> Vec<f64> {
        let feat = self.vectorizer.transform_frozen(dag);
        self.features.iter().map(|f| feat.cosine(f)).collect()
    }

    /// Indices of the `k` most similar cached jobs to cached job `i`
    /// (excluding itself), best first.
    pub fn nearest(&self, i: usize, k: usize) -> Vec<(usize, f64)> {
        self.nearest_with_stats(i, k).0
    }

    /// [`nearest`](Self::nearest) with the searcher's cost counters:
    /// candidates come from the inverted index with norm-bound admission
    /// pruning rather than a full scan.
    pub fn nearest_with_stats(&self, i: usize, k: usize) -> (Vec<(usize, f64)>, QueryStats) {
        self.index().nearest(&self.features[i], Some(i), k)
    }

    /// Reference full-scan `nearest`. Kept as the equivalence oracle for
    /// the pruned searcher; results are bitwise identical to
    /// [`nearest`](Self::nearest).
    pub fn nearest_scan(&self, i: usize, k: usize) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = (0..self.len())
            .filter(|&j| j != i)
            .map(|j| (j, self.similarity(i, j)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// The full normalized similarity matrix of the cached population
    /// (assembled in parallel).
    pub fn matrix(&self) -> SymMatrix {
        let n = self.len();
        let packed = par_upper_triangle(n, |i, j| self.similarity(i, j));
        SymMatrix::from_packed(n, packed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kernel_matrix, normalize_kernel};
    use dagscope_trace::{Job, Status, TaskRecord};

    fn t(name: &str) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: "j".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            plan_cpu: 1.0,
            plan_mem: 0.1,
        }
    }

    fn dag(name: &str, names: &[&str]) -> JobDag {
        JobDag::from_job(&Job {
            name: name.into(),
            tasks: names.iter().map(|n| t(n)).collect(),
        })
        .unwrap()
    }

    fn population() -> Vec<JobDag> {
        vec![
            dag("c2", &["M1", "R2_1"]),
            dag("c3", &["M1", "R2_1", "R3_2"]),
            dag("tri", &["M1", "M2", "R3_2_1"]),
            dag("join", &["M1", "M2", "J3_2_1", "R4_3"]),
        ]
    }

    #[test]
    fn matches_batch_kernel_matrix() {
        let dags = population();
        let cache = KernelCache::from_dags(3, &dags);
        let incr = cache.matrix();
        // Reference: batch vectorizer + normalized Gram matrix.
        let mut wl = WlVectorizer::new(3);
        let feats = wl.transform_all(&dags);
        let batch = normalize_kernel(&kernel_matrix(&feats));
        for i in 0..dags.len() {
            for j in 0..dags.len() {
                assert!((incr.get(i, j) - batch.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn push_after_queries_keeps_old_vectors_valid() {
        let dags = population();
        let mut cache = KernelCache::from_dags(3, &dags);
        let before = cache.similarity(0, 1);
        // New structure extends the vocabulary…
        let idx = cache.push(&dag("new", &["M1", "M2", "M3", "J4_3_2_1", "R5_4"]));
        assert_eq!(idx, 4);
        // …without disturbing existing pairs.
        assert_eq!(cache.similarity(0, 1), before);
        assert!((cache.similarity(4, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probe_without_inserting() {
        let cache = KernelCache::from_dags(3, &population());
        let vocab = cache.vectorizer().vocabulary_size();
        let sims = cache.probe(&dag("probe", &["M1", "R2_1"]));
        assert_eq!(sims.len(), 4);
        assert!((sims[0] - 1.0).abs() < 1e-12, "identical to c2");
        assert_eq!(cache.len(), 4, "probe must not insert");
        // Probing a novel structure must not grow the vocabulary either.
        cache.probe(&dag("novel", &["M1", "M2", "M3", "J4_3_2_1", "R5_4"]));
        assert_eq!(cache.vectorizer().vocabulary_size(), vocab);
    }

    #[test]
    fn probe_matches_interning_oracle() {
        // The read-only probe must score exactly like the old interning
        // probe (a fresh transform through a mutable clone of the shared
        // vocabulary).
        let cache = KernelCache::from_dags(3, &population());
        for probe in [
            dag("p1", &["M1", "R2_1"]),
            dag("p2", &["M1", "M2", "M3", "J4_3_2_1", "R5_4"]),
        ] {
            let got = cache.probe(&probe);
            let mut oracle = WlVectorizer::new(3);
            let feats: Vec<SparseVec> = population().iter().map(|d| oracle.transform(d)).collect();
            let pf = oracle.transform(&probe);
            for (g, f) in got.iter().zip(&feats) {
                assert_eq!(*g, pf.cosine(f));
            }
        }
    }

    #[test]
    fn concurrent_probes_share_the_cache() {
        let cache = KernelCache::from_dags(3, &population());
        let want = cache.probe(&dag("probe", &["M1", "M2", "R3_2_1"]));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = &cache;
                    s.spawn(move || cache.probe(&dag("probe", &["M1", "M2", "R3_2_1"])))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), want);
            }
        });
    }

    #[test]
    fn nearest_ranks_by_similarity() {
        let cache = KernelCache::from_dags(3, &population());
        let nn = cache.nearest(0, 2); // c2's neighbours
        assert_eq!(nn.len(), 2);
        assert!(nn[0].1 >= nn[1].1, "ranked descending");
        // Consistent with direct similarity queries.
        for (j, s) in &nn {
            assert!((cache.similarity(0, *j) - s).abs() < 1e-12);
        }
        // The join job is the least similar of the three.
        assert!(!nn.iter().any(|(j, _)| *j == 3), "join job must rank last");
        // k larger than population clamps.
        assert_eq!(cache.nearest(0, 10).len(), 3);
    }

    #[test]
    fn empty_cache() {
        let cache = KernelCache::new(2);
        assert!(cache.is_empty());
        assert!(cache.probe(&dag("p", &["M1", "R2_1"])).is_empty());
        assert_eq!(cache.matrix().n(), 0);
    }

    #[test]
    fn pruned_nearest_matches_full_scan_bitwise() {
        let mut dags = population();
        dags.extend(population().into_iter().map(|mut d| {
            d.name.push_str("-dup");
            d
        }));
        let cache = KernelCache::from_dags(3, &dags);
        for i in 0..cache.len() {
            for k in 0..=cache.len() + 1 {
                let got = cache.nearest(i, k);
                let want = cache.nearest_scan(i, k);
                assert_eq!(got.len(), want.len(), "i={i} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "i={i} k={k}");
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "i={i} k={k}");
                }
            }
        }
    }

    #[test]
    fn indexed_probe_matches_full_scan_bitwise() {
        let cache = KernelCache::from_dags(3, &population());
        for probe in [
            dag("p1", &["M1", "R2_1"]),
            dag("p2", &["M1", "M2", "M3", "J4_3_2_1", "R5_4"]),
            dag("p3", &["M1"]),
        ] {
            let got = cache.probe(&probe);
            let want = cache.probe_scan(&probe);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn push_invalidates_the_search_index() {
        let mut cache = KernelCache::from_dags(3, &population());
        let before = cache.nearest(0, 10);
        assert_eq!(before.len(), 3);
        cache.push(&dag("c2-twin", &["M1", "R2_1"]));
        let after = cache.nearest(0, 10);
        assert_eq!(after.len(), 4, "new member must be searchable");
        assert_eq!(after, cache.nearest_scan(0, 10));
        let (_, stats) = cache.nearest_with_stats(0, 2);
        assert!(stats.candidates > 0);
    }
}
