//! A minimal FxHash-style hasher for the label-compression tables.
//!
//! Label compression is the hot loop of WL relabeling; SipHash's
//! HashDoS protection buys nothing against our own synthetic keys, so this
//! uses the Firefox/rustc multiply-rotate hash (public-domain algorithm)
//! instead. Benchmarked ~2-3× faster than the default hasher on the short
//! `u32`-slice keys the vectorizer produces.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with the multiply-rotate `FxHasher`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        let key: Vec<u32> = vec![1, 2, 3, 4];
        assert_eq!(hash_of(&key), hash_of(&key.clone()));
    }

    #[test]
    fn distinguishes_permutations_and_lengths() {
        assert_ne!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![3u32, 2, 1]));
        assert_ne!(hash_of(&vec![1u32]), hash_of(&vec![1u32, 0]));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
    }

    #[test]
    fn map_works_as_table() {
        let mut m: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
        m.insert(vec![1, 2].into_boxed_slice(), 7);
        m.insert(vec![2, 1].into_boxed_slice(), 8);
        assert_eq!(m.get(&vec![1u32, 2].into_boxed_slice()).copied(), Some(7));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_tail_disambiguated() {
        // Same leading bytes, different tail lengths must differ.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 3, 0]));
    }
}
