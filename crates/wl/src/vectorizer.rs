//! WL relabeling with a shared, hash-consed label vocabulary.

use dagscope_graph::JobDag;
use dagscope_trace::taskname::TaskKind;

use crate::fx::FxHashMap;
use crate::SparseVec;

/// Sentinel separators inside signature keys; real compressed labels start
/// at 0 and stay well below these.
const SEP_PARENTS: u32 = u32::MAX - 1;
const SEP_CHILDREN: u32 = u32::MAX;

/// Incremental WL feature extractor with a shared label vocabulary.
///
/// Graphs transformed by the same vectorizer share compressed-label ids, so
/// their [`SparseVec`]s are directly comparable — including graphs embedded
/// *after* the initial batch (new signatures extend the vocabulary; old ones
/// reuse their ids, so previously computed vectors stay valid).
///
/// ```
/// use dagscope_trace::{Job, TaskRecord, Status};
/// use dagscope_graph::JobDag;
/// # fn t(name: &str) -> TaskRecord {
/// #     TaskRecord { task_name: name.into(), instance_num: 1, job_name: "j".into(),
/// #         task_type: "1".into(), status: Status::Terminated, start_time: 1,
/// #         end_time: 2, plan_cpu: 100.0, plan_mem: 0.5 }
/// # }
/// let chain = JobDag::from_job(&Job { name: "a".into(), tasks: vec![t("M1"), t("R2_1")] }).unwrap();
/// let same = JobDag::from_job(&Job { name: "b".into(), tasks: vec![t("M1"), t("R2_1")] }).unwrap();
/// let mut wl = dagscope_wl::WlVectorizer::new(3);
/// let (fa, fb) = (wl.transform(&chain), wl.transform(&same));
/// assert_eq!(fa, fb); // isomorphic graphs embed identically
/// ```
#[derive(Debug, Default)]
pub struct WlVectorizer {
    iterations: usize,
    use_weights: bool,
    table: FxHashMap<Box<[u32]>, u32>,
    next_label: u32,
}

impl WlVectorizer {
    /// A vectorizer performing `iterations` WL refinement rounds (the
    /// paper's `n` in eq. (1); 3 is the customary default).
    ///
    /// By default label counts ignore conflation weights — the paper runs
    /// WL on the merged graph as-is, so a conflated fan-in embeds exactly
    /// like a native 2-node chain. Use [`weighted`](Self::weighted) to make
    /// merged nodes count with their original multiplicity instead.
    pub fn new(iterations: usize) -> Self {
        WlVectorizer {
            iterations,
            use_weights: false,
            table: FxHashMap::default(),
            next_label: 0,
        }
    }

    /// Toggle conflation-weight-aware counting (see [`new`](Self::new)).
    pub fn weighted(mut self, yes: bool) -> Self {
        self.use_weights = yes;
        self
    }

    /// Number of WL iterations this vectorizer performs.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Size of the compressed-label vocabulary accumulated so far.
    pub fn vocabulary_size(&self) -> usize {
        self.table.len()
    }

    fn compress(&mut self, key: Box<[u32]>) -> u32 {
        if let Some(&id) = self.table.get(&key) {
            return id;
        }
        let id = self.next_label;
        self.next_label += 1;
        self.table.insert(key, id);
        id
    }

    fn initial_label(&mut self, kind: TaskKind) -> u32 {
        // Initial labels are hash-consed through the same table using a
        // 1-element key (the letter), so ids never collide with signature
        // labels.
        self.compress(vec![kind.letter() as u32].into_boxed_slice())
    }

    /// Embed one DAG: returns the φ vector counting every label over
    /// iterations `0..=h`, each node contributing its conflation weight.
    pub fn transform(&mut self, dag: &JobDag) -> SparseVec {
        let n = dag.len();
        let mut labels: Vec<u32> = (0..n).map(|i| self.initial_label(dag.kind(i))).collect();
        let mut counts: FxHashMap<u32, f64> = FxHashMap::default();
        let use_weights = self.use_weights;
        let bump = |counts: &mut FxHashMap<u32, f64>, labels: &[u32]| {
            for (i, &l) in labels.iter().enumerate() {
                let w = if use_weights {
                    dag.weight(i) as f64
                } else {
                    1.0
                };
                *counts.entry(l).or_insert(0.0) += w;
            }
        };
        bump(&mut counts, &labels);

        let mut scratch: Vec<u32> = Vec::new();
        for _ in 0..self.iterations {
            let mut next = Vec::with_capacity(n);
            for i in 0..n {
                scratch.clear();
                scratch.push(labels[i]);
                scratch.push(SEP_PARENTS);
                let mut ps: Vec<u32> = dag.parents(i).iter().map(|&p| labels[p as usize]).collect();
                ps.sort_unstable();
                scratch.extend_from_slice(&ps);
                scratch.push(SEP_CHILDREN);
                let mut cs: Vec<u32> = dag
                    .children(i)
                    .iter()
                    .map(|&c| labels[c as usize])
                    .collect();
                cs.sort_unstable();
                scratch.extend_from_slice(&cs);
                next.push(self.compress(scratch.as_slice().into()));
            }
            labels = next;
            bump(&mut counts, &labels);
        }
        SparseVec::from_pairs(counts)
    }

    /// Embed one DAG **without mutating the vocabulary** — the read path
    /// for concurrent servers.
    ///
    /// Signatures already in the vocabulary resolve to their canonical ids;
    /// novel signatures get provisional ids from `next_label` upward in a
    /// call-local overlay that is discarded afterwards. Because the mutable
    /// [`transform`](Self::transform) assigns exactly those ids in exactly
    /// that discovery order, the returned vector is **bit-identical** to
    /// what `transform` would have produced on the same state — but `self`
    /// stays untouched, so any number of threads can call this through a
    /// shared reference with no locking.
    ///
    /// Provisional ids are only meaningful within the returned vector: they
    /// can never collide with a cached vector's ids (those are all below
    /// `next_label`), so dot products against vocabulary-resident vectors
    /// are exact; two *frozen* vectors from different calls must not be
    /// compared against each other unless both structures were fully
    /// in-vocabulary.
    pub fn transform_frozen(&self, dag: &JobDag) -> SparseVec {
        let mut overlay: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
        let mut next_overlay = self.next_label;
        let mut compress = |key: Box<[u32]>| -> u32 {
            if let Some(&id) = self.table.get(&key) {
                return id;
            }
            if let Some(&id) = overlay.get(&key) {
                return id;
            }
            let id = next_overlay;
            next_overlay += 1;
            overlay.insert(key, id);
            id
        };

        let n = dag.len();
        let mut labels: Vec<u32> = (0..n)
            .map(|i| compress(vec![dag.kind(i).letter() as u32].into_boxed_slice()))
            .collect();
        let mut counts: FxHashMap<u32, f64> = FxHashMap::default();
        let use_weights = self.use_weights;
        let bump = |counts: &mut FxHashMap<u32, f64>, labels: &[u32]| {
            for (i, &l) in labels.iter().enumerate() {
                let w = if use_weights {
                    dag.weight(i) as f64
                } else {
                    1.0
                };
                *counts.entry(l).or_insert(0.0) += w;
            }
        };
        bump(&mut counts, &labels);

        let mut scratch: Vec<u32> = Vec::new();
        for _ in 0..self.iterations {
            let mut next = Vec::with_capacity(n);
            for i in 0..n {
                scratch.clear();
                scratch.push(labels[i]);
                scratch.push(SEP_PARENTS);
                let mut ps: Vec<u32> = dag.parents(i).iter().map(|&p| labels[p as usize]).collect();
                ps.sort_unstable();
                scratch.extend_from_slice(&ps);
                scratch.push(SEP_CHILDREN);
                let mut cs: Vec<u32> = dag
                    .children(i)
                    .iter()
                    .map(|&c| labels[c as usize])
                    .collect();
                cs.sort_unstable();
                scratch.extend_from_slice(&cs);
                next.push(compress(scratch.as_slice().into()));
            }
            labels = next;
            bump(&mut counts, &labels);
        }
        SparseVec::from_pairs(counts)
    }

    /// Embed a batch, sharding the work across threads for large batches.
    ///
    /// Produces **bit-identical** output to
    /// [`transform_all_sequential`](Self::transform_all_sequential) — same
    /// vectors, same final vocabulary, same label ids — for any thread
    /// count and any shard split. Small batches take the sequential path
    /// directly; the crossover is where shard bookkeeping stops paying for
    /// itself on typical job DAGs.
    pub fn transform_all(&mut self, dags: &[JobDag]) -> Vec<SparseVec> {
        const PAR_THRESHOLD: usize = 64;
        let threads = dagscope_par::parallelism();
        if threads <= 1 || dags.len() < PAR_THRESHOLD {
            return self.transform_all_sequential(dags);
        }
        self.transform_all_sharded(dags, threads)
    }

    /// Embed a batch one DAG at a time on the calling thread. This is the
    /// reference implementation the sharded path is tested against.
    pub fn transform_all_sequential(&mut self, dags: &[JobDag]) -> Vec<SparseVec> {
        dags.iter().map(|d| self.transform(d)).collect()
    }

    /// Two-phase sharded embedding.
    ///
    /// **Phase 1 (parallel):** split `dags` into contiguous shards; each
    /// shard clones the current vocabulary snapshot and embeds its DAGs
    /// locally, assigning provisional ids from the snapshot's `next_label`
    /// upward. **Phase 2 (sequential merge):** walk shards in order,
    /// re-playing each shard's newly discovered keys (in local-id order)
    /// against the shared table to obtain canonical ids, then rewrite each
    /// shard vector through the local→canonical map.
    ///
    /// Equivalence to the sequential path holds exactly:
    /// * a shard's local ids are assigned in first-occurrence order, so
    ///   replaying its new keys in id order reproduces the discovery order
    ///   a sequential pass over those DAGs would have had;
    /// * signature keys only reference labels that already exist when the
    ///   key is formed, so by induction every element of a new key has a
    ///   canonical id by the time the key is remapped (1-element keys are
    ///   initial letter keys and are replayed verbatim);
    /// * the neighbour segments of a signature are *sorted by label id*, and
    ///   local ids order differently than canonical ids, so after remapping
    ///   each segment is re-sorted — yielding exactly the byte key the
    ///   sequential pass forms for that signature;
    /// * per-DAG counts are accumulated in node order either way, so the
    ///   `f64` values — not just their ordering — match bit for bit.
    pub fn transform_all_sharded(&mut self, dags: &[JobDag], threads: usize) -> Vec<SparseVec> {
        let base = self.next_label;
        let shard_size = dags.len().div_ceil(threads);
        let shards: Vec<&[JobDag]> = dags.chunks(shard_size).collect();

        let outs = dagscope_par::par_map(&shards, |shard: &&[JobDag]| {
            let mut local = WlVectorizer {
                iterations: self.iterations,
                use_weights: self.use_weights,
                table: self.table.clone(),
                next_label: self.next_label,
            };
            let vecs: Vec<SparseVec> = shard.iter().map(|d| local.transform(d)).collect();
            let mut new_keys: Vec<(Box<[u32]>, u32)> = local
                .table
                .into_iter()
                .filter(|&(_, id)| id >= base)
                .collect();
            new_keys.sort_unstable_by_key(|&(_, id)| id);
            let new_keys: Vec<Box<[u32]>> = new_keys.into_iter().map(|(k, _)| k).collect();
            (vecs, new_keys)
        });

        let mut result = Vec::with_capacity(dags.len());
        for (vecs, new_keys) in outs {
            // Canonical id for each of this shard's provisional ids
            // `base..base + new_keys.len()`, in order.
            let mut local_to_global: Vec<u32> = Vec::with_capacity(new_keys.len());
            let remap = |e: u32, map: &[u32]| -> u32 {
                if e >= SEP_PARENTS || e < base {
                    e
                } else {
                    map[(e - base) as usize]
                }
            };
            for key in new_keys {
                let canonical: Box<[u32]> = if key.len() == 1 {
                    // Initial letter key: its element is a character code,
                    // not a label id.
                    key
                } else {
                    let mut k: Vec<u32> = key.iter().map(|&e| remap(e, &local_to_global)).collect();
                    // Re-sort the neighbour segments: the shard sorted them
                    // by local id, the canonical key is sorted by global id.
                    // Layout: [own, SEP_PARENTS, parents.., SEP_CHILDREN,
                    // children..]; the separators exceed every label id, so
                    // sorting the segments between them is safe.
                    let sep = k
                        .iter()
                        .position(|&e| e == SEP_CHILDREN)
                        .expect("signature key has a children separator");
                    k[2..sep].sort_unstable();
                    k[sep + 1..].sort_unstable();
                    k.into_boxed_slice()
                };
                let gid = self.compress(canonical);
                local_to_global.push(gid);
            }
            for v in vecs {
                result.push(SparseVec::from_pairs(
                    v.iter().map(|(i, c)| (remap(i, &local_to_global), c)),
                ));
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_trace::{Job, Status, TaskRecord};

    fn t(name: &str) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: "j".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            plan_cpu: 1.0,
            plan_mem: 0.1,
        }
    }

    fn dag(name: &str, names: &[&str]) -> JobDag {
        JobDag::from_job(&Job {
            name: name.into(),
            tasks: names.iter().map(|n| t(n)).collect(),
        })
        .unwrap()
    }

    #[test]
    fn isomorphic_graphs_same_features() {
        // Same topology, different id spellings and row orders.
        let a = dag("a", &["M1", "M2", "R3_2_1"]);
        let b = dag("b", &["R9_7_5", "M5", "M7"]);
        let mut wl = WlVectorizer::new(3);
        let fa = wl.transform(&a);
        let fb = wl.transform(&b);
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_topologies_differ() {
        let chain = dag("a", &["M1", "R2_1", "R3_2"]);
        let tri = dag("b", &["M1", "M2", "R3_2_1"]);
        let mut wl = WlVectorizer::new(3);
        assert_ne!(wl.transform(&chain), wl.transform(&tri));
    }

    #[test]
    fn direction_sensitivity() {
        // Convergent (2 maps -> reduce) vs diffuse (1 map -> 2 reduces):
        // undirected WL would confuse these mirrors; ours must not.
        let conv = dag("a", &["M1", "M2", "R3_2_1"]);
        let diff = dag("b", &["M1", "R2_1", "R3_1"]);
        let mut wl = WlVectorizer::new(2);
        let (fc, fd) = (wl.transform(&conv), wl.transform(&diff));
        assert_ne!(fc, fd);
        assert!(fc.cosine(&fd) < 1.0);
    }

    #[test]
    fn label_mass_is_h_plus_one_times_weight() {
        let d = dag("a", &["M1", "M3", "R2_1", "R4_3", "R5_4_3_2_1"]);
        for h in 0..4 {
            let mut wl = WlVectorizer::new(h);
            let f = wl.transform(&d);
            assert_eq!(f.mass(), ((h + 1) * 5) as f64);
        }
    }

    #[test]
    fn weighted_conflated_graph_keeps_h0_mass() {
        let big = dag("a", &["M1", "M2", "M3", "R4_3_2_1"]);
        let small = dagscope_graph::conflate::conflate(&big);
        let mut wl = WlVectorizer::new(0).weighted(true);
        let fb = wl.transform(&big);
        let fs = wl.transform(&small);
        // At h=0 the label masses per kind are identical (weights count).
        assert_eq!(fb.mass(), fs.mass());
        assert_eq!(fb, fs);
    }

    #[test]
    fn unweighted_conflated_fanin_embeds_like_a_two_chain() {
        // Paper behaviour: after conflation a wide map fan-in IS an M->R
        // chain; unweighted WL must embed the two identically.
        let fanin =
            dagscope_graph::conflate::conflate(&dag("a", &["M1", "M2", "M3", "M4", "R5_4_3_2_1"]));
        let two_chain = dag("b", &["M1", "R2_1"]);
        let mut wl = WlVectorizer::new(3);
        assert_eq!(wl.transform(&fanin), wl.transform(&two_chain));
        // With weighting on they differ.
        let mut wlw = WlVectorizer::new(3).weighted(true);
        assert_ne!(wlw.transform(&fanin), wlw.transform(&two_chain));
    }

    #[test]
    fn vocabulary_shared_and_growing() {
        let mut wl = WlVectorizer::new(2);
        let a = dag("a", &["M1", "R2_1"]);
        let f1 = wl.transform(&a);
        let v1 = wl.vocabulary_size();
        // Transforming the same graph again adds nothing and reproduces
        // the identical vector (vocabulary stability).
        let f2 = wl.transform(&a);
        assert_eq!(wl.vocabulary_size(), v1);
        assert_eq!(f1, f2);
        // A new structure extends the vocabulary.
        let b = dag("b", &["M1", "M2", "J3_2_1", "R4_3"]);
        let _ = wl.transform(&b);
        assert!(wl.vocabulary_size() > v1);
    }

    #[test]
    fn zero_iterations_counts_kinds_only() {
        let mut wl = WlVectorizer::new(0);
        let f = wl.transform(&dag("a", &["M1", "M2", "R3_2_1"]));
        assert_eq!(f.nnz(), 2); // labels {M, R}
        assert_eq!(f.mass(), 3.0);
    }

    #[test]
    fn transform_all_matches_individual() {
        let dags = vec![dag("a", &["M1", "R2_1"]), dag("b", &["M1", "M2", "R3_2_1"])];
        let mut wl1 = WlVectorizer::new(3);
        let batch = wl1.transform_all(&dags);
        let mut wl2 = WlVectorizer::new(3);
        let solo: Vec<_> = dags.iter().map(|d| wl2.transform(d)).collect();
        assert_eq!(batch, solo);
    }

    /// A varied batch mixing chains, fan-ins, fan-outs, and joins so shards
    /// both rediscover shared signatures and contribute fresh ones.
    fn varied_batch(n: usize) -> Vec<JobDag> {
        let shapes: [&[&str]; 6] = [
            &["M1", "R2_1"],
            &["M1", "R2_1", "R3_2"],
            &["M1", "M2", "R3_2_1"],
            &["M1", "R2_1", "R3_1"],
            &["M1", "M2", "J3_2_1", "R4_3"],
            &["M1", "M3", "R2_1", "R4_3", "R5_4_3_2_1"],
        ];
        (0..n)
            .map(|i| dag(&format!("j{i}"), shapes[i % shapes.len()]))
            .collect()
    }

    #[test]
    fn sharded_bit_identical_to_sequential() {
        let dags = varied_batch(100);
        let probe = dag("probe", &["M1", "M2", "M3", "R4_3_2_1"]);
        let mut seq = WlVectorizer::new(3);
        let want = seq.transform_all_sequential(&dags);
        let want_vocab = seq.vocabulary_size();
        let want_probe = seq.transform(&probe);
        for threads in [2, 3, 5, 16] {
            let mut par = WlVectorizer::new(3);
            let got = par.transform_all_sharded(&dags, threads);
            assert_eq!(got, want, "threads={threads}");
            // The merged vocabulary is canonical too: same size, and a
            // subsequent embedding agrees with the sequential vectorizer's.
            assert_eq!(par.vocabulary_size(), want_vocab);
            assert_eq!(par.transform(&probe), want_probe);
        }
    }

    #[test]
    fn sharded_with_prepopulated_vocabulary() {
        let dags = varied_batch(80);
        let warmup = dag("w", &["M1", "M2", "R3_2_1", "J4_3"]);
        let mut seq = WlVectorizer::new(3);
        seq.transform(&warmup);
        let want = seq.transform_all_sequential(&dags);
        let mut par = WlVectorizer::new(3);
        par.transform(&warmup);
        let got = par.transform_all_sharded(&dags, 4);
        assert_eq!(got, want);
        assert_eq!(par.vocabulary_size(), seq.vocabulary_size());
    }

    #[test]
    fn sharded_weighted_matches_sequential() {
        let dags: Vec<JobDag> = varied_batch(70)
            .iter()
            .map(dagscope_graph::conflate::conflate)
            .collect();
        let mut seq = WlVectorizer::new(2).weighted(true);
        let want = seq.transform_all_sequential(&dags);
        let mut par = WlVectorizer::new(2).weighted(true);
        assert_eq!(par.transform_all_sharded(&dags, 3), want);
    }

    #[test]
    fn frozen_transform_matches_mut_transform() {
        // Warm a vocabulary, then embed a mix of seen and novel structures
        // through both paths; vectors must be bit-identical and the frozen
        // path must leave the vocabulary untouched.
        let mut wl = WlVectorizer::new(3);
        wl.transform_all(&varied_batch(30));
        let vocab = wl.vocabulary_size();
        let probes = [
            dag("seen", &["M1", "R2_1"]),
            dag("novel", &["M1", "M2", "M3", "J4_3_2_1", "R5_4", "R6_5"]),
        ];
        for p in &probes {
            let frozen = wl.transform_frozen(p);
            assert_eq!(wl.vocabulary_size(), vocab, "frozen path must not intern");
            // Oracle: a clone that IS allowed to intern.
            let mut oracle = WlVectorizer {
                iterations: wl.iterations,
                use_weights: wl.use_weights,
                table: wl.table.clone(),
                next_label: wl.next_label,
            };
            assert_eq!(frozen, oracle.transform(p), "probe {}", p.name);
        }
    }

    #[test]
    fn frozen_transform_weighted() {
        let big = dag("a", &["M1", "M2", "M3", "R4_3_2_1"]);
        let small = dagscope_graph::conflate::conflate(&big);
        let mut wl = WlVectorizer::new(2).weighted(true);
        wl.transform(&big);
        let frozen = wl.transform_frozen(&small);
        let mutated = wl.transform(&small);
        assert_eq!(frozen, mutated);
    }

    #[test]
    fn public_transform_all_uses_parallel_path_above_threshold() {
        // Under a forced multi-thread scope, a 100-dag batch crosses the
        // threshold; results must still match the sequential oracle.
        let dags = varied_batch(100);
        let _scope = dagscope_par::ParScope::new(4);
        let mut par = WlVectorizer::new(3);
        let got = par.transform_all(&dags);
        let mut seq = WlVectorizer::new(3);
        assert_eq!(got, seq.transform_all_sequential(&dags));
    }
}
