//! Exact graph edit distance — the baseline the paper argues *against*.
//!
//! Section V-D notes the conventional similarity measure for graphs is edit
//! distance, whose exact computation is exponential in the node count; the
//! WL kernel replaces it with a polynomial-time comparison. This module
//! implements exact unit-cost GED with branch-and-bound so the ablation
//! bench (`ablate_ged_vs_wl`) can reproduce that cost cliff, and so small
//! cases can cross-validate kernel rankings.
//!
//! Costs: node insertion/deletion 1, node relabeling 1, directed edge
//! insertion/deletion 1.

use std::collections::HashSet;

use dagscope_graph::JobDag;

const EPS: usize = usize::MAX; // "deleted" assignment

struct Ged<'a> {
    a_labels: Vec<char>,
    b_labels: Vec<char>,
    a_edges: Vec<(usize, usize)>,
    b_has: HashSet<(usize, usize)>,
    b_edges: &'a [(usize, usize)],
    best: u32,
}

impl Ged<'_> {
    /// Recursive assignment of A-node `i`; `map[u]` is the B-image of
    /// assigned nodes, `used[j]` marks taken B nodes.
    fn search(&mut self, i: usize, map: &mut Vec<usize>, used: &mut Vec<bool>, cost: u32) {
        if cost >= self.best {
            return;
        }
        if i == self.a_labels.len() {
            let total = cost + self.remainder_cost(map, used);
            if total < self.best {
                self.best = total;
            }
            return;
        }
        // Try mapping a_i to every free B node.
        for j in 0..self.b_labels.len() {
            if used[j] {
                continue;
            }
            let mut step = u32::from(self.a_labels[i] != self.b_labels[j]);
            step += self.edge_delta(i, j, map);
            used[j] = true;
            map.push(j);
            self.search(i + 1, map, used, cost + step);
            map.pop();
            used[j] = false;
        }
        // Or delete a_i: node cost 1 plus its edges to already-placed nodes.
        let mut step = 1u32;
        for &(u, v) in &self.a_edges {
            if (u == i && v < i) || (v == i && u < i) {
                step += 1;
            }
        }
        map.push(EPS);
        self.search(i + 1, map, used, cost + step);
        map.pop();
    }

    /// Edge cost of placing a_i at b_j against previously placed nodes.
    fn edge_delta(&self, i: usize, j: usize, map: &[usize]) -> u32 {
        let mut delta = 0;
        for (u, &img) in map.iter().enumerate() {
            // A-edges incident to i and an earlier node u.
            let a_uv = self.a_edges.contains(&(u, i));
            let a_vu = self.a_edges.contains(&(i, u));
            if img == EPS {
                delta += u32::from(a_uv) + u32::from(a_vu);
                continue;
            }
            let b_uv = self.b_has.contains(&(img, j));
            let b_vu = self.b_has.contains(&(j, img));
            delta += u32::from(a_uv != b_uv) + u32::from(a_vu != b_vu);
        }
        delta
    }

    /// Cost of everything B-side that no A node claimed: leftover node
    /// insertions plus B edges with at least one unmatched endpoint.
    fn remainder_cost(&self, map: &[usize], used: &[bool]) -> u32 {
        let _ = map;
        let unmatched_nodes = used.iter().filter(|u| !**u).count() as u32;
        let mut unmatched_edges = 0;
        for &(u, v) in self.b_edges {
            if !used[u] || !used[v] {
                unmatched_edges += 1;
            }
        }
        unmatched_nodes + unmatched_edges
    }
}

fn labels_of(dag: &JobDag) -> Vec<char> {
    (0..dag.len()).map(|i| dag.kind(i).letter()).collect()
}

fn edges_of(dag: &JobDag) -> Vec<(usize, usize)> {
    dag.edges().map(|(p, c)| (p as usize, c as usize)).collect()
}

/// Exact unit-cost graph edit distance between two job DAGs.
///
/// Exponential in the smaller node count — usable up to ~10 nodes; the
/// point of the baseline is precisely that this does not scale.
///
/// ```
/// use dagscope_trace::{Job, TaskRecord, Status};
/// use dagscope_graph::JobDag;
/// # fn t(name: &str) -> TaskRecord {
/// #     TaskRecord { task_name: name.into(), instance_num: 1, job_name: "j".into(),
/// #         task_type: "1".into(), status: Status::Terminated, start_time: 1,
/// #         end_time: 2, plan_cpu: 100.0, plan_mem: 0.5 }
/// # }
/// let a = JobDag::from_job(&Job { name: "a".into(), tasks: vec![t("M1"), t("R2_1")] }).unwrap();
/// let b = JobDag::from_job(&Job { name: "b".into(), tasks: vec![t("M1"), t("R2_1"), t("R3_2")] }).unwrap();
/// assert_eq!(dagscope_wl::ged::edit_distance(&a, &a), 0);
/// assert_eq!(dagscope_wl::ged::edit_distance(&a, &b), 2); // +1 node, +1 edge
/// ```
pub fn edit_distance(a: &JobDag, b: &JobDag) -> u32 {
    // Search assigns A onto B; fewer A nodes → shallower recursion.
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let a_labels = labels_of(a);
    let b_labels = labels_of(b);
    let a_edges = edges_of(a);
    let b_edges = edges_of(b);
    let trivial = (a_labels.len() + a_edges.len() + b_labels.len() + b_edges.len()) as u32;
    let mut ged = Ged {
        a_labels,
        b_labels,
        a_edges,
        b_has: b_edges.iter().copied().collect(),
        b_edges: &b_edges,
        best: trivial + 1,
    };
    let mut map = Vec::new();
    let mut used = vec![false; ged.b_labels.len()];
    ged.search(0, &mut map, &mut used, 0);
    ged.best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_trace::{Job, Status, TaskRecord};

    fn t(name: &str) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: "j".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            plan_cpu: 1.0,
            plan_mem: 0.1,
        }
    }

    fn dag(names: &[&str]) -> JobDag {
        JobDag::from_job(&Job {
            name: "j".into(),
            tasks: names.iter().map(|n| t(n)).collect(),
        })
        .unwrap()
    }

    #[test]
    fn identity_is_zero() {
        let d = dag(&["M1", "M3", "R2_1", "R4_3", "R5_4_3_2_1"]);
        assert_eq!(edit_distance(&d, &d), 0);
    }

    #[test]
    fn isomorphic_is_zero() {
        let a = dag(&["M1", "M2", "R3_2_1"]);
        let b = dag(&["M5", "M9", "R11_9_5"]);
        assert_eq!(edit_distance(&a, &b), 0);
    }

    #[test]
    fn single_relabel_costs_one() {
        let a = dag(&["M1", "M2", "R3_2_1"]);
        let b = dag(&["M1", "M2", "J3_2_1"]);
        assert_eq!(edit_distance(&a, &b), 1);
    }

    #[test]
    fn node_plus_edge_extension() {
        let a = dag(&["M1", "R2_1"]);
        let b = dag(&["M1", "R2_1", "R3_2"]);
        assert_eq!(edit_distance(&a, &b), 2);
        // Symmetric.
        assert_eq!(edit_distance(&b, &a), 2);
    }

    #[test]
    fn direction_matters() {
        // Fan-in (2 maps -> R) vs fan-out (M -> 2 reduces): same undirected
        // skeleton, but labels + directions force a nonzero distance.
        let fan_in = dag(&["M1", "M2", "R3_2_1"]);
        let fan_out = dag(&["M1", "R2_1", "R3_1"]);
        assert!(edit_distance(&fan_in, &fan_out) > 0);
    }

    #[test]
    fn triangle_closer_to_triangle_than_chain_is() {
        let tri4 = dag(&["M1", "M2", "M3", "R4_3_2_1"]);
        let tri5 = dag(&["M1", "M2", "M3", "M4", "R5_4_3_2_1"]);
        let chain5 = dag(&["M1", "R2_1", "R3_2", "R4_3", "R5_4"]);
        assert!(edit_distance(&tri4, &tri5) < edit_distance(&chain5, &tri5));
    }

    #[test]
    fn agrees_with_wl_ranking_on_small_graphs() {
        // GED (distance) and WL (similarity) should order this pair triple
        // consistently.
        let c3 = dag(&["M1", "R2_1", "R3_2"]);
        let c4 = dag(&["M1", "R2_1", "R3_2", "R4_3"]);
        let tri = dag(&["M1", "M2", "M3", "R4_3_2_1"]);
        let ged_close = edit_distance(&c3, &c4);
        let ged_far = edit_distance(&c3, &tri);
        assert!(ged_close < ged_far);
        let wl_close = crate::wl_kernel(&c3, &c4, 3);
        let wl_far = crate::wl_kernel(&c3, &tri, 3);
        assert!(wl_close > wl_far);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let x = dag(&["M1", "R2_1"]);
        let y = dag(&["M1", "M2", "R3_2_1"]);
        let z = dag(&["M1", "R2_1", "R3_2", "R4_3"]);
        let (xy, yz, xz) = (
            edit_distance(&x, &y),
            edit_distance(&y, &z),
            edit_distance(&x, &z),
        );
        assert!(xz <= xy + yz, "{xz} > {xy} + {yz}");
    }
}
