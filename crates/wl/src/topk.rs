//! Exact cosine top-k search over the WL inverted index.
//!
//! Online queries (`KernelCache::nearest`, `KernelCache::probe`,
//! `ServeIndex::similar`) used to linear-scan every cached job. This module
//! scores *unique shapes* through the feature→shape postings lists instead,
//! then broadcasts each shape's score to its member jobs, and prunes
//! candidate admission with the query's suffix-norm bound (Bayardo,
//! Ma & Srikant, "Scaling Up All Pairs Similarity Search", WWW 2007).
//!
//! # Exactness invariants
//!
//! The searcher reproduces the full-scan oracle **bitwise**:
//!
//! * partial dots accumulate over the query's features in increasing index
//!   order from `0.0` — the exact add sequence of the merge-join
//!   [`SparseVec::dot`]; shapes sharing no feature keep the same literal
//!   `0.0` the full scan's `cosine` would return;
//! * the final score divides by `(‖q‖²·‖x‖²).sqrt()` exactly as
//!   [`SparseVec::cosine`] does, with the stored `‖x‖²` taken from a
//!   bitwise-identical representative vector;
//! * the norm bound only *suppresses admission of unseen candidates*, and
//!   only once the k-th best already-admitted partial score strictly
//!   exceeds the best score any unseen candidate could still reach
//!   (partial cosines of non-negative vectors grow monotonically, so an
//!   admitted candidate's partial score lower-bounds its final score).
//!   The comparison is strict and the bound is inflated by a hair
//!   (`1 + 1e-9`) to absorb floating-point rounding of the bound itself,
//!   so ties are never pruned and tie-breaking stays exact. Populations
//!   or queries with negative values disable pruning entirely.

use crate::fx::FxHashMap;
use crate::gram::ShapeDedup;
use crate::SparseVec;

/// Per-query cost counters, surfaced through `/metrics` on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Distinct shapes admitted as candidates.
    pub candidates: u64,
    /// Postings entries visited while accumulating partial dots.
    pub scanned: u64,
    /// First-touch admissions suppressed by the norm bound.
    pub pruned: u64,
}

impl QueryStats {
    /// Accumulate another query's counters (used by batch callers).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.candidates += other.candidates;
        self.scanned += other.scanned;
        self.pruned += other.pruned;
    }
}

/// An immutable cosine-similarity index over a job population: shape
/// dedup, feature→shape postings, and per-shape norms.
#[derive(Debug)]
pub struct TopkIndex {
    shape_of: Vec<usize>,
    members: Vec<Vec<u32>>,
    norms_sq: Vec<f64>,
    postings: FxHashMap<u32, Vec<(u32, f64)>>,
    nonnegative: bool,
    jobs: usize,
}

impl TopkIndex {
    /// Build the index from a job population's feature vectors.
    pub fn build(features: &[SparseVec]) -> TopkIndex {
        let dedup = ShapeDedup::from_features(features);
        let m = dedup.unique_count();
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (j, &s) in dedup.shape_of().iter().enumerate() {
            members[s].push(j as u32);
        }
        let mut postings: FxHashMap<u32, Vec<(u32, f64)>> = FxHashMap::default();
        let mut norms_sq = Vec::with_capacity(m);
        let mut nonnegative = true;
        for (s, &r) in dedup.representatives().iter().enumerate() {
            let f = &features[r];
            norms_sq.push(f.norm_sq());
            for (idx, v) in f.iter() {
                if v < 0.0 {
                    nonnegative = false;
                }
                postings.entry(idx).or_default().push((s as u32, v));
            }
        }
        TopkIndex {
            shape_of: dedup.shape_of().to_vec(),
            members,
            norms_sq,
            postings,
            nonnegative,
            jobs: features.len(),
        }
    }

    /// Number of indexed jobs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of distinct shapes.
    pub fn shape_count(&self) -> usize {
        self.members.len()
    }

    /// Shape id of each indexed job.
    pub fn shape_of(&self) -> &[usize] {
        &self.shape_of
    }

    /// Accumulate candidate shapes and their exact cosine scores for
    /// `query`. When `admit_jobs` is `Some(k)` (and every value in play is
    /// non-negative), admission of unseen shapes stops once the k best
    /// already-admitted jobs provably beat anything still unseen.
    /// Already-admitted candidates always accumulate to their exact final
    /// score. Returns `(shape, score)` pairs in admission order.
    fn score_shapes(
        &self,
        query: &SparseVec,
        admit: Option<(usize, Option<usize>)>,
        stats: &mut QueryStats,
    ) -> Vec<(usize, f64)> {
        let qn = query.norm_sq();
        if qn == 0.0 || self.jobs == 0 {
            return Vec::new();
        }
        let m = self.members.len();
        let mut acc = vec![0.0f64; m];
        let mut touched = vec![false; m];
        let mut order: Vec<usize> = Vec::new();

        let prune = self.nonnegative && admit.is_some() && query.iter().all(|(_, v)| v >= 0.0);
        // suffix_sq[t] = Σ_{u ≥ t} qv_u² — an upper bound (with ‖x‖) on
        // the dot product any shape first seen at feature position t can
        // still accumulate.
        let suffix_sq: Vec<f64> = if prune {
            let vals: Vec<f64> = query.iter().map(|(_, v)| v).collect();
            let mut out = vec![0.0f64; vals.len() + 1];
            for t in (0..vals.len()).rev() {
                out[t] = out[t + 1] + vals[t] * vals[t];
            }
            out
        } else {
            Vec::new()
        };
        let (admit_k, exclude) = admit.unwrap_or((usize::MAX, None));
        let excluded_shape = exclude.map(|j| self.shape_of[j]);

        let mut closed = false;
        for (t, (idx, qv)) in query.iter().enumerate() {
            let Some(list) = self.postings.get(&idx) else {
                continue;
            };
            if prune && !closed {
                let bound = (suffix_sq[t] / qn).sqrt() * (1.0 + 1e-9);
                if let Some(theta) = self.kth_partial(&order, &acc, qn, admit_k, excluded_shape) {
                    if bound < theta {
                        closed = true;
                    }
                }
            }
            for &(s, v) in list {
                stats.scanned += 1;
                let s = s as usize;
                if touched[s] {
                    acc[s] += qv * v;
                } else if !closed {
                    touched[s] = true;
                    order.push(s);
                    acc[s] += qv * v;
                } else {
                    stats.pruned += 1;
                }
            }
        }
        stats.candidates += order.len() as u64;
        order
            .into_iter()
            .map(|s| {
                let denom = (qn * self.norms_sq[s]).sqrt();
                let score = if denom == 0.0 { 0.0 } else { acc[s] / denom };
                (s, score)
            })
            .collect()
    }

    /// The k-th best (multiplicity-weighted, exclusion-adjusted) partial
    /// cosine among admitted shapes, or `None` while fewer than `k`
    /// candidate jobs have been admitted.
    fn kth_partial(
        &self,
        order: &[usize],
        acc: &[f64],
        qn: f64,
        k: usize,
        excluded_shape: Option<usize>,
    ) -> Option<f64> {
        let mut partials: Vec<(f64, usize)> = order
            .iter()
            .map(|&s| {
                let denom = (qn * self.norms_sq[s]).sqrt();
                let p = if denom == 0.0 { 0.0 } else { acc[s] / denom };
                let mut count = self.members[s].len();
                if excluded_shape == Some(s) {
                    count -= 1;
                }
                (p, count)
            })
            .collect();
        partials.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let mut seen = 0usize;
        for (p, count) in partials {
            seen += count;
            if seen >= k {
                return Some(p);
            }
        }
        None
    }

    /// Exact cosine scores of `query` against every indexed job (the
    /// `probe` shape): scores are computed once per shape and broadcast to
    /// members; jobs sharing no feature with the query score exactly 0.0.
    pub fn scores(&self, query: &SparseVec) -> (Vec<f64>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut out = vec![0.0f64; self.jobs];
        for (s, score) in self.score_shapes(query, None, &mut stats) {
            for &j in &self.members[s] {
                out[j as usize] = score;
            }
        }
        (out, stats)
    }

    /// The `k` most similar indexed jobs to `query`, best first, ties
    /// broken by ascending job index — bitwise identical to sorting a full
    /// scan with
    /// `b.score.partial_cmp(&a.score).unwrap().then(a.index.cmp(&b.index))`
    /// and truncating. `exclude` removes one job (the query itself when it
    /// is a member of the index).
    pub fn nearest(
        &self,
        query: &SparseVec,
        exclude: Option<usize>,
        k: usize,
    ) -> (Vec<(usize, f64)>, QueryStats) {
        let mut stats = QueryStats::default();
        let scored = self.score_shapes(query, Some((k, exclude)), &mut stats);
        let negatives = scored.iter().any(|&(_, s)| s < 0.0);

        let mut cands: Vec<(usize, f64)> = Vec::new();
        let mut is_cand = vec![false; self.members.len()];
        for &(s, score) in &scored {
            is_cand[s] = true;
            for &j in &self.members[s] {
                let j = j as usize;
                if Some(j) != exclude {
                    cands.push((j, score));
                }
            }
        }
        cands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        let zero_jobs = |out: &mut Vec<(usize, f64)>, limit: usize| {
            for j in 0..self.jobs {
                if out.len() >= limit {
                    break;
                }
                if Some(j) != exclude && !is_cand[self.shape_of[j]] {
                    out.push((j, 0.0));
                }
            }
        };

        if negatives {
            // Zeros outrank negative candidates: merge everything and
            // re-sort (pruning was disabled on this path, so the list is
            // complete).
            zero_jobs(&mut cands, usize::MAX);
            cands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            cands.truncate(k);
        } else {
            // Non-negative scores are strictly positive for candidates, so
            // zero-scored non-candidates pad the tail in ascending index
            // order — exactly where the full sort would place them.
            cands.truncate(k);
            zero_jobs(&mut cands, k);
        }
        (cands, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.iter().copied())
    }

    fn population() -> Vec<SparseVec> {
        vec![
            v(&[(0, 2.0), (3, 1.0)]),
            v(&[(0, 2.0), (3, 1.0)]), // dup of 0
            v(&[(3, 4.0), (5, 1.0)]),
            v(&[(9, 7.0)]), // disjoint
            v(&[(0, 1.0), (5, 2.0)]),
            SparseVec::default(),
        ]
    }

    fn oracle_nearest(
        feats: &[SparseVec],
        q: &SparseVec,
        exclude: Option<usize>,
        k: usize,
    ) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = (0..feats.len())
            .filter(|&j| Some(j) != exclude)
            .map(|j| (j, q.cosine(&feats[j])))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    #[test]
    fn scores_match_full_scan_bitwise() {
        let feats = population();
        let index = TopkIndex::build(&feats);
        for q in &feats {
            let (got, _) = index.scores(q);
            let want: Vec<f64> = feats.iter().map(|f| q.cosine(f)).collect();
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn nearest_matches_oracle_for_every_k() {
        let feats = population();
        let index = TopkIndex::build(&feats);
        for i in 0..feats.len() {
            for k in 0..=feats.len() + 1 {
                let (got, _) = index.nearest(&feats[i], Some(i), k);
                let want = oracle_nearest(&feats, &feats[i], Some(i), k);
                assert_eq!(got.len(), want.len(), "i={i} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "i={i} k={k}");
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "i={i} k={k}");
                }
            }
        }
    }

    #[test]
    fn pruning_skips_admissions_but_keeps_results_exact() {
        // Many duplicate strong matches sharing the query's early
        // features, plus weak tail shapes reachable only through a
        // low-mass late feature: once the top-k partials beat the
        // remaining suffix norm, admission must close without changing
        // the answer.
        let mut feats = vec![v(&[(0, 10.0), (1, 10.0), (2, 10.0)]); 8];
        for t in 0..40 {
            feats.push(v(&[(50, 30.0 + t as f64), (100 + t, 50.0)]));
        }
        let index = TopkIndex::build(&feats);
        let q = v(&[(0, 10.0), (1, 10.0), (2, 10.0), (50, 0.001)]);
        let (got, stats) = index.nearest(&q, None, 4);
        let want = oracle_nearest(&feats, &q, None, 4);
        assert_eq!(got, want);
        assert!(
            stats.pruned > 0,
            "expected the norm bound to engage: {stats:?}"
        );
    }

    #[test]
    fn negative_values_disable_pruning_and_stay_exact() {
        let feats = vec![
            v(&[(0, 1.0), (1, -2.0)]),
            v(&[(0, 1.0), (1, 1.0)]),
            v(&[(2, 1.0)]),
            v(&[(1, 3.0)]),
        ];
        let index = TopkIndex::build(&feats);
        for i in 0..feats.len() {
            for k in 0..=feats.len() {
                let (got, stats) = index.nearest(&feats[i], Some(i), k);
                let want = oracle_nearest(&feats, &feats[i], Some(i), k);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0);
                    assert_eq!(g.1.to_bits(), w.1.to_bits());
                }
                assert_eq!(got.len(), want.len());
                assert_eq!(stats.pruned, 0);
            }
        }
    }

    #[test]
    fn empty_index_and_empty_query() {
        let index = TopkIndex::build(&[]);
        assert_eq!(index.scores(&v(&[(0, 1.0)])).0.len(), 0);
        let feats = population();
        let index = TopkIndex::build(&feats);
        let (scores, _) = index.scores(&SparseVec::default());
        assert!(scores.iter().all(|&s| s == 0.0));
        let (nn, _) = index.nearest(&SparseVec::default(), None, 3);
        assert_eq!(nn, vec![(0, 0.0), (1, 0.0), (2, 0.0)]);
    }

    #[test]
    fn stats_absorb() {
        let mut a = QueryStats {
            candidates: 1,
            scanned: 2,
            pruned: 3,
        };
        a.absorb(&QueryStats {
            candidates: 10,
            scanned: 20,
            pruned: 30,
        });
        assert_eq!(a.scanned, 22);
        assert_eq!(a.candidates, 11);
        assert_eq!(a.pruned, 33);
    }
}
