//! The Weisfeiler-Lehman subtree kernel over job DAGs (Section V-D).
//!
//! Implements the paper's similarity machinery, following Shervashidze et
//! al. (JMLR 2011):
//!
//! 1. every node starts from its stage-type label (`M` / `J` / `R` / other),
//! 2. for `h` iterations, each node's label is replaced by a *compressed*
//!    label of the signature `(own label, sorted parent labels, sorted
//!    child labels)` — direction-aware, because a convergent job
//!    (inverted triangle) and its mirror (trapezium) must not collide,
//! 3. the feature map `φ(G)` counts every label from every iteration
//!    (eq. (2) of the paper); conflated nodes contribute their merge
//!    weight, so a conflated DAG keeps the label mass of the original,
//! 4. `k(G, G') = ⟨φ(G), φ(G')⟩`, assembled in parallel into the pairwise
//!    similarity matrix of Fig 7 and normalized to `[0, 1]` with
//!    `k̂ = k / √(k(G,G)·k(G',G'))`.
//!
//! Label compression is hash-consed in a shared vocabulary
//! ([`WlVectorizer`]), so vectors of different graphs are directly
//! comparable and new jobs can be embedded incrementally (used by the
//! scheduler-advisor example). A baseline exact [`ged::edit_distance`] is
//! provided to reproduce the paper's cost argument for preferring kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fx;
pub mod ged;
mod gram;
mod kernel;
pub mod sp;
mod sparse;
mod topk;
mod vectorizer;

pub use cache::KernelCache;
pub use fx::FxHashMap;
pub use gram::{
    expand_gram, fingerprint, kernel_matrix_dedup, kernel_matrix_via_dedup,
    normalize_unique_sparse, unique_gram, unique_gram_sparse, GramStats, ShapeDedup,
};
pub use kernel::{kernel_matrix, normalize_kernel, wl_kernel};
pub use sp::{sp_kernel, SpVectorizer};
pub use sparse::SparseVec;
pub use topk::{QueryStats, TopkIndex};
pub use vectorizer::WlVectorizer;
