//! Shortest-path base kernel.
//!
//! Equation (1) of the paper defines the WL kernel over a *base kernel*
//! "such as subtree or shortest path kernel". The subtree base kernel is
//! the default ([`crate::WlVectorizer`]); this module provides the
//! shortest-path alternative (Borgwardt & Kriegel 2005, adapted to
//! directed DAGs): a graph is represented by counts of
//! `(label(u), label(v), d(u, v))` triples over all ordered pairs with a
//! directed path `u → v`, and two graphs are compared by the dot product
//! of those count maps.

use dagscope_graph::JobDag;

use crate::fx::FxHashMap;
use crate::SparseVec;

/// Feature extractor for the shortest-path kernel with a shared triple
/// vocabulary (same sharing contract as [`crate::WlVectorizer`]).
#[derive(Debug, Default)]
pub struct SpVectorizer {
    table: FxHashMap<(char, char, u32), u32>,
    next: u32,
}

impl SpVectorizer {
    /// New extractor with an empty vocabulary.
    pub fn new() -> SpVectorizer {
        SpVectorizer::default()
    }

    /// Size of the `(label, label, distance)` vocabulary so far.
    pub fn vocabulary_size(&self) -> usize {
        self.table.len()
    }

    fn triple_id(&mut self, key: (char, char, u32)) -> u32 {
        if let Some(&id) = self.table.get(&key) {
            return id;
        }
        let id = self.next;
        self.next += 1;
        self.table.insert(key, id);
        id
    }

    /// Embed one DAG: BFS from every node over child edges; each reached
    /// pair contributes its `(label_u, label_v, dist)` triple. Node weights
    /// multiply (a merged pair of siblings counts as the original pair
    /// count).
    pub fn transform(&mut self, dag: &JobDag) -> SparseVec {
        let n = dag.len();
        let mut counts: FxHashMap<u32, f64> = FxHashMap::default();
        // Distance 0 self-triples carry the node-label histogram so even
        // edgeless graphs embed non-trivially.
        for u in 0..n {
            let l = dag.kind(u).letter();
            let id = self.triple_id((l, l, 0));
            *counts.entry(id).or_insert(0.0) += dag.weight(u) as f64;
        }
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for u in 0..n {
            dist.fill(u32::MAX);
            dist[u] = 0;
            queue.clear();
            queue.push_back(u);
            while let Some(x) = queue.pop_front() {
                for &c in dag.children(x) {
                    let c = c as usize;
                    if dist[c] == u32::MAX {
                        dist[c] = dist[x] + 1;
                        queue.push_back(c);
                    }
                }
            }
            let lu = dag.kind(u).letter();
            let wu = dag.weight(u) as f64;
            for (v, &d) in dist.iter().enumerate() {
                if v == u || d == u32::MAX {
                    continue;
                }
                let id = self.triple_id((lu, dag.kind(v).letter(), d));
                *counts.entry(id).or_insert(0.0) += wu * dag.weight(v) as f64;
            }
        }
        SparseVec::from_pairs(counts)
    }

    /// Embed a batch with the shared vocabulary.
    pub fn transform_all(&mut self, dags: &[JobDag]) -> Vec<SparseVec> {
        dags.iter().map(|d| self.transform(d)).collect()
    }
}

/// Convenience pairwise shortest-path kernel, cosine normalized to `[0, 1]`.
pub fn sp_kernel(a: &JobDag, b: &JobDag) -> f64 {
    let mut sp = SpVectorizer::new();
    let fa = sp.transform(a);
    let fb = sp.transform(b);
    fa.cosine(&fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_trace::{Job, Status, TaskRecord};

    fn t(name: &str) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: "j".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            plan_cpu: 1.0,
            plan_mem: 0.1,
        }
    }

    fn dag(name: &str, names: &[&str]) -> JobDag {
        JobDag::from_job(&Job {
            name: name.into(),
            tasks: names.iter().map(|n| t(n)).collect(),
        })
        .unwrap()
    }

    #[test]
    fn identical_topologies_score_one() {
        let a = dag("a", &["M1", "M2", "R3_2_1"]);
        let b = dag("b", &["M4", "M7", "R9_7_4"]);
        assert!((sp_kernel(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_triples_counted() {
        // M -> R -> R: pairs (M,R,1), (M,R,2), (R,R,1) + self triples.
        let mut sp = SpVectorizer::new();
        let f = sp.transform(&dag("a", &["M1", "R2_1", "R3_2"]));
        // Self: (M,M,0)×1, (R,R,0)×2. Paths: 3 triples ×1 each.
        assert_eq!(f.mass(), 3.0 + 3.0);
        assert_eq!(sp.vocabulary_size(), 5);
    }

    #[test]
    fn direction_sensitive() {
        let conv = dag("a", &["M1", "M2", "R3_2_1"]);
        let diff = dag("b", &["M1", "R2_1", "R3_1"]);
        // Convergent: (M,R,1)×2. Diffuse: (M,R,1)×2 too, but label
        // histograms differ (2M+1R vs 1M+2R) — must not score 1.
        assert!(sp_kernel(&conv, &diff) < 1.0);
    }

    #[test]
    fn distance_matters() {
        // Long chain vs fan-in with same node-label multiset.
        let chain = dag("a", &["M1", "R2_1", "R3_2", "R4_3"]);
        let fan = dag("b", &["M1", "R2_1", "R3_1", "R4_1"]);
        assert!(sp_kernel(&chain, &fan) < 1.0);
        // Chain closer to chain than to fan.
        let chain5 = dag("c", &["M1", "R2_1", "R3_2", "R4_3", "R5_4"]);
        assert!(sp_kernel(&chain, &chain5) > sp_kernel(&chain, &fan));
    }

    #[test]
    fn weighted_counts_after_conflation() {
        let fanin = dag("a", &["M1", "M2", "M3", "R4_3_2_1"]);
        let merged = dagscope_graph::conflate::conflate(&fanin);
        let mut sp = SpVectorizer::new();
        let ff = sp.transform(&fanin);
        let fm = sp.transform(&merged);
        // (M,R,1) count: 3 in both (merged node weight 3 × sink weight 1);
        // (M,M,0): 3 in both. Identical embeddings.
        assert_eq!(ff, fm);
    }

    #[test]
    fn agrees_with_wl_on_coarse_ranking() {
        let c3 = dag("a", &["M1", "R2_1", "R3_2"]);
        let c4 = dag("b", &["M1", "R2_1", "R3_2", "R4_3"]);
        let tri = dag("c", &["M1", "M2", "M3", "R4_3_2_1"]);
        assert!(sp_kernel(&c3, &c4) > sp_kernel(&c3, &tri));
        let wl_close = crate::wl_kernel(&c3, &c4, 3);
        let wl_far = crate::wl_kernel(&c3, &tri, 3);
        assert!(wl_close > wl_far);
    }

    #[test]
    fn shared_vocabulary_stable() {
        let mut sp = SpVectorizer::new();
        let a = dag("a", &["M1", "R2_1"]);
        let f1 = sp.transform(&a);
        let v = sp.vocabulary_size();
        let f2 = sp.transform(&a);
        assert_eq!(f1, f2);
        assert_eq!(sp.vocabulary_size(), v);
    }
}
