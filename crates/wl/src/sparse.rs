//! Sparse feature vectors for WL label counts.

use serde::{Deserialize, Serialize};

/// A sparse non-negative vector: strictly increasing `indices` aligned with
/// `values`. This is the `φ` map of the WL subtree kernel — index = global
/// compressed-label id, value = (weighted) occurrence count.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Build from `(index, value)` pairs; duplicate indices are summed and
    /// zero values dropped, in a single pass over the sorted pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, f64)>) -> SparseVec {
        let mut pairs: Vec<(u32, f64)> = pairs.into_iter().collect();
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut indices: Vec<u32> = Vec::with_capacity(pairs.len());
        let mut values: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indices.last() == Some(&i) {
                let last = values.last_mut().unwrap();
                *last += v;
                // A running sum that cancels to zero leaves no entry; a
                // later pair with the same index restarts accumulation,
                // which matches summing first and dropping zeros at the
                // end (adding onto ±0.0 is exact).
                if *last == 0.0 {
                    indices.pop();
                    values.pop();
                }
            } else if v != 0.0 {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVec { indices, values }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored index/value pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Value at `index` (0 when absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse dot product (merge join over the two index lists).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut sum = 0.0;
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        sum
    }

    /// Squared Euclidean norm (`self.dot(self)`).
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Sum of values (total label mass; equals `(h+1) × Σ weights` for WL
    /// features).
    pub fn mass(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Cosine similarity in `[0, 1]` for non-negative vectors; 0 when
    /// either side is empty.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = (self.norm_sq() * other.norm_sq()).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVec::from_pairs([(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(2), 2.0);
        assert_eq!(v.get(5), 4.0);
        assert_eq!(v.get(7), 0.0);
    }

    #[test]
    fn zeros_dropped() {
        let v = SparseVec::from_pairs([(1, 1.0), (1, -1.0), (2, 3.0)]);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(1), 0.0);
    }

    #[test]
    fn dot_merge_join() {
        let a = SparseVec::from_pairs([(1, 2.0), (3, 1.0), (9, 4.0)]);
        let b = SparseVec::from_pairs([(3, 5.0), (9, 0.5), (10, 7.0)]);
        assert_eq!(a.dot(&b), 1.0 * 5.0 + 4.0 * 0.5);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.dot(&SparseVec::default()), 0.0);
    }

    #[test]
    fn norms_and_mass() {
        let a = SparseVec::from_pairs([(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.mass(), 7.0);
    }

    #[test]
    fn cosine_bounds() {
        let a = SparseVec::from_pairs([(0, 1.0), (1, 1.0)]);
        let b = SparseVec::from_pairs([(0, 2.0), (1, 2.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        let c = SparseVec::from_pairs([(2, 1.0)]);
        assert_eq!(a.cosine(&c), 0.0);
        assert_eq!(a.cosine(&SparseVec::default()), 0.0);
    }

    #[test]
    fn iter_round_trip() {
        let a = SparseVec::from_pairs([(4, 1.5), (2, 2.5)]);
        let back = SparseVec::from_pairs(a.iter());
        assert_eq!(a, back);
    }
}
