//! Sparse feature vectors for WL label counts.

use serde::{Deserialize, Serialize};

/// A sparse non-negative vector: strictly increasing `indices` aligned with
/// `values`. This is the `φ` map of the WL subtree kernel — index = global
/// compressed-label id, value = (weighted) occurrence count.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Build from `(index, value)` pairs; duplicate indices are summed and
    /// zero values dropped, compacted in place over the sorted pairs so
    /// the final buffers are allocated at exactly the surviving length.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, f64)>) -> SparseVec {
        let mut pairs: Vec<(u32, f64)> = pairs.into_iter().collect();
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut w = 0usize;
        for r in 0..pairs.len() {
            let (i, v) = pairs[r];
            if w > 0 && pairs[w - 1].0 == i {
                let sum = pairs[w - 1].1 + v;
                // A running sum that cancels to zero leaves no entry; a
                // later pair with the same index restarts accumulation,
                // which matches summing first and dropping zeros at the
                // end (adding onto ±0.0 is exact).
                if sum == 0.0 {
                    w -= 1;
                } else {
                    pairs[w - 1].1 = sum;
                }
            } else if v != 0.0 {
                pairs[w] = (i, v);
                w += 1;
            }
        }
        let mut indices: Vec<u32> = Vec::with_capacity(w);
        let mut values: Vec<f64> = Vec::with_capacity(w);
        for &(i, v) in &pairs[..w] {
            indices.push(i);
            values.push(v);
        }
        SparseVec { indices, values }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored index/value pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Value at `index` (0 when absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse dot product: a merge join over the two index lists, or a
    /// galloping (exponential-search) walk through the longer list when
    /// the supports are badly skewed. Both paths visit the shared indices
    /// in the same increasing order and multiplication is commutative, so
    /// the result is bitwise identical either way.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        const GALLOP_RATIO: usize = 16;
        let (short, long) = if self.indices.len() <= other.indices.len() {
            (self, other)
        } else {
            (other, self)
        };
        if short.indices.len().saturating_mul(GALLOP_RATIO) <= long.indices.len() {
            Self::dot_gallop(short, long)
        } else {
            self.dot_merge(other)
        }
    }

    fn dot_merge(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut sum = 0.0;
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        sum
    }

    fn dot_gallop(short: &SparseVec, long: &SparseVec) -> f64 {
        let mut sum = 0.0;
        let mut pos = 0usize;
        for (s, &idx) in short.indices.iter().enumerate() {
            pos = gallop_to(&long.indices, pos, idx);
            if pos >= long.indices.len() {
                break;
            }
            if long.indices[pos] == idx {
                sum += short.values[s] * long.values[pos];
                pos += 1;
            }
        }
        sum
    }

    /// Squared Euclidean norm (`self.dot(self)`).
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Sum of values (total label mass; equals `(h+1) × Σ weights` for WL
    /// features).
    pub fn mass(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Cosine similarity in `[0, 1]` for non-negative vectors; 0 when
    /// either side is empty.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = (self.norm_sq() * other.norm_sq()).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }
}

/// First position `p ≥ lo` with `arr[p] ≥ target`, found by doubling the
/// step from `lo` and binary-searching the final bracket.
fn gallop_to(arr: &[u32], lo: usize, target: u32) -> usize {
    if lo >= arr.len() || arr[lo] >= target {
        return lo;
    }
    // Invariant: arr[prev] < target.
    let mut prev = lo;
    let mut step = 1usize;
    let mut probe = lo + 1;
    while probe < arr.len() && arr[probe] < target {
        prev = probe;
        step *= 2;
        probe = prev + step;
    }
    let hi = probe.min(arr.len());
    prev + 1 + arr[prev + 1..hi].partition_point(|&x| x < target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVec::from_pairs([(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(2), 2.0);
        assert_eq!(v.get(5), 4.0);
        assert_eq!(v.get(7), 0.0);
    }

    #[test]
    fn zeros_dropped() {
        let v = SparseVec::from_pairs([(1, 1.0), (1, -1.0), (2, 3.0)]);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(1), 0.0);
    }

    #[test]
    fn dot_merge_join() {
        let a = SparseVec::from_pairs([(1, 2.0), (3, 1.0), (9, 4.0)]);
        let b = SparseVec::from_pairs([(3, 5.0), (9, 0.5), (10, 7.0)]);
        assert_eq!(a.dot(&b), 1.0 * 5.0 + 4.0 * 0.5);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.dot(&SparseVec::default()), 0.0);
    }

    #[test]
    fn norms_and_mass() {
        let a = SparseVec::from_pairs([(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.mass(), 7.0);
    }

    #[test]
    fn cosine_bounds() {
        let a = SparseVec::from_pairs([(0, 1.0), (1, 1.0)]);
        let b = SparseVec::from_pairs([(0, 2.0), (1, 2.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        let c = SparseVec::from_pairs([(2, 1.0)]);
        assert_eq!(a.cosine(&c), 0.0);
        assert_eq!(a.cosine(&SparseVec::default()), 0.0);
    }

    #[test]
    fn iter_round_trip() {
        let a = SparseVec::from_pairs([(4, 1.5), (2, 2.5)]);
        let back = SparseVec::from_pairs(a.iter());
        assert_eq!(a, back);
    }

    #[test]
    fn gallop_to_finds_first_not_less() {
        let arr: Vec<u32> = (0..100).map(|i| i * 3).collect();
        for lo in [0usize, 1, 7, 50, 99, 100] {
            for target in 0..310u32 {
                let want = lo + arr[lo.min(arr.len())..].partition_point(|&x| x < target);
                assert_eq!(gallop_to(&arr, lo, target), want, "lo={lo} target={target}");
            }
        }
    }

    #[test]
    fn skewed_dot_gallops_and_matches_merge_join_bitwise() {
        // 3 entries vs 1000 entries: the gallop path engages.
        let short = SparseVec::from_pairs([(0, 0.1), (501, 2.7), (999, 1.3)]);
        let long = SparseVec::from_pairs((0..1000u32).map(|i| (i, 1.0 + i as f64 * 0.001)));
        let gallop = short.dot(&long);
        let merge = short.dot_merge(&long);
        assert_eq!(gallop.to_bits(), merge.to_bits());
        assert_eq!(long.dot(&short).to_bits(), merge.to_bits(), "commutes");
        // Disjoint supports short-circuit to zero.
        let disjoint = SparseVec::from_pairs([(5000, 1.0)]);
        assert_eq!(disjoint.dot(&long), 0.0);
        assert_eq!(SparseVec::default().dot(&long), 0.0);
    }

    #[test]
    fn from_pairs_allocates_exactly() {
        let v = SparseVec::from_pairs([(1, 1.0), (1, -1.0), (2, 3.0), (2, 4.0), (9, 0.0)]);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.indices.capacity(), 1);
        assert_eq!(v.values.capacity(), 1);
        assert_eq!(v.get(2), 7.0);
    }
}
