//! Sparse Gram engine: WL-fingerprint deduplication and the
//! inverted-index kernel matrix.
//!
//! The paper's own census motivates this module: 58% of jobs are straight
//! chains and 90.6% of the dominant group are ≤3-task jobs (§V-B, Fig 9),
//! so the number of *distinct* WL feature vectors is orders of magnitude
//! smaller than the job count. [`ShapeDedup`] collapses the population into
//! (unique shape, multiplicity) pairs; [`unique_gram`] assembles the Gram
//! matrix of the unique shapes from the feature→shape inverted index, so
//! only co-occurring feature pairs ever contribute a multiply-add
//! (Shervashidze et al., JMLR 2011, §5); [`expand_gram`] broadcasts the
//! unique-shape Gram back to the full job population.
//!
//! # Bit-identity invariant
//!
//! Every number produced here is **bitwise identical** to the brute-force
//! [`kernel_matrix`](crate::kernel_matrix) path:
//!
//! * deduplication groups vectors only when their index lists and value
//!   *bit patterns* are equal, so `K[i][j]` is a deterministic function of
//!   the representative pair;
//! * the row-wise postings scan visits a row's features in increasing
//!   index order and accumulates `acc[b] += v_a[f] · v_b[f]` from `0.0`,
//!   which is the exact floating-point add sequence of the merge-join
//!   [`SparseVec::dot`]; pairs with disjoint support keep the same `0.0`
//!   a merge join would produce;
//! * parallelism is over independent rows (never over feature ranges), so
//!   no partial sums are ever merged across threads.

use std::hash::Hasher;

use dagscope_linalg::{CsrSym, SymMatrix};
use dagscope_par::par_map;

use crate::fx::{FxHashMap, FxHasher};
use crate::SparseVec;

/// Stable 64-bit fingerprint of a WL feature vector (indices + value bit
/// patterns). Deterministic across runs and platforms; used to key the
/// dedup table and to pin shape identity inside index snapshots.
/// Collisions are harmless for correctness — [`ShapeDedup`] always
/// confirms with a full bitwise comparison.
pub fn fingerprint(vec: &SparseVec) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(vec.nnz());
    for (i, v) in vec.iter() {
        h.write_u32(i);
        h.write_u64(v.to_bits());
    }
    h.finish()
}

fn bits_equal(a: &SparseVec, b: &SparseVec) -> bool {
    a.nnz() == b.nnz()
        && a.iter()
            .zip(b.iter())
            .all(|((ia, va), (ib, vb))| ia == ib && va.to_bits() == vb.to_bits())
}

/// A population of feature vectors collapsed to (unique shape,
/// multiplicity) pairs.
///
/// Shape ids are assigned in first-appearance order, so the mapping is
/// deterministic and identical across runs for the same input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeDedup {
    shape_of: Vec<usize>,
    rep: Vec<usize>,
    multiplicity: Vec<u32>,
    fingerprints: Vec<u64>,
}

impl ShapeDedup {
    /// Group bitwise-identical feature vectors.
    pub fn from_features(features: &[SparseVec]) -> ShapeDedup {
        let mut by_print: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        let mut shape_of = Vec::with_capacity(features.len());
        let mut rep: Vec<usize> = Vec::new();
        let mut multiplicity: Vec<u32> = Vec::new();
        let mut fingerprints: Vec<u64> = Vec::new();
        for (j, f) in features.iter().enumerate() {
            let fp = fingerprint(f);
            let bucket = by_print.entry(fp).or_default();
            let hit = bucket
                .iter()
                .copied()
                .find(|&s| bits_equal(&features[rep[s]], f));
            let s = match hit {
                Some(s) => {
                    multiplicity[s] += 1;
                    s
                }
                None => {
                    let s = rep.len();
                    rep.push(j);
                    multiplicity.push(1);
                    fingerprints.push(fp);
                    bucket.push(s);
                    s
                }
            };
            shape_of.push(s);
        }
        ShapeDedup {
            shape_of,
            rep,
            multiplicity,
            fingerprints,
        }
    }

    /// Number of jobs in the original population.
    pub fn len(&self) -> usize {
        self.shape_of.len()
    }

    /// True when built from an empty population.
    pub fn is_empty(&self) -> bool {
        self.shape_of.is_empty()
    }

    /// Number of distinct shapes.
    pub fn unique_count(&self) -> usize {
        self.rep.len()
    }

    /// Shape id of each job (first-appearance order).
    pub fn shape_of(&self) -> &[usize] {
        &self.shape_of
    }

    /// Representative job index of each shape (its first occurrence).
    pub fn representatives(&self) -> &[usize] {
        &self.rep
    }

    /// How many jobs collapsed into each shape.
    pub fn multiplicities(&self) -> &[u32] {
        &self.multiplicity
    }

    /// [`fingerprint`] of each shape's representative vector.
    pub fn fingerprints(&self) -> &[u64] {
        &self.fingerprints
    }

    /// Expanded multiplicities as `f64` weights (for the weighted
    /// clustering path).
    pub fn weights(&self) -> Vec<f64> {
        self.multiplicity.iter().map(|&m| m as f64).collect()
    }
}

/// Cost counters of a Gram assembly, recorded for `--timings` and the
/// kernel benchmark. `dot_products` counts pairwise dot evaluations
/// actually performed; `candidate_pairs` counts the (i ≤ j) pairs touched
/// through the inverted index (equal to `dot_products` for the postings
/// scan; `n(n+1)/2` for brute force).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GramStats {
    /// Jobs in the population the Gram describes.
    pub jobs: usize,
    /// Distinct shapes after dedup (equals `jobs` when dedup is off).
    pub unique_shapes: usize,
    /// Pairwise dot products evaluated.
    pub dot_products: u64,
    /// Upper-triangle pairs admitted as candidates by the inverted index.
    pub candidate_pairs: u64,
}

/// Gram matrix of `shapes` assembled from the feature→shape inverted
/// index, parallelized over rows with the `dagscope-par` chunk machinery.
///
/// Only shape pairs sharing at least one feature are ever visited; all
/// other entries stay exactly `0.0`. Each computed entry is bitwise equal
/// to `shapes[a].dot(shapes[b])` (see the module invariant).
pub fn unique_gram(shapes: &[&SparseVec]) -> (SymMatrix, GramStats) {
    let m = shapes.len();
    let mut postings: FxHashMap<u32, Vec<(u32, f64)>> = FxHashMap::default();
    for (s, f) in shapes.iter().enumerate() {
        for (idx, v) in f.iter() {
            postings.entry(idx).or_default().push((s as u32, v));
        }
    }
    let rows: Vec<usize> = (0..m).collect();
    let per_row = par_map(&rows, |&a| {
        // Dense row segment `a..m`; untouched offsets keep the exact 0.0
        // a merge join over disjoint supports would return.
        let width = m - a;
        let mut row = vec![0.0f64; width];
        let mut touched = vec![false; width];
        let mut pairs = 0u64;
        for (idx, va) in shapes[a].iter() {
            let Some(list) = postings.get(&idx) else {
                continue;
            };
            let start = list.partition_point(|&(s, _)| (s as usize) < a);
            for &(b, vb) in &list[start..] {
                let off = b as usize - a;
                if !touched[off] {
                    touched[off] = true;
                    pairs += 1;
                }
                row[off] += va * vb;
            }
        }
        (row, pairs)
    });
    let mut packed = Vec::with_capacity(m * (m + 1) / 2);
    let mut dots = 0u64;
    for (row, pairs) in per_row {
        packed.extend_from_slice(&row);
        dots += pairs;
    }
    let stats = GramStats {
        jobs: m,
        unique_shapes: m,
        dot_products: dots,
        candidate_pairs: dots,
    };
    (SymMatrix::from_packed(m, packed), stats)
}

/// Gram matrix of `shapes` assembled **directly into symmetric CSR**
/// from the feature→shape inverted index — the trace-scale sibling of
/// [`unique_gram`] that never materializes the packed `m × m` triangle.
///
/// Peak affinity memory is `O(nnz)`: only shape pairs sharing a feature
/// occupy storage; every other entry is structurally absent (exactly the
/// `0.0` the dense path stores). Each stored value is produced by the
/// same per-row accumulation sequence as [`unique_gram`], so it is
/// **bitwise identical** to the corresponding dense entry (see the
/// module invariant).
pub fn unique_gram_sparse(shapes: &[&SparseVec]) -> (CsrSym, GramStats) {
    let m = shapes.len();
    let mut postings: FxHashMap<u32, Vec<(u32, f64)>> = FxHashMap::default();
    for (s, f) in shapes.iter().enumerate() {
        for (idx, v) in f.iter() {
            postings.entry(idx).or_default().push((s as u32, v));
        }
    }
    let rows: Vec<usize> = (0..m).collect();
    let per_row = par_map(&rows, |&a| {
        // Same dense row-segment scratch and accumulation order as
        // `unique_gram`, compacted to (column, value) pairs afterwards.
        let width = m - a;
        let mut row = vec![0.0f64; width];
        let mut touched = vec![false; width];
        let mut pairs = 0u64;
        for (idx, va) in shapes[a].iter() {
            let Some(list) = postings.get(&idx) else {
                continue;
            };
            let start = list.partition_point(|&(s, _)| (s as usize) < a);
            for &(b, vb) in &list[start..] {
                let off = b as usize - a;
                if !touched[off] {
                    touched[off] = true;
                    pairs += 1;
                }
                row[off] += va * vb;
            }
        }
        let entries: Vec<(u32, f64)> = touched
            .iter()
            .zip(&row)
            .enumerate()
            .filter_map(|(off, (&t, &v))| t.then_some(((a + off) as u32, v)))
            .collect();
        (entries, pairs)
    });
    let mut upper_rows = Vec::with_capacity(m);
    let mut dots = 0u64;
    for (entries, pairs) in per_row {
        upper_rows.push(entries);
        dots += pairs;
    }
    let stats = GramStats {
        jobs: m,
        unique_shapes: m,
        dot_products: dots,
        candidate_pairs: dots,
    };
    (CsrSym::from_upper_rows(&upper_rows), stats)
}

/// Cosine-normalize a sparse unique-shape Gram, replicating the exact
/// per-entry arithmetic of [`normalize_kernel`](crate::normalize_kernel):
/// `K̂[a][b] = K[a][b] / √(K[a][a]·K[b][b])`, diagonals forced to exactly
/// `1.0` when the raw self-similarity is positive (so normalized
/// diagonals are exactly `1.0` or `0.0` — the collapsed silhouette's
/// analytic defaults depend on that). Structurally absent entries stay
/// absent: a zero dot normalizes to zero either way.
pub fn normalize_unique_sparse(k: &CsrSym) -> CsrSym {
    let m = k.n();
    let diag = k.diagonal();
    let rows: Vec<Vec<(u32, f64)>> = (0..m)
        .map(|i| {
            let (cols, vals) = k.row(i);
            cols.iter()
                .zip(vals)
                .filter(|&(&j, _)| j as usize >= i)
                .map(|(&j, &v)| {
                    let d = (diag[i] * diag[j as usize]).sqrt();
                    let nv = if d > 0.0 { v / d } else { 0.0 };
                    let out = if i == j as usize && diag[i] > 0.0 {
                        1.0
                    } else {
                        nv
                    };
                    (j, out)
                })
                .collect()
        })
        .collect();
    CsrSym::from_upper_rows(&rows)
}

/// Broadcast a unique-shape Gram back to the full job population:
/// `K[i][j] = U[shape(i)][shape(j)]`.
pub fn expand_gram(dedup: &ShapeDedup, unique: &SymMatrix) -> SymMatrix {
    let n = dedup.len();
    let shape_of = dedup.shape_of();
    let mut packed = Vec::with_capacity(n * (n + 1) / 2);
    for i in 0..n {
        let si = shape_of[i];
        for &sj in &shape_of[i..] {
            packed.push(unique.get(si, sj));
        }
    }
    SymMatrix::from_packed(n, packed)
}

/// The full kernel matrix through a precomputed [`ShapeDedup`]: unique
/// Gram via the inverted index, then expansion. Bitwise equal to
/// [`kernel_matrix`](crate::kernel_matrix) on the same features.
pub fn kernel_matrix_via_dedup(
    dedup: &ShapeDedup,
    features: &[SparseVec],
) -> (SymMatrix, GramStats) {
    let shapes: Vec<&SparseVec> = dedup
        .representatives()
        .iter()
        .map(|&r| &features[r])
        .collect();
    let (unique, mut stats) = unique_gram(&shapes);
    stats.jobs = features.len();
    (expand_gram(dedup, &unique), stats)
}

/// Dedup + inverted-index kernel matrix in one call.
pub fn kernel_matrix_dedup(features: &[SparseVec]) -> (SymMatrix, GramStats) {
    let dedup = ShapeDedup::from_features(features);
    kernel_matrix_via_dedup(&dedup, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_matrix;

    fn v(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.iter().copied())
    }

    fn population() -> Vec<SparseVec> {
        vec![
            v(&[(0, 2.0), (3, 1.0), (7, 0.5)]),
            v(&[(1, 1.0), (3, 4.0)]),
            v(&[(0, 2.0), (3, 1.0), (7, 0.5)]), // dup of 0
            v(&[(9, 1.0)]),                     // disjoint from everything
            v(&[(1, 1.0), (3, 4.0)]),           // dup of 1
            v(&[(0, 2.0), (3, 1.0), (7, 0.5)]), // dup of 0
            SparseVec::default(),               // empty
        ]
    }

    #[test]
    fn dedup_groups_identical_vectors() {
        let feats = population();
        let d = ShapeDedup::from_features(&feats);
        assert_eq!(d.len(), 7);
        assert_eq!(d.unique_count(), 4);
        assert_eq!(d.shape_of(), &[0, 1, 0, 2, 1, 0, 3]);
        assert_eq!(d.representatives(), &[0, 1, 3, 6]);
        assert_eq!(d.multiplicities(), &[3, 2, 1, 1]);
        assert_eq!(d.fingerprints().len(), 4);
        // Fingerprints are a pure function of the vector bits.
        assert_eq!(d.fingerprints()[0], fingerprint(&feats[2]));
    }

    #[test]
    fn dedup_distinguishes_value_bits() {
        let feats = vec![v(&[(0, 1.0)]), v(&[(0, 1.0 + f64::EPSILON)])];
        let d = ShapeDedup::from_features(&feats);
        assert_eq!(d.unique_count(), 2);
    }

    #[test]
    fn unique_gram_matches_pairwise_dots_bitwise() {
        let feats = population();
        let refs: Vec<&SparseVec> = feats.iter().collect();
        let (gram, stats) = unique_gram(&refs);
        for i in 0..feats.len() {
            for j in 0..feats.len() {
                assert_eq!(
                    gram.get(i, j).to_bits(),
                    feats[i].dot(&feats[j]).to_bits(),
                    "entry ({i},{j})"
                );
            }
        }
        // Only co-occurring pairs were visited: shape 2 (index 9 only) and
        // the empty vector never pair with anything but themselves.
        assert!(stats.dot_products < (feats.len() * (feats.len() + 1) / 2) as u64);
        assert_eq!(stats.dot_products, stats.candidate_pairs);
    }

    #[test]
    fn dedup_kernel_is_bitwise_equal_to_brute_force() {
        let feats = population();
        let oracle = kernel_matrix(&feats);
        let (dedup, stats) = kernel_matrix_dedup(&feats);
        assert_eq!(dedup.n(), oracle.n());
        for (a, b) in dedup.packed().iter().zip(oracle.packed()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(stats.jobs, 7);
        assert_eq!(stats.unique_shapes, 4);
        // 4 unique shapes → at most 10 pair dots instead of 28.
        assert!(stats.dot_products <= 10);
    }

    #[test]
    fn sparse_gram_is_bitwise_equal_to_dense_engine() {
        let feats = population();
        let refs: Vec<&SparseVec> = feats.iter().collect();
        let (dense, dense_stats) = unique_gram(&refs);
        let (sparse, sparse_stats) = unique_gram_sparse(&refs);
        assert_eq!(sparse.n(), dense.n());
        assert_eq!(dense_stats, sparse_stats);
        for i in 0..feats.len() {
            for j in 0..feats.len() {
                assert_eq!(
                    sparse.get(i, j).to_bits(),
                    dense.get(i, j).to_bits(),
                    "entry ({i},{j})"
                );
            }
        }
        // Sparsity: only co-occurring pairs are stored.
        assert!(sparse.nnz() < feats.len() * feats.len());
    }

    #[test]
    fn sparse_normalization_matches_dense_bitwise() {
        let feats = population();
        let refs: Vec<&SparseVec> = feats.iter().collect();
        let (dense, _) = unique_gram(&refs);
        let (sparse, _) = unique_gram_sparse(&refs);
        let dn = crate::normalize_kernel(&dense);
        let sn = normalize_unique_sparse(&sparse);
        for i in 0..feats.len() {
            for j in 0..feats.len() {
                assert_eq!(
                    sn.get(i, j).to_bits(),
                    dn.get(i, j).to_bits(),
                    "normalized entry ({i},{j})"
                );
            }
        }
        // Normalized diagonals are exactly 1.0 (non-empty) or 0.0 (empty).
        for (i, d) in sn.diagonal().iter().enumerate() {
            assert!(*d == 1.0 || *d == 0.0, "diag {i} = {d}");
        }
    }

    #[test]
    fn empty_population() {
        let (gram, stats) = kernel_matrix_dedup(&[]);
        assert_eq!(gram.n(), 0);
        assert_eq!(stats.unique_shapes, 0);
        let d = ShapeDedup::from_features(&[]);
        assert!(d.is_empty());
        assert_eq!(d.weights().len(), 0);
    }
}
