//! Kernel-matrix assembly and normalization.

use dagscope_graph::JobDag;
use dagscope_linalg::SymMatrix;
use dagscope_par::pairs::par_upper_triangle;

use crate::{SparseVec, WlVectorizer};

/// Assemble the Gram matrix `K[i][j] = ⟨φ_i, φ_j⟩` from precomputed WL
/// features, computing only the upper triangle and in parallel.
pub fn kernel_matrix(features: &[SparseVec]) -> SymMatrix {
    let n = features.len();
    let packed = par_upper_triangle(n, |i, j| features[i].dot(&features[j]));
    SymMatrix::from_packed(n, packed)
}

/// Cosine-normalize a kernel matrix: `K̂[i][j] = K[i][j] / √(K[i][i]·K[j][j])`.
///
/// Diagonal entries become exactly 1; off-diagonals land in `[0, 1]` for
/// non-negative feature maps (identical topologies score 1, per Fig 7's
/// color scale). Rows/columns with zero self-similarity normalize to 0.
pub fn normalize_kernel(k: &SymMatrix) -> SymMatrix {
    let n = k.n();
    let diag = k.diagonal();
    let mut out = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let d = (diag[i] * diag[j]).sqrt();
            let v = if d > 0.0 { k.get(i, j) / d } else { 0.0 };
            out.set(i, j, if i == j && diag[i] > 0.0 { 1.0 } else { v });
        }
    }
    out
}

/// Convenience single-pair WL subtree kernel with `h` iterations, cosine
/// normalized to `[0, 1]`.
///
/// ```
/// use dagscope_trace::{Job, TaskRecord, Status};
/// use dagscope_graph::JobDag;
/// # fn t(name: &str) -> TaskRecord {
/// #     TaskRecord { task_name: name.into(), instance_num: 1, job_name: "j".into(),
/// #         task_type: "1".into(), status: Status::Terminated, start_time: 1,
/// #         end_time: 2, plan_cpu: 100.0, plan_mem: 0.5 }
/// # }
/// let a = JobDag::from_job(&Job { name: "a".into(), tasks: vec![t("M1"), t("R2_1")] }).unwrap();
/// let b = JobDag::from_job(&Job { name: "b".into(), tasks: vec![t("M1"), t("R2_1")] }).unwrap();
/// assert!((dagscope_wl::wl_kernel(&a, &b, 3) - 1.0).abs() < 1e-12);
/// ```
pub fn wl_kernel(a: &JobDag, b: &JobDag, h: usize) -> f64 {
    let mut wl = WlVectorizer::new(h);
    let fa = wl.transform(a);
    let fb = wl.transform(b);
    fa.cosine(&fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagscope_linalg::eigh;
    use dagscope_trace::{Job, Status, TaskRecord};

    fn t(name: &str) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: "j".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            plan_cpu: 1.0,
            plan_mem: 0.1,
        }
    }

    fn dag(name: &str, names: &[&str]) -> JobDag {
        JobDag::from_job(&Job {
            name: name.into(),
            tasks: names.iter().map(|n| t(n)).collect(),
        })
        .unwrap()
    }

    fn sample_dags() -> Vec<JobDag> {
        vec![
            dag("chain2", &["M1", "R2_1"]),
            dag("chain3", &["M1", "R2_1", "R3_2"]),
            dag("tri3", &["M1", "M2", "R3_2_1"]),
            dag("tri5", &["M1", "M2", "M3", "M4", "R5_4_3_2_1"]),
            dag("paper", &["M1", "M3", "R2_1", "R4_3", "R5_4_3_2_1"]),
            dag("join", &["M1", "M2", "J3_2_1", "R4_3"]),
        ]
    }

    #[test]
    fn gram_matrix_symmetric_psd() {
        let dags = sample_dags();
        let mut wl = WlVectorizer::new(3);
        let feats = wl.transform_all(&dags);
        let k = kernel_matrix(&feats);
        // Symmetric by construction; PSD because it is a Gram matrix —
        // verify numerically via the eigensolver.
        let eig = eigh(&k).unwrap();
        for ev in &eig.eigenvalues {
            assert!(*ev >= -1e-9, "negative eigenvalue {ev}");
        }
    }

    #[test]
    fn normalized_kernel_properties() {
        let dags = sample_dags();
        let mut wl = WlVectorizer::new(3);
        let feats = wl.transform_all(&dags);
        let kn = normalize_kernel(&kernel_matrix(&feats));
        for i in 0..dags.len() {
            assert!((kn.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..dags.len() {
                let v = kn.get(i, j);
                assert!((0.0..=1.0 + 1e-12).contains(&v), "k[{i}][{j}]={v}");
            }
        }
    }

    #[test]
    fn identical_topologies_score_one() {
        let a = dag("a", &["M1", "M2", "R3_2_1"]);
        let b = dag("b", &["M4", "M6", "R8_6_4"]);
        assert!((wl_kernel(&a, &b, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similar_beats_dissimilar() {
        // A 4-chain is closer to a 3-chain than to a wide fan-in.
        let c3 = dag("c3", &["M1", "R2_1", "R3_2"]);
        let c4 = dag("c4", &["M1", "R2_1", "R3_2", "R4_3"]);
        let fan = dag("fan", &["M1", "M2", "M3", "M4", "M5", "R6_5_4_3_2_1"]);
        let close = wl_kernel(&c4, &c3, 3);
        let far = wl_kernel(&c4, &fan, 3);
        assert!(close > far, "close={close} far={far}");
    }

    #[test]
    fn smaller_simpler_graphs_score_higher_pairwise() {
        // Paper: "smaller graphs with short tails and low-level parallelism
        // usually have higher similarity scores".
        let small_a = dag("sa", &["M1", "R2_1"]);
        let small_b = dag("sb", &["M1", "R2_1", "R3_2"]);
        let big_a = dag("ba", &["M1", "M2", "M3", "J4_2_1", "R5_4_3"]);
        let big_b = dag("bb", &["M1", "R2_1", "R3_1", "R4_3_2", "R5_4"]);
        assert!(wl_kernel(&small_a, &small_b, 3) > wl_kernel(&big_a, &big_b, 3));
    }

    #[test]
    fn empty_feature_normalization() {
        let k = SymMatrix::zeros(2);
        let kn = normalize_kernel(&k);
        assert_eq!(kn.get(0, 0), 0.0);
        assert_eq!(kn.get(0, 1), 0.0);
    }

    #[test]
    fn kernel_matrix_matches_pairwise() {
        let dags = sample_dags();
        let mut wl = WlVectorizer::new(2);
        let feats = wl.transform_all(&dags);
        let k = kernel_matrix(&feats);
        for i in 0..dags.len() {
            for j in 0..dags.len() {
                assert!((k.get(i, j) - feats[i].dot(&feats[j])).abs() < 1e-12);
            }
        }
    }
}
