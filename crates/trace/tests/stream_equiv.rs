//! Property tests: the streaming engine is observationally identical to
//! the batch path — same grouped jobs, same exact statistics, same
//! quarantine accounting, same filter verdicts, same stratified sample —
//! for random documents mixing contiguous job blocks, out-of-order
//! straggler rows, malformed rows (which implicate their job), blank
//! lines, and every buffer capacity from 1 byte up.

use std::collections::BTreeSet;
use std::io::Cursor;

use proptest::prelude::*;

use dagscope_trace::filter::{self, SampleCriteria};
use dagscope_trace::stats::TraceStats;
use dagscope_trace::stream::StreamedTrace;
use dagscope_trace::{csv, JobSet, ReadPolicy};

/// One valid task row for `name`. Kind 5 has zeroed times/resources so the
/// job fails the availability gate — the filter paths must agree on it.
fn row_line(name: &str, kind: u8, k: u32, t: i64) -> String {
    match kind {
        0 => format!("M{k},2,{name},1,Terminated,{t},{},100.0,0.5", t + 40),
        1 => format!(
            "R{}_{k},1,{name},3,Terminated,{t},{},75.5,0.125",
            k + 1,
            t + 9
        ),
        2 => format!("task_z{k},1,{name},1,Running,{t},0,50.0,0.5"),
        3 => format!("M{k},1,{name},1,Failed,{t},{},25.0,0.25", t + 3),
        4 => format!(
            "J{}_{k}_{k},4,{name},12,Terminated,{t},{e},25.0,0.0625",
            k + 2,
            e = t + 2
        ),
        _ => format!("M{k},0,{name},1,Terminated,0,0,0,0"),
    }
}

/// One malformed row naming `name` (kind 2 is only bad under a quarantine
/// policy: impossible timestamps).
fn bad_line(name: &str, kind: u8) -> String {
    match kind {
        0 => format!("M1,1,{name}"),
        1 => format!("M1,x,{name},1,Terminated,1,2,3,4"),
        _ => format!("M1,1,{name},1,Terminated,50,10,1.0,0.5"),
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// One generated job: (odd-named?, rows as (kind, k, t) triples).
type GenJob = (bool, Vec<(u8, u32, i64)>);

/// Assemble a document: one contiguous block per job, then each job's
/// straggler tail re-inserted at a pseudo-random later block boundary, then
/// malformed rows dropped at arbitrary line boundaries.
fn build_doc(jobs: &[GenJob], splits: &[usize], bads: &[(u8, u8)], scramble: u64) -> String {
    let mut state = scramble | 1;
    let name_of = |i: usize, odd: bool| {
        if odd {
            format!("job-{i}")
        } else {
            format!("j_{}", 7_000 + i)
        }
    };
    let n = jobs.len();
    // blocks[i] = job i's contiguous head; slots[k] = lines emitted after
    // block k (straggler batches may merge or interleave there).
    let mut blocks: Vec<Vec<String>> = Vec::with_capacity(n);
    let mut slots: Vec<Vec<String>> = vec![Vec::new(); n];
    for (i, (odd, rows)) in jobs.iter().enumerate() {
        let name = name_of(i, *odd);
        let tail = splits.get(i).copied().unwrap_or(0).min(rows.len() - 1);
        let head = rows.len() - tail;
        blocks.push(
            rows[..head]
                .iter()
                .map(|&(kind, k, t)| row_line(&name, kind, k, t))
                .collect(),
        );
        for &(kind, k, t) in &rows[head..] {
            let slot = i + (lcg(&mut state) as usize % (n - i));
            slots[slot].push(row_line(&name, kind, k, t));
        }
    }
    let mut lines: Vec<String> = Vec::new();
    for i in 0..n {
        lines.append(&mut blocks[i]);
        lines.append(&mut slots[i]);
    }
    for &(target, kind) in bads {
        let t = target as usize % (n + 1);
        let name = if t == n {
            "j_ghost".to_string()
        } else {
            name_of(t, jobs[t].0)
        };
        let pos = lcg(&mut state) as usize % (lines.len() + 1);
        lines.insert(pos, bad_line(&name, kind));
    }
    let mut doc = lines.join("\n");
    doc.push('\n');
    doc
}

/// The core equivalence check, shared by every case below.
fn check_equivalence(doc: &str, cap: usize, policy: &ReadPolicy) {
    let criteria = SampleCriteria::default();
    let batch = csv::read_tasks_with_policy(doc.as_bytes(), policy);
    let stream = StreamedTrace::scan_with_buffer(
        Cursor::new(doc.as_bytes().to_vec()),
        policy,
        &criteria,
        cap,
    );
    let (rows, batch_q) = match batch {
        Err(batch_err) => {
            let stream_err = stream.err().expect("batch aborted, streaming must too");
            prop_assert_eq!(stream_err, batch_err);
            return;
        }
        Ok(ok) => ok,
    };
    let mut stream = stream.expect("batch succeeded, streaming must too");

    // Quarantine accounting: identical rows, counts, and the invariant.
    prop_assert_eq!(stream.quarantine(), &batch_q);
    let q = stream.quarantine();
    prop_assert_eq!(q.rows_good + q.rows_quarantined(), q.rows_total);

    // The batch reference pipeline: strip every row of a suspect job, then
    // group — exactly what the CLI does before clustering.
    let suspects: BTreeSet<String> = batch_q
        .suspect_jobs()
        .keys()
        .map(|s| s.to_string())
        .collect();
    let kept_rows: Vec<_> = rows
        .into_iter()
        .filter(|t| !suspects.contains(t.job_name.as_str()))
        .collect();
    let batch_set = JobSet::from_tasks(kept_rows);
    prop_assert_eq!(stream.suspects(), &suspects);
    prop_assert_eq!(stream.job_count(), batch_set.len());

    // Grouped contents are identical, straggler merges included.
    let streamed_set = stream.materialize_all().unwrap();
    prop_assert_eq!(&streamed_set, &batch_set);

    // Statistics are bit-identical (Debug formatting distinguishes the
    // float bit patterns PartialEq would conflate).
    let batch_stats = TraceStats::compute(&batch_set);
    let stream_stats = stream.stats();
    prop_assert_eq!(&stream_stats, &batch_stats);
    prop_assert_eq!(format!("{stream_stats:?}"), format!("{batch_stats:?}"));

    // Filter verdicts and drop accounting agree.
    let (kept, batch_fs) = criteria.filter_with_stats(&batch_set, &suspects);
    let stream_fs = stream.filter_stats().unwrap();
    prop_assert_eq!(stream_fs, batch_fs);
    let batch_sizes: Vec<usize> = kept.iter().map(|j| j.size()).collect();
    prop_assert_eq!(stream.eligible_sizes(), batch_sizes);

    // The stratified sample picks the same jobs in the same order — both
    // through the slice-based sampler over the size column and through the
    // engine's allocation-lean iterator path.
    let batch_sample: Vec<String> = filter::stratified_sample(&kept, 5, 42)
        .iter()
        .map(|j| j.name.clone())
        .collect();
    let picked = stream.sample_eligible(5, 42);
    prop_assert_eq!(
        &picked,
        &filter::stratified_sample_indices(&stream.eligible_sizes(), 5, 42)
    );
    let stream_sample: Vec<String> = picked
        .into_iter()
        .map(|p| stream.materialize_eligible(p).unwrap().name)
        .collect();
    prop_assert_eq!(stream_sample, batch_sample);
}

fn job_strategy() -> impl Strategy<Value = (bool, Vec<(u8, u32, i64)>)> {
    (
        any::<bool>(),
        prop::collection::vec((0u8..6, 1u32..5, 1i64..300), 1..5),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean documents (no malformed rows) under the strict policy, with
    /// stragglers and every buffer split.
    #[test]
    fn streaming_matches_batch_strict(
        jobs in prop::collection::vec(job_strategy(), 1..8),
        splits in prop::collection::vec(0usize..3, 0..8),
        scramble in any::<u64>(),
        cap in 1usize..64,
    ) {
        let doc = build_doc(&jobs, &splits, &[], scramble);
        check_equivalence(&doc, cap, &ReadPolicy::Strict);
    }

    /// Documents with malformed rows under quarantine policies (including
    /// budgets small enough to abort mid-scan) and the strict policy
    /// (first bad row aborts both paths with the same error).
    #[test]
    fn streaming_matches_batch_with_bad_rows(
        jobs in prop::collection::vec(job_strategy(), 1..8),
        splits in prop::collection::vec(0usize..3, 0..8),
        bads in prop::collection::vec((0u8..20, 0u8..3), 1..4),
        scramble in any::<u64>(),
        cap in 1usize..64,
        policy_kind in 0u8..4,
    ) {
        let doc = build_doc(&jobs, &splits, &bads, scramble);
        let policy = match policy_kind {
            0 => ReadPolicy::Strict,
            k => ReadPolicy::Quarantine { max_bad: (k as usize - 1) * 2 },
        };
        check_equivalence(&doc, cap, &policy);
    }
}
