//! Differential fuzz tests: every zero-copy SWAR ingestion route must be
//! bit-identical to the scalar oracle decoder — same records (float bit
//! patterns included), same quarantine rows with the same byte offsets
//! and excerpts, same error variants at the same line — on arbitrary byte
//! soup: embedded NULs, invalid UTF-8, `\r\n` endings, trailing
//! delimiters, empty and overlong fields, numeric edge shapes, and buffer
//! splits at every boundary.

use std::io::Cursor;

use proptest::prelude::*;

use dagscope_trace::filter::SampleCriteria;
use dagscope_trace::stream::StreamedTrace;
use dagscope_trace::{csv, ReadPolicy};

/// A field value aimed at the numeric fast paths and their bail-outs.
fn num_field(kind: u8, a: u64, b: u64) -> String {
    match kind {
        0 => format!("{a}"),
        1 => format!("-{a}"),
        2 => format!("{a}.{b}"),
        3 => format!("-{a}.{b}"),
        // Shapes the fast path must reject and the oracle defines:
        4 => format!("{a}e{}", b % 10), // exponent
        5 => format!("+{a}"),           // explicit plus
        6 => format!("{a}."),           // trailing dot
        7 => format!(".{b}"),           // leading dot
        8 => format!("{a}{b:019}"),     // overlong digit run
        9 => "inf".to_string(),
        10 => "nan".to_string(),
        11 => String::new(),            // empty -> column default
        12 => format!("0{a:09}"),       // leading zeros
        13 => format!("{a}.{b:015}"),   // 15+ fractional digits
        _ => format!(" {a}"),           // leading space
    }
}

/// One mostly-plausible task row built from small generators. Many are
/// valid; the rest probe exactly the edges where fast and slow parsing
/// could diverge.
fn task_row(name_kind: u8, status_kind: u8, nums: &[(u8, u64, u64)]) -> String {
    let task_name = match name_kind {
        0 => "M1",
        1 => "R2_1",
        2 => "J3_1_2",
        3 => "task_xyz",
        4 => "",
        _ => "Stg5_4_3",
    };
    let status = match status_kind {
        0 => "Terminated",
        1 => "Running",
        2 => "Failed",
        3 => "Waiting",
        4 => "",
        _ => "Bogus",
    };
    let n = |i: usize| {
        nums.get(i)
            .map(|&(k, a, b)| num_field(k, a, b))
            .unwrap_or_default()
    };
    format!(
        "{task_name},{},j_{},{},{status},{},{},{},{}",
        n(0),
        n(1).replace(',', "_"),
        n(2),
        n(3),
        n(4),
        n(5),
        n(6)
    )
}

/// A 14-field instance row sharing the same numeric edge generator.
fn instance_row(status_kind: u8, nums: &[(u8, u64, u64)]) -> String {
    let status = match status_kind {
        0 => "Terminated",
        1 => "Running",
        _ => "Failed",
    };
    let n = |i: usize| {
        nums.get(i)
            .map(|&(k, a, b)| num_field(k, a, b))
            .unwrap_or_default()
    };
    format!(
        "inst_1,M1,j_77,1,{status},{},{},m_42,{},{},{},{},{},{}",
        n(0),
        n(1),
        n(2),
        n(3),
        n(4),
        n(5),
        n(6),
        n(7)
    )
}

/// One drawn document segment, encoded as a flat tuple (the vendored
/// proptest stub has no `prop_oneof!`): a selector tag plus every field
/// any variant needs.
type SegDraw = (u8, u8, u8, Vec<(u8, u64, u64)>, usize, u8, Vec<u8>);

fn segment_strategy() -> impl Strategy<Value = SegDraw> {
    (
        0u8..16,
        0u8..6,
        0u8..6,
        prop::collection::vec((0u8..15, 0u64..1_000_000, 0u64..1_000_000), 0..8),
        any::<usize>(),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..24),
    )
}

/// Assemble a document from drawn segments: rows, single-byte-mutated
/// rows (which can hit any byte with any value, including NUL and invalid
/// UTF-8), raw byte soup, and every line-ending flavor.
fn build_doc(segments: &[SegDraw]) -> Vec<u8> {
    let mut doc = Vec::new();
    for (tag, name_kind, status_kind, nums, pos, byte, soup) in segments {
        match tag {
            0..=4 => {
                doc.extend_from_slice(task_row(*name_kind, *status_kind, nums).as_bytes());
                doc.push(b'\n');
            }
            5..=6 => {
                doc.extend_from_slice(instance_row(*status_kind, nums).as_bytes());
                doc.push(b'\n');
            }
            7..=8 => {
                let mut row = task_row(*name_kind, *status_kind, nums).into_bytes();
                if !row.is_empty() {
                    let at = pos % row.len();
                    row[at] = *byte;
                }
                doc.extend_from_slice(&row);
                doc.push(b'\n');
            }
            9 => doc.extend_from_slice(soup),
            10..=13 => doc.push(b'\n'),
            14 => doc.extend_from_slice(b"\r\n"),
            _ => doc.push(b'\r'),
        }
    }
    // Roughly half the documents end without a trailing newline: pop one
    // off when the last segment supplied it and the first draw is odd.
    if doc.last() == Some(&b'\n') && segments.len() % 2 == 1 {
        doc.pop();
    }
    doc
}

fn policy_of(kind: u8) -> ReadPolicy {
    match kind {
        0 => ReadPolicy::Strict,
        k => ReadPolicy::Quarantine {
            max_bad: (k as usize - 1) * 3,
        },
    }
}

/// Every task-decoding route agrees with the scalar oracle, bitwise.
fn check_tasks(doc: &[u8], policy: &ReadPolicy, cap: usize, chunk: usize) {
    let oracle = csv::read_tasks_scalar_with_policy(doc, policy);
    let slice = csv::read_tasks_slice_with_policy(doc, policy);
    let buffered = csv::read_tasks_buffered_with_policy(doc, cap, policy);
    let chunked = csv::read_tasks_chunked_with_policy(doc, chunk.max(1), policy);
    for (route, got) in [("slice", slice), ("buffered", buffered), ("chunked", chunked)] {
        match (&oracle, &got) {
            (Err(want), Err(have)) => assert_eq!(have, want, "{route} error"),
            (Ok((want_rows, want_q)), Ok((rows, q))) => {
                // Debug formatting distinguishes float bit patterns that
                // PartialEq would conflate (-0.0, NaN payloads).
                assert_eq!(rows.len(), want_rows.len(), "{route} row count");
                assert_eq!(
                    format!("{rows:?}"),
                    format!("{want_rows:?}"),
                    "{route} rows"
                );
                assert_eq!(q, want_q, "{route} quarantine");
                assert_eq!(
                    q.rows_good + q.rows_quarantined(),
                    q.rows_total,
                    "{route} accounting invariant"
                );
            }
            (want, have) => panic!("{route}: oracle {want:?} vs scanner {have:?}"),
        }
    }
}

/// Every instance-decoding route agrees with the scalar oracle, bitwise.
fn check_instances(doc: &[u8], policy: &ReadPolicy, chunk: usize) {
    let oracle = csv::read_instances_scalar_with_policy(doc, policy);
    let slice = csv::read_instances_slice_with_policy(doc, policy);
    let buffered = csv::read_instances_with_policy(doc, policy);
    let chunked = csv::read_instances_chunked_with_policy(doc, chunk.max(1), policy);
    for (route, got) in [("slice", slice), ("buffered", buffered), ("chunked", chunked)] {
        match (&oracle, &got) {
            (Err(want), Err(have)) => assert_eq!(have, want, "{route} error"),
            (Ok((want_rows, want_q)), Ok((rows, q))) => {
                assert_eq!(
                    format!("{rows:?}"),
                    format!("{want_rows:?}"),
                    "{route} rows"
                );
                assert_eq!(q, want_q, "{route} quarantine");
            }
            (want, have) => panic!("{route}: oracle {want:?} vs scanner {have:?}"),
        }
    }
}

/// The streamed scan over an in-memory mapping (`scan_bytes`) matches the
/// buffered streamed scan at every capacity: same quarantine, same
/// metadata columns, same materialized jobs, same statistics.
fn check_stream(doc: &[u8], policy: &ReadPolicy, cap: usize) {
    let criteria = SampleCriteria::default();
    let buffered =
        StreamedTrace::scan_with_buffer(Cursor::new(doc.to_vec()), policy, &criteria, cap);
    let bytes = StreamedTrace::scan_bytes(doc.to_vec(), policy, &criteria);
    match (buffered, bytes) {
        (Err(want), Err(have)) => assert_eq!(have, want),
        (Ok(mut want), Ok(mut have)) => {
            assert_eq!(have.quarantine(), want.quarantine());
            assert_eq!(have.suspects(), want.suspects());
            assert_eq!(have.job_count(), want.job_count());
            assert_eq!(have.raw_bytes(), want.raw_bytes());
            assert_eq!(have.eligible_sizes(), want.eligible_sizes());
            assert_eq!(format!("{:?}", have.stats()), format!("{:?}", want.stats()));
            let want_set = want.materialize_all().unwrap();
            let have_set = have.materialize_all().unwrap();
            assert_eq!(have_set, want_set);
        }
        (want, have) => panic!(
            "stream: buffered ok={:?} vs bytes ok={:?}",
            want.is_ok(),
            have.is_ok()
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Task decoding: SWAR slice / buffered / chunked routes are bitwise
    /// equal to the scalar oracle on arbitrary byte soup.
    #[test]
    fn task_routes_match_scalar_oracle(
        segments in prop::collection::vec(segment_strategy(), 0..24),
        policy_kind in 0u8..4,
        cap in 1usize..48,
        chunk in 1usize..96,
    ) {
        let doc = build_doc(&segments);
        check_tasks(&doc, &policy_of(policy_kind), cap, chunk);
    }

    /// Instance decoding: same property over the 14-field schema.
    #[test]
    fn instance_routes_match_scalar_oracle(
        segments in prop::collection::vec(segment_strategy(), 0..24),
        policy_kind in 0u8..4,
        chunk in 1usize..96,
    ) {
        let doc = build_doc(&segments);
        check_instances(&doc, &policy_of(policy_kind), chunk);
    }

    /// The streamed single-pass scan agrees between its buffered and
    /// in-memory (mmap-shaped) sources at every refill capacity.
    #[test]
    fn streamed_scan_sources_agree(
        segments in prop::collection::vec(segment_strategy(), 0..24),
        policy_kind in 0u8..4,
        cap in 1usize..48,
    ) {
        let doc = build_doc(&segments);
        check_stream(&doc, &policy_of(policy_kind), cap);
    }
}

/// Deterministic edge-case sweep: split points at every buffer boundary
/// of a document hitting every framing pathology at once.
#[test]
fn buffer_splits_at_every_boundary() {
    let doc: &[u8] = b"M1,2,j_1,1,Terminated,10,50,100.0,0.5\r\n\
        \xFF\xFEbad utf8,line\n\
        \n\
        R2_1,1,j_1,1,Running,11,0,50.0,0.25\n\
        task_z,1,j\x002,1,Failed,5,9,25.0,\n\
        M3,1,j_3,1,Terminated,1,2,1e3,0.125\n\
        trailing,unterminated,j_4,1,Waiting,1,2,3,4";
    let policy = ReadPolicy::Quarantine { max_bad: 16 };
    let (want_rows, want_q) = csv::read_tasks_scalar_with_policy(doc, &policy).unwrap();
    for cap in 1..=doc.len() + 1 {
        let (rows, q) = csv::read_tasks_buffered_with_policy(doc, cap, &policy).unwrap();
        assert_eq!(format!("{rows:?}"), format!("{want_rows:?}"), "cap {cap}");
        assert_eq!(q, want_q, "cap {cap}");
    }
    let (rows, q) = csv::read_tasks_slice_with_policy(doc, &policy).unwrap();
    assert_eq!(format!("{rows:?}"), format!("{want_rows:?}"));
    assert_eq!(q, want_q);
    // Quarantine byte offsets and excerpts survive the SWAR scanner: the
    // oracle's offsets are authoritative and the comparison above pinned
    // them; spot-check they actually point into the document.
    assert!(!q.rows.is_empty(), "the pathological doc quarantines rows");
    for row in &q.rows {
        assert!(row.byte_offset < doc.len() as u64, "{row:?}");
    }
    assert_eq!(q.rows_good + q.rows_quarantined(), q.rows_total);
}
