//! Fault-injection property suite for lossy ingestion: quarantine mode
//! must (a) collapse to the strict reader when the budget is zero,
//! (b) keep its accounting invariant under every chunk split, and
//! (c) divert exactly the bad rows — the good rows must equal a strict
//! read of the document with the bad lines deleted, and every report
//! entry must point (line and byte offset) at the real offending line.

use proptest::prelude::*;

use dagscope_trace::{csv, ReadPolicy};

/// One random document line. `kinds` controls the mix:
/// * `..=4` — valid task rows (several spellings) and blank lines;
/// * `5..=7` — malformed rows (field count under/over, bad number);
/// * `8` — impossible timestamps (`end < start`, both positive), which
///   only the quarantine policy rejects.
fn task_line(kinds: u8) -> impl Strategy<Value = String> {
    (0u8..kinds, 1u32..6, 1i64..500).prop_map(|(kind, k, t)| match kind {
        0 => String::new(),
        1 => format!("task_x{k},1,j_{t},1,Terminated,{t},{},50.0,0.5", t + 9),
        2 => format!("M{k},2,j_{t},2,Terminated,{t},{},100.0,0.25", t + 4),
        3 => format!("R{}_{k},1,j_{t},3,Failed,{t},{},75.5,0.125", k + 1, t + 7),
        4 => format!("J{}_{k}_{k},4,j_{t},12,Running,{t},0,25.0,0.0625", k + 2),
        5 => format!("M{k},1,j_{t}"),
        6 => format!(
            "M{k},1,j_{t},1,Terminated,{t},{},1.0,0.5,extra,fields",
            t + 1
        ),
        7 => format!("M{k},notanum,j_{t},1,Terminated,{t},{},1.0,0.5", t + 2),
        _ => format!("M{k},1,j_{t},1,Terminated,{},{t},1.0,0.5", t + 50),
    })
}

fn assemble(lines: &[String], crlf: bool, trailing_newline: bool) -> String {
    let sep = if crlf { "\r\n" } else { "\n" };
    let mut doc = lines.join(sep);
    if trailing_newline && !doc.is_empty() {
        doc.push_str(sep);
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Quarantine { max_bad: 0 }` is observationally identical to
    /// `Strict` — same rows, same first error — sequentially and under
    /// an arbitrary chunk split. (Generator excludes the
    /// impossible-timestamp family, which strict mode deliberately does
    /// not police.)
    #[test]
    fn zero_budget_quarantine_equals_strict(
        lines in prop::collection::vec(task_line(8), 0..24),
        crlf in any::<bool>(),
        trailing_newline in any::<bool>(),
        chunk_bytes in 1usize..96,
    ) {
        let doc = assemble(&lines, crlf, trailing_newline);
        let zero = ReadPolicy::Quarantine { max_bad: 0 };
        let strict = csv::read_tasks(doc.as_bytes());
        let quarantined = csv::read_tasks_with_policy(doc.as_bytes(), &zero);
        match (&strict, &quarantined) {
            (Ok(rows), Ok((q_rows, report))) => {
                prop_assert_eq!(rows, q_rows);
                prop_assert!(report.is_clean());
            }
            (Err(e), Err(qe)) => prop_assert_eq!(e, qe),
            other => prop_assert!(false, "strict/quarantine diverged: {:?}", other),
        }
        let chunked = csv::read_tasks_chunked_with_policy(doc.as_bytes(), chunk_bytes, &zero);
        prop_assert_eq!(quarantined, chunked);
    }

    /// `rows_good + rows_quarantined == rows_total` on every input, and
    /// the parallel reader reproduces the sequential report — entries,
    /// line numbers, byte offsets — for every chunk size.
    #[test]
    fn accounting_invariant_survives_every_chunk_split(
        lines in prop::collection::vec(task_line(9), 0..20),
        crlf in any::<bool>(),
        trailing_newline in any::<bool>(),
    ) {
        let doc = assemble(&lines, crlf, trailing_newline);
        let policy = ReadPolicy::Quarantine { max_bad: usize::MAX };
        let (rows, report) =
            csv::read_tasks_with_policy(doc.as_bytes(), &policy).expect("unbounded budget");
        prop_assert_eq!(report.rows_good + report.rows_quarantined(), report.rows_total);
        prop_assert_eq!(rows.len(), report.rows_good);
        for chunk_bytes in 1..=doc.len() + 1 {
            let chunked = csv::read_tasks_chunked_with_policy(doc.as_bytes(), chunk_bytes, &policy)
                .expect("unbounded budget");
            prop_assert_eq!(&rows, &chunked.0, "chunk_bytes={}", chunk_bytes);
            prop_assert_eq!(&report, &chunked.1, "chunk_bytes={}", chunk_bytes);
        }
    }

    /// The rows that survive quarantine are exactly a strict read of the
    /// document with the quarantined lines deleted, and every report
    /// entry's line number / byte offset / excerpt locates the true
    /// offending line in the original document.
    #[test]
    fn quarantine_diverts_exactly_the_bad_lines(
        lines in prop::collection::vec(task_line(9), 0..20),
        crlf in any::<bool>(),
        trailing_newline in any::<bool>(),
    ) {
        let doc = assemble(&lines, crlf, trailing_newline);
        let policy = ReadPolicy::Quarantine { max_bad: usize::MAX };
        let (rows, report) =
            csv::read_tasks_with_policy(doc.as_bytes(), &policy).expect("unbounded budget");

        let bytes = doc.as_bytes();
        for entry in &report.rows {
            // Line numbers are 1-based over all lines, so entry.line
            // indexes straight back into the source line list.
            let source = &lines[entry.line - 1];
            prop_assert_eq!(source, &entry.excerpt);
            // The byte offset must point at the start of that raw line.
            let start = entry.byte_offset as usize;
            prop_assert!(bytes[start..].starts_with(source.as_bytes()),
                "offset {} does not start line {:?}", start, source);
        }

        let bad: std::collections::BTreeSet<usize> =
            report.rows.iter().map(|r| r.line - 1).collect();
        let cleaned: Vec<String> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !bad.contains(i))
            .map(|(_, l)| l.clone())
            .collect();
        let cleaned_doc = assemble(&cleaned, crlf, trailing_newline);
        let strict_rows =
            csv::read_tasks(cleaned_doc.as_bytes()).expect("cleaned doc must be strict-valid");
        prop_assert_eq!(rows, strict_rows);
    }

    /// The instance reader honors the same contract (shared plumbing, but
    /// the policy threading is per-reader, so pin it too).
    #[test]
    fn instance_reader_accounts_identically(
        good in prop::collection::vec(1u32..9, 1..10),
        bad_at in 0usize..10,
    ) {
        let mut lines: Vec<String> = good
            .iter()
            .map(|k| format!(
                "inst_{k},M{k},j_{k},1,Terminated,{k},{},m_{k},1,1,40.0,80.0,0.1,0.2",
                k + 3
            ))
            .collect();
        lines.insert(bad_at.min(lines.len()), "inst_x,Mx,j_x,1,Terminated,1".to_string());
        let doc = assemble(&lines, false, true);
        let policy = ReadPolicy::Quarantine { max_bad: 4 };
        let (rows, report) =
            csv::read_instances_with_policy(doc.as_bytes(), &policy).expect("within budget");
        prop_assert_eq!(report.rows_quarantined(), 1);
        prop_assert_eq!(rows.len(), report.rows_good);
        prop_assert_eq!(report.rows_good + 1, report.rows_total);
        let par = csv::read_instances_chunked_with_policy(doc.as_bytes(), 7, &policy)
            .expect("within budget");
        prop_assert_eq!((rows, report), par);
    }
}

/// Budget overflow degrades to the strict contract: the error is the
/// first *unbudgeted* bad row with its true document line number, under
/// both readers.
#[test]
fn over_budget_reports_the_overflowing_line() {
    let doc = "\
M1,1,j_a,1,Terminated,1,2,1.0,0.5
bad,row
M2,1,j_b,1,Terminated,1,2,1.0,0.5
also,bad
M3,1,j_c,1,Terminated,1,2,1.0,0.5
";
    let policy = ReadPolicy::Quarantine { max_bad: 1 };
    let seq = csv::read_tasks_with_policy(doc.as_bytes(), &policy).unwrap_err();
    assert!(seq.to_string().contains("line 4"), "{seq}");
    for chunk_bytes in 1..=doc.len() + 1 {
        let par =
            csv::read_tasks_chunked_with_policy(doc.as_bytes(), chunk_bytes, &policy).unwrap_err();
        assert_eq!(seq, par, "chunk_bytes={chunk_bytes}");
    }
}
