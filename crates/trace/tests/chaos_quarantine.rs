//! Property tests: quarantine accounting under injected IO faults.
//!
//! The reader contract has two halves. On bytes it *can* read, the
//! accounting is exact — `rows_good + quarantined == rows_total` — and
//! the parallel chunked decoder agrees with the sequential reader bit
//! for bit. On bytes it *cannot* read (an IO error mid-chunk or
//! mid-line), the read fails loudly; a fault must never surface as a
//! silently shorter trace. This file proves both halves under
//! `dagscope-faults` injection across arbitrary corrupt traces and
//! every chunk boundary the splitter produces.
//!
//! Build with `--features failpoints`; the whole file vanishes without
//! the feature.
#![cfg(feature = "failpoints")]

use std::io::BufReader;
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use dagscope_trace::gen::{GeneratorConfig, TraceGenerator};
use dagscope_trace::{csv, ReadPolicy};

/// The failpoint registry is process-global and `reset()` clears every
/// site, so property cases must not interleave across test threads.
fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A synthetic trace with `corrupt_every`-th non-empty line chopped to
/// at most 5 bytes — guaranteed malformed (too few fields), guaranteed
/// deterministic.
fn corrupt_trace(jobs: usize, seed: u64, corrupt_every: usize) -> (Vec<u8>, usize) {
    let trace = TraceGenerator::new(GeneratorConfig {
        jobs,
        seed,
        emit_instances: false,
        ..Default::default()
    })
    .generate();
    let mut bytes = Vec::new();
    csv::write_tasks(&mut bytes, &trace.tasks).unwrap();
    let mut out = Vec::with_capacity(bytes.len());
    let mut corrupted = 0usize;
    for (i, line) in bytes.split(|&b| b == b'\n').enumerate() {
        if line.is_empty() {
            continue;
        }
        if i % corrupt_every == 0 {
            out.extend_from_slice(&line[..line.len().min(5)]);
            corrupted += 1;
        } else {
            out.extend_from_slice(line);
        }
        out.push(b'\n');
    }
    (out, corrupted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean half of the contract: exact accounting, reader agreement,
    /// and every deliberately-mangled row quarantined — for arbitrary
    /// traces, corruption cadences, and chunk sizes.
    #[test]
    fn accounting_exact_and_readers_agree(
        jobs in 3usize..24,
        seed in any::<u64>(),
        corrupt_every in 7usize..40,
        chunk_bytes in 128usize..2048,
    ) {
        let _g = exclusive();
        dagscope_faults::reset();
        let (data, corrupted) = corrupt_trace(jobs, seed, corrupt_every);
        let policy = ReadPolicy::Quarantine { max_bad: usize::MAX };

        let (rows_seq, q_seq) =
            csv::read_tasks_with_policy(BufReader::new(&data[..]), &policy).unwrap();
        let (rows_par, q_par) =
            csv::read_tasks_chunked_with_policy(&data, chunk_bytes, &policy).unwrap();

        prop_assert_eq!(q_seq.rows_good + q_seq.rows.len(), q_seq.rows_total);
        prop_assert_eq!(q_seq.rows.len(), corrupted);
        prop_assert_eq!(rows_par, rows_seq);
        prop_assert_eq!(q_par, q_seq);
    }

    /// Faulted half, chunked reader: an injected mid-chunk IO error at
    /// EVERY chunk boundary aborts the read with an error — the good
    /// chunks around the failure never masquerade as a complete trace.
    #[test]
    fn chunk_io_error_at_every_boundary_aborts(
        jobs in 3usize..16,
        seed in any::<u64>(),
        chunk_bytes in 128usize..1024,
    ) {
        let _g = exclusive();
        dagscope_faults::reset();
        let (data, _) = corrupt_trace(jobs, seed, 11);
        let policy = ReadPolicy::Quarantine { max_bad: usize::MAX };
        let bounds = dagscope_par::chunk_bounds(&data, chunk_bytes, b'\n');

        for &(start, _) in &bounds {
            dagscope_faults::configure("trace.read.chunk_io", &format!("return({start})"))
                .unwrap();
            let result = csv::read_tasks_chunked_with_policy(&data, chunk_bytes, &policy);
            dagscope_faults::reset();
            prop_assert!(
                result.is_err(),
                "chunk at byte {start} absorbed an injected IO error"
            );
        }

        // Quiet again, the very same bytes read fine: the failures above
        // were the injection, not the data.
        prop_assert!(
            csv::read_tasks_chunked_with_policy(&data, chunk_bytes, &policy).is_ok()
        );
    }

    /// Faulted half, sequential reader: a read error on any single line
    /// aborts the whole read. Quarantine diverts *parse* failures only —
    /// transport failures must still be loud.
    #[test]
    fn line_io_error_at_any_line_aborts(
        jobs in 3usize..16,
        seed in any::<u64>(),
        line_frac in 0.0f64..1.0,
    ) {
        let _g = exclusive();
        dagscope_faults::reset();
        let (data, _) = corrupt_trace(jobs, seed, 11);
        let policy = ReadPolicy::Quarantine { max_bad: usize::MAX };
        let lines = data.iter().filter(|&&b| b == b'\n').count();
        prop_assume!(lines > 0);
        let target = ((lines as f64 * line_frac) as usize).min(lines - 1);

        dagscope_faults::configure("trace.read.line_io", &format!("{target}>1*return")).unwrap();
        let result = csv::read_tasks_with_policy(BufReader::new(&data[..]), &policy);
        dagscope_faults::reset();
        prop_assert!(
            result.is_err(),
            "line {target} of {lines} absorbed an injected IO error"
        );
    }
}
