//! Property tests: the chunked parallel CSV readers are observationally
//! identical to the sequential `BufRead` readers — same records, same
//! first error, same error line numbers — for random documents mixing
//! valid rows, blank lines, malformed rows, CRLF endings, missing
//! trailing newlines, and chunk boundaries landing mid-row.

use proptest::prelude::*;

use dagscope_trace::csv;

/// One random document line: valid task rows in several spellings, blank
/// lines, and the two malformed-row families (wrong field count, bad
/// numeric field).
fn task_line() -> impl Strategy<Value = String> {
    (0u8..8, 1u32..6, 0i64..500).prop_map(|(kind, k, t)| match kind {
        0 => String::new(),
        1 => format!("task_x{k},1,j_{t},1,Terminated,{t},{},50.0,0.5", t + 9),
        2 => format!("M{k},2,j_{t},2,Terminated,{t},{},100.0,0.25", t + 4),
        3 => format!("R{}_{k},1,j_{t},3,Failed,{t},{},75.5,0.125", k + 1, t + 7),
        4 => format!("J{}_{k}_{k},4,j_{t},12,Running,{t},0,25.0,0.0625", k + 2),
        // Wrong field count (under and over).
        5 => format!("M{k},1,j_{t}"),
        6 => format!(
            "M{k},1,j_{t},1,Terminated,{t},{},1.0,0.5,extra,fields",
            t + 1
        ),
        // Right field count, unparsable number.
        _ => format!("M{k},notanum,j_{t},1,Terminated,{t},{},1.0,0.5", t + 2),
    })
}

/// Valid-or-blank `batch_instance.csv` line (14 fields), plus a malformed
/// variant.
fn instance_line() -> impl Strategy<Value = String> {
    (0u8..4, 1u32..6, 0i64..500).prop_map(|(kind, k, t)| match kind {
        0 => String::new(),
        1 => format!(
            "inst_{k},M{k},j_{t},1,Terminated,{t},{},m_{k},1,1,40.0,80.0,0.1,0.2",
            t + 3
        ),
        2 => format!(
            "inst_{k},R{}_{k},j_{t},2,Failed,{t},{},m_{},2,3,10.5,20.5,0.01,0.02",
            k + 1,
            t + 6,
            k + 100
        ),
        _ => format!("inst_{k},M{k},j_{t},1,Terminated,{t}"),
    })
}

fn assemble(lines: &[String], crlf: bool, trailing_newline: bool) -> String {
    let sep = if crlf { "\r\n" } else { "\n" };
    let mut doc = lines.join(sep);
    if trailing_newline && !doc.is_empty() {
        doc.push_str(sep);
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_task_reader_matches_sequential(
        lines in prop::collection::vec(task_line(), 0..24),
        crlf in any::<bool>(),
        trailing_newline in any::<bool>(),
        chunk_bytes in 1usize..96,
    ) {
        let doc = assemble(&lines, crlf, trailing_newline);
        let seq = csv::read_tasks(doc.as_bytes());
        let par = csv::read_tasks_chunked(doc.as_bytes(), chunk_bytes);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn chunked_instance_reader_matches_sequential(
        lines in prop::collection::vec(instance_line(), 0..16),
        crlf in any::<bool>(),
        trailing_newline in any::<bool>(),
        chunk_bytes in 1usize..96,
    ) {
        let doc = assemble(&lines, crlf, trailing_newline);
        let seq = csv::read_instances(doc.as_bytes());
        let par = csv::read_instances_chunked(doc.as_bytes(), chunk_bytes);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn error_line_numbers_survive_every_chunk_split(
        prefix in prop::collection::vec(task_line(), 0..12),
        suffix in prop::collection::vec(task_line(), 0..6),
    ) {
        // Force a guaranteed-bad row between random halves, then sweep
        // every chunk size so some split always lands inside or right at
        // the bad row.
        let mut lines = prefix;
        lines.push("definitely,not,a,task,row".to_string());
        lines.extend(suffix);
        let doc = assemble(&lines, false, true);
        let seq = csv::read_tasks(doc.as_bytes());
        prop_assert!(seq.is_err());
        for chunk_bytes in 1..=doc.len() + 1 {
            let par = csv::read_tasks_chunked(doc.as_bytes(), chunk_bytes);
            prop_assert_eq!(&seq, &par, "chunk_bytes={}", chunk_bytes);
        }
    }
}
