//! The paper's job-sampling criteria (Section IV-B).
//!
//! Three filters gate a job into the experimental set:
//!
//! * **Integrity** — every task terminated normally inside the trace window
//!   (no killed / interrupted / still-running tasks),
//! * **Availability** — timestamps and resource requests are present and
//!   consistent, and the job started *after* collection began (jobs whose
//!   early history predates the window have unreliable runtimes),
//! * **Variability** — the sample preserves topological diversity, which we
//!   realize as stratified sampling across job-size groups.
//!
//! [`SampleCriteria::filter_with_stats`] additionally produces a
//! [`FilterStats`] report naming every dropped job and why — including
//! jobs whose task set was rendered incomplete by quarantined rows (see
//! [`crate::quarantine`]).

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Job, JobSet};

/// Why a job was dropped during filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A quarantined row implicated the job, so its task set may be
    /// incomplete; characterizing a truncated DAG would be worse than
    /// skipping it.
    QuarantineIncomplete,
    /// Failed the integrity rule (non-DAG job or abnormal termination).
    Integrity,
    /// Failed the availability rule (missing/out-of-window timestamps or
    /// missing resource requests).
    Availability,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DropReason::QuarantineIncomplete => "quarantine-incomplete",
            DropReason::Integrity => "integrity",
            DropReason::Availability => "availability",
        })
    }
}

/// Per-job drop accounting for one filtering pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Jobs considered (including quarantine-suspect jobs that may have
    /// been erased from the job set entirely).
    pub considered: usize,
    /// Jobs that passed every gate.
    pub kept: usize,
    /// Every dropped job with its reason, in deterministic name order.
    pub dropped: BTreeMap<String, DropReason>,
}

impl FilterStats {
    /// Count of jobs dropped for a given reason.
    pub fn dropped_for(&self, reason: DropReason) -> usize {
        self.dropped.values().filter(|&&r| r == reason).count()
    }

    /// One-line human summary for logs and CLI output.
    pub fn render(&self) -> String {
        format!(
            "filter: kept {} of {} jobs (dropped: {} quarantine-incomplete, {} integrity, {} availability)",
            self.kept,
            self.considered,
            self.dropped_for(DropReason::QuarantineIncomplete),
            self.dropped_for(DropReason::Integrity),
            self.dropped_for(DropReason::Availability),
        )
    }
}

/// Integrity + availability thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCriteria {
    /// Trace window length in seconds; jobs ending after it are cut off.
    pub window_secs: i64,
    /// Jobs starting earlier than this margin are considered to have
    /// pre-window history and are rejected by the availability rule.
    pub min_start: i64,
}

impl Default for SampleCriteria {
    fn default() -> Self {
        SampleCriteria {
            window_secs: 8 * 86_400,
            min_start: 1,
        }
    }
}

impl SampleCriteria {
    /// Integrity: the job is a DAG job and every task terminated.
    pub fn integrity(&self, job: &Job) -> bool {
        job.is_dag_job() && job.fully_terminated()
    }

    /// Availability: consistent timestamps inside the window and non-zero
    /// resource requests on every task.
    pub fn availability(&self, job: &Job) -> bool {
        let Some(start) = job.start_time() else {
            return false;
        };
        let Some(end) = job.end_time() else {
            return false;
        };
        if start < self.min_start || end > self.window_secs + 86_400 {
            return false;
        }
        job.tasks.iter().all(|t| {
            t.duration().is_some() && t.plan_cpu > 0.0 && t.plan_mem > 0.0 && t.instance_num > 0
        })
    }

    /// Both per-job criteria at once.
    pub fn accepts(&self, job: &Job) -> bool {
        self.integrity(job) && self.availability(job)
    }

    /// Filter a [`JobSet`] down to the jobs passing both criteria,
    /// preserving the set's deterministic order.
    pub fn filter<'a>(&self, set: &'a JobSet) -> Vec<&'a Job> {
        set.jobs().iter().filter(|j| self.accepts(j)).collect()
    }

    /// Like [`SampleCriteria::filter`], but also drops every job named in
    /// `suspects` (jobs implicated by quarantined rows — their task set
    /// may be incomplete) and records each dropped job's reason.
    /// Suspect jobs erased from the set entirely (every row quarantined)
    /// are still counted as considered-and-dropped.
    pub fn filter_with_stats<'a>(
        &self,
        set: &'a JobSet,
        suspects: &BTreeSet<String>,
    ) -> (Vec<&'a Job>, FilterStats) {
        let mut stats = FilterStats::default();
        for name in suspects {
            stats
                .dropped
                .insert(name.clone(), DropReason::QuarantineIncomplete);
        }
        let mut kept = Vec::new();
        for job in set.jobs() {
            if suspects.contains(&job.name) {
                continue;
            }
            if !self.integrity(job) {
                stats
                    .dropped
                    .insert(job.name.clone(), DropReason::Integrity);
            } else if !self.availability(job) {
                stats
                    .dropped
                    .insert(job.name.clone(), DropReason::Availability);
            } else {
                kept.push(job);
            }
        }
        stats.kept = kept.len();
        // Suspects absent from the set were still jobs in the trace.
        let in_set = set.jobs().iter().filter(|j| suspects.contains(&j.name));
        stats.considered = set.jobs().len() + suspects.len() - in_set.count();
        (kept, stats)
    }
}

/// Variability-preserving sampling: one job from every size group first
/// (so the sample spans as many distinct topological scales as the
/// population allows — the paper's sample exhibits 17 size types), then the
/// remaining slots are filled *proportionally* to the population, which
/// keeps the natural small-job skew the paper's grouping results reflect
/// (group A holds ~75 % of jobs and is dominated by 2–3 task jobs).
/// Deterministic in `seed`.
pub fn stratified_sample<'a>(jobs: &[&'a Job], n: usize, seed: u64) -> Vec<&'a Job> {
    let sizes: Vec<usize> = jobs.iter().map(|j| j.size()).collect();
    stratified_sample_indices(&sizes, n, seed)
        .into_iter()
        .map(|i| jobs[i])
        .collect()
}

/// Index-based core of [`stratified_sample`]: `sizes[i]` is the size of the
/// i-th population job, the result is the picked indices in sample order.
///
/// Every RNG draw (the per-group Fisher–Yates shuffles and the pool
/// shuffle) depends only on group *lengths*, never on element values, so
/// sampling over a bare size column consumes the identical random stream as
/// sampling over materialized `&Job`s — which is what lets the streaming
/// engine pick its sample before a single job is materialized and still
/// reproduce the batch path's sample bit-for-bit.
pub fn stratified_sample_indices(sizes: &[usize], n: usize, seed: u64) -> Vec<usize> {
    stratified_sample_indices_from(sizes.iter().copied(), n, seed)
}

/// Iterator form of [`stratified_sample_indices`]: two passes over the
/// size column, one `u32` scratch vector of population length, nothing
/// else. At full-trace scale the population is millions of jobs, so the
/// obvious map-of-index-vectors grouping (plus a separate leftover pool)
/// would triple the sampler's footprint right at the scan's peak-RSS
/// moment; this layout keeps the groups as contiguous runs of a single
/// vector and compacts the pool in place. The shuffle sequence consumes
/// the exact RNG stream of the reference sampler (draws depend only on
/// group lengths), so the picks stay bit-identical.
pub fn stratified_sample_indices_from<I>(sizes: I, n: usize, seed: u64) -> Vec<usize>
where
    I: Iterator<Item = usize> + Clone,
{
    use std::collections::BTreeMap;
    // Pass 1: group cardinalities, ascending by size.
    let mut counts: BTreeMap<usize, u32> = BTreeMap::new();
    let mut total = 0usize;
    for s in sizes.clone() {
        *counts.entry(s).or_default() += 1;
        total += 1;
    }
    // Pass 2: scatter indices into contiguous per-group runs, members in
    // ascending index order — the same layout the per-group vectors had.
    let mut cursors: BTreeMap<usize, u32> = BTreeMap::new();
    let mut start = 0u32;
    for (&s, &c) in &counts {
        cursors.insert(s, start);
        start += c;
    }
    let mut buckets = vec![0u32; total];
    for (i, s) in sizes.enumerate() {
        let cursor = cursors.get_mut(&s).expect("size seen in pass 1");
        buckets[*cursor as usize] = i as u32;
        *cursor += 1;
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut offset = 0usize;
    for &c in counts.values() {
        buckets[offset..offset + c as usize].shuffle(&mut rng);
        offset += c as usize;
    }

    let mut picked = Vec::with_capacity(n.min(total));
    // Coverage pass: one representative per size group.
    let mut offset = 0usize;
    for &c in counts.values() {
        if picked.len() == n {
            break;
        }
        picked.push(buckets[offset] as usize);
        offset += c as usize;
    }
    // Proportional fill: the leftovers of every group, pooled and shuffled,
    // reproduce the population's size distribution. The pool is the bucket
    // vector minus each group's head, compacted in place.
    let mut write = 0usize;
    let mut offset = 0usize;
    for &c in counts.values() {
        for j in 1..c as usize {
            buckets[write] = buckets[offset + j];
            write += 1;
        }
        offset += c as usize;
    }
    buckets.truncate(write);
    buckets.shuffle(&mut rng);
    for &i in &buckets {
        if picked.len() == n {
            break;
        }
        picked.push(i as usize);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Status, TaskRecord};

    fn task(job: &str, name: &str, status: Status, start: i64, end: i64) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 1,
            job_name: job.into(),
            task_type: "1".into(),
            status,
            start_time: start,
            end_time: end,
            plan_cpu: 100.0,
            plan_mem: 0.5,
        }
    }

    fn chain_job(name: &str, size: usize, start: i64) -> Job {
        let mut tasks = vec![task(name, "M1", Status::Terminated, start, start + 10)];
        for i in 2..=size {
            tasks.push(task(
                name,
                &format!("R{i}_{}", i - 1),
                Status::Terminated,
                start + 10 * (i as i64 - 1),
                start + 10 * i as i64,
            ));
        }
        Job {
            name: name.into(),
            tasks,
        }
    }

    #[test]
    fn integrity_rejects_abnormal_and_non_dag() {
        let c = SampleCriteria::default();
        assert!(c.integrity(&chain_job("j", 3, 100)));
        let mut failed = chain_job("j", 3, 100);
        failed.tasks[2].status = Status::Failed;
        assert!(!c.integrity(&failed));
        let indep = Job {
            name: "j".into(),
            tasks: vec![task("j", "task_x", Status::Terminated, 1, 2)],
        };
        assert!(!c.integrity(&indep));
    }

    #[test]
    fn availability_rules() {
        let c = SampleCriteria::default();
        assert!(c.availability(&chain_job("j", 2, 100)));
        // Pre-window start.
        let early = chain_job("j", 2, 0);
        assert!(!c.availability(&early));
        // End beyond the window.
        let late = chain_job("j", 2, c.window_secs + 90_000);
        assert!(!c.availability(&late));
        // Missing resources.
        let mut no_cpu = chain_job("j", 2, 100);
        no_cpu.tasks[0].plan_cpu = 0.0;
        assert!(!c.availability(&no_cpu));
        // Missing end time.
        let mut no_end = chain_job("j", 2, 100);
        no_end.tasks[1].end_time = 0;
        assert!(!c.availability(&no_end));
    }

    #[test]
    fn filter_applies_both() {
        let mut jobs = vec![chain_job("j_a", 2, 100), chain_job("j_b", 3, 50)];
        jobs[1].tasks[0].status = Status::Cancelled;
        let set = JobSet::from_jobs(jobs);
        let kept = SampleCriteria::default().filter(&set);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name, "j_a");
    }

    #[test]
    fn filter_with_stats_records_reasons() {
        let mut jobs = vec![
            chain_job("j_ok", 2, 100),
            chain_job("j_bad_status", 3, 50),
            chain_job("j_suspect", 2, 100),
            chain_job("j_early", 2, 0),
        ];
        jobs[1].tasks[0].status = Status::Cancelled;
        let set = JobSet::from_jobs(jobs);
        let suspects: BTreeSet<String> = ["j_suspect".to_string(), "j_gone".to_string()].into();
        let (kept, stats) = SampleCriteria::default().filter_with_stats(&set, &suspects);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name, "j_ok");
        // j_gone never made it into the set but still counts as considered.
        assert_eq!(stats.considered, 5);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped["j_suspect"], DropReason::QuarantineIncomplete);
        assert_eq!(stats.dropped["j_gone"], DropReason::QuarantineIncomplete);
        assert_eq!(stats.dropped["j_bad_status"], DropReason::Integrity);
        assert_eq!(stats.dropped["j_early"], DropReason::Availability);
        assert_eq!(stats.dropped_for(DropReason::QuarantineIncomplete), 2);
        assert!(stats.render().contains("kept 1 of 5"));
    }

    #[test]
    fn filter_with_stats_matches_filter_without_suspects() {
        let mut jobs = vec![chain_job("j_a", 2, 100), chain_job("j_b", 3, 50)];
        jobs[1].tasks[0].status = Status::Cancelled;
        let set = JobSet::from_jobs(jobs);
        let c = SampleCriteria::default();
        let plain: Vec<&str> = c.filter(&set).iter().map(|j| j.name.as_str()).collect();
        let (with_stats, stats) = c.filter_with_stats(&set, &BTreeSet::new());
        let named: Vec<&str> = with_stats.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(plain, named);
        assert_eq!(stats.considered, 2);
    }

    #[test]
    fn stratified_sample_spans_sizes() {
        // 40 jobs of size 2 and one job each of sizes 3..=10: a plain random
        // sample of 9 would almost surely miss sizes; stratified must not.
        let mut jobs = Vec::new();
        for i in 0..40 {
            jobs.push(chain_job(&format!("j_s2_{i}"), 2, 100 + i));
        }
        for s in 3..=10 {
            jobs.push(chain_job(&format!("j_s{s}"), s as usize, 100));
        }
        let refs: Vec<&Job> = jobs.iter().collect();
        let sample = stratified_sample(&refs, 9, 1);
        let sizes: std::collections::BTreeSet<usize> = sample.iter().map(|j| j.size()).collect();
        assert_eq!(sizes.len(), 9, "sample should hit all 9 size groups");
    }

    #[test]
    fn stratified_sample_handles_small_population() {
        let jobs = [chain_job("j_1", 2, 100)];
        let refs: Vec<&Job> = jobs.iter().collect();
        let sample = stratified_sample(&refs, 10, 0);
        assert_eq!(sample.len(), 1);
        assert!(stratified_sample(&[], 5, 0).is_empty());
    }

    #[test]
    fn stratified_sample_deterministic() {
        let jobs: Vec<Job> = (0..30)
            .map(|i| chain_job(&format!("j_{i}"), 2 + (i % 5) as usize, 100 + i))
            .collect();
        let refs: Vec<&Job> = jobs.iter().collect();
        let a: Vec<String> = stratified_sample(&refs, 10, 9)
            .iter()
            .map(|j| j.name.clone())
            .collect();
        let b: Vec<String> = stratified_sample(&refs, 10, 9)
            .iter()
            .map(|j| j.name.clone())
            .collect();
        assert_eq!(a, b);
        let c: Vec<String> = stratified_sample(&refs, 10, 10)
            .iter()
            .map(|j| j.name.clone())
            .collect();
        assert_ne!(a, c);
    }
}
