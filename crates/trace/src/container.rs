//! Container-side records of the v2018 release (`container_meta.csv` and
//! `container_usage.csv`).
//!
//! Containers host the *online* services that batch jobs co-locate with
//! (Section II-A); the characterization experiments don't consume them,
//! but schema completeness lets the full five-file v2018 dump round-trip
//! through this crate, and the generated online load mirrors what the
//! scheduling simulator's reservation models.

use std::io::{BufRead, BufWriter, Write};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::TraceError;

/// One row of `container_meta.csv` (v2018 column order):
/// `container_id, machine_id, time_stamp, app_du, status, cpu_request,
/// cpu_limit, mem_size`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerMetaRecord {
    /// Container identifier (`c_1`…).
    pub container_id: String,
    /// Hosting machine.
    pub machine_id: String,
    /// Observation timestamp.
    pub time_stamp: i64,
    /// Deployment-unit (application group) identifier.
    pub app_du: String,
    /// Lifecycle status (`started`…).
    pub status: String,
    /// Requested CPU (percent of a core).
    pub cpu_request: f64,
    /// CPU limit.
    pub cpu_limit: f64,
    /// Memory size, normalized.
    pub mem_size: f64,
}

/// One row of `container_usage.csv` (v2018 column order):
/// `container_id, machine_id, time_stamp, cpu_util_percent,
/// mem_util_percent, cpi, mem_gps, mpki, net_in, net_out,
/// disk_io_percent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerUsageRecord {
    /// Container identifier.
    pub container_id: String,
    /// Hosting machine.
    pub machine_id: String,
    /// Sample timestamp.
    pub time_stamp: i64,
    /// CPU utilization, percent of the container's request.
    pub cpu_util_percent: f64,
    /// Memory utilization, percent.
    pub mem_util_percent: f64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Memory bandwidth.
    pub mem_gps: f64,
    /// Misses per kilo-instruction.
    pub mpki: f64,
    /// Normalized inbound network traffic.
    pub net_in: f64,
    /// Normalized outbound network traffic.
    pub net_out: f64,
    /// Disk I/O utilization, percent.
    pub disk_io_percent: f64,
}

fn parse_num<T: std::str::FromStr + Default>(
    s: &str,
    line: usize,
    column: &'static str,
) -> Result<T, TraceError> {
    if s.is_empty() {
        return Ok(T::default());
    }
    s.parse::<T>().map_err(|_| TraceError::BadField {
        line,
        column,
        value: s.to_string(),
    })
}

/// Decode one `container_meta.csv` row.
pub fn parse_meta_line(line_no: usize, line: &str) -> Result<ContainerMetaRecord, TraceError> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 8 {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: 8,
            found: f.len(),
        });
    }
    Ok(ContainerMetaRecord {
        container_id: f[0].to_string(),
        machine_id: f[1].to_string(),
        time_stamp: parse_num(f[2], line_no, "time_stamp")?,
        app_du: f[3].to_string(),
        status: f[4].to_string(),
        cpu_request: parse_num(f[5], line_no, "cpu_request")?,
        cpu_limit: parse_num(f[6], line_no, "cpu_limit")?,
        mem_size: parse_num(f[7], line_no, "mem_size")?,
    })
}

/// Decode one `container_usage.csv` row.
pub fn parse_usage_line(line_no: usize, line: &str) -> Result<ContainerUsageRecord, TraceError> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 11 {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: 11,
            found: f.len(),
        });
    }
    Ok(ContainerUsageRecord {
        container_id: f[0].to_string(),
        machine_id: f[1].to_string(),
        time_stamp: parse_num(f[2], line_no, "time_stamp")?,
        cpu_util_percent: parse_num(f[3], line_no, "cpu_util_percent")?,
        mem_util_percent: parse_num(f[4], line_no, "mem_util_percent")?,
        cpi: parse_num(f[5], line_no, "cpi")?,
        mem_gps: parse_num(f[6], line_no, "mem_gps")?,
        mpki: parse_num(f[7], line_no, "mpki")?,
        net_in: parse_num(f[8], line_no, "net_in")?,
        net_out: parse_num(f[9], line_no, "net_out")?,
        disk_io_percent: parse_num(f[10], line_no, "disk_io_percent")?,
    })
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Encode one meta row.
pub fn format_meta_line(c: &ContainerMetaRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{}",
        c.container_id,
        c.machine_id,
        c.time_stamp,
        c.app_du,
        c.status,
        fmt_f64(c.cpu_request),
        fmt_f64(c.cpu_limit),
        fmt_f64(c.mem_size)
    )
}

/// Encode one usage row.
pub fn format_usage_line(u: &ContainerUsageRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{}",
        u.container_id,
        u.machine_id,
        u.time_stamp,
        fmt_f64(u.cpu_util_percent),
        fmt_f64(u.mem_util_percent),
        fmt_f64(u.cpi),
        fmt_f64(u.mem_gps),
        fmt_f64(u.mpki),
        fmt_f64(u.net_in),
        fmt_f64(u.net_out),
        fmt_f64(u.disk_io_percent)
    )
}

/// Read a `container_meta.csv` stream.
pub fn read_meta<R: BufRead>(reader: R) -> Result<Vec<ContainerMetaRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if !line.is_empty() {
            out.push(parse_meta_line(i + 1, &line)?);
        }
    }
    Ok(out)
}

/// Read a `container_usage.csv` stream.
pub fn read_usage<R: BufRead>(reader: R) -> Result<Vec<ContainerUsageRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if !line.is_empty() {
            out.push(parse_usage_line(i + 1, &line)?);
        }
    }
    Ok(out)
}

/// Write meta rows.
pub fn write_meta<W: Write>(writer: W, rows: &[ContainerMetaRecord]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for r in rows {
        writeln!(w, "{}", format_meta_line(r))?;
    }
    w.flush()?;
    Ok(())
}

/// Write usage rows.
pub fn write_usage<W: Write>(writer: W, rows: &[ContainerUsageRecord]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for r in rows {
        writeln!(w, "{}", format_usage_line(r))?;
    }
    w.flush()?;
    Ok(())
}

/// Synthesize the online-service container fleet: `per_machine` containers
/// on each of `machines` nodes, grouped into deployment units of ~30
/// containers, with daily usage samples following the diurnal online load.
pub fn generate_containers(
    machines: u32,
    per_machine: u32,
    window_secs: i64,
    seed: u64,
) -> (Vec<ContainerMetaRecord>, Vec<ContainerUsageRecord>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434F_4E54);
    let mut meta = Vec::new();
    let mut usage = Vec::new();
    let mut cid = 0u32;
    for m in 1..=machines {
        for _ in 0..per_machine {
            cid += 1;
            let container_id = format!("c_{cid}");
            let machine_id = format!("m_{m}");
            let app = format!("app_{}", cid / 30 + 1);
            meta.push(ContainerMetaRecord {
                container_id: container_id.clone(),
                machine_id: machine_id.clone(),
                time_stamp: 0,
                app_du: app,
                status: "started".to_string(),
                cpu_request: 400.0,
                cpu_limit: 800.0,
                mem_size: (rng.random_range(2..12) as f64) / 100.0,
            });
            let mut t = 0i64;
            while t < window_secs {
                let day_frac = (t % 86_400) as f64 / 86_400.0;
                let base = 40.0 + 30.0 * (std::f64::consts::TAU * (day_frac - 0.55)).sin();
                let cpu = (base + rng.random_range(-10.0f64..10.0)).clamp(1.0, 100.0);
                usage.push(ContainerUsageRecord {
                    container_id: container_id.clone(),
                    machine_id: machine_id.clone(),
                    time_stamp: t,
                    cpu_util_percent: (cpu * 10.0).round() / 10.0,
                    mem_util_percent: ((cpu * 0.9 + rng.random_range(0.0f64..5.0)) * 10.0).round()
                        / 10.0,
                    cpi: (rng.random_range(0.5f64..2.5) * 100.0).round() / 100.0,
                    mem_gps: (rng.random_range(0.1f64..4.0) * 100.0).round() / 100.0,
                    mpki: (rng.random_range(0.1f64..2.0) * 100.0).round() / 100.0,
                    net_in: (rng.random_range(0.0f64..1.0) * 1000.0).round() / 1000.0,
                    net_out: (rng.random_range(0.0f64..1.0) * 1000.0).round() / 1000.0,
                    disk_io_percent: (rng.random_range(0.0f64..40.0) * 10.0).round() / 10.0,
                });
                t += 6 * 3_600; // four samples per day
            }
        }
    }
    (meta, usage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trip() {
        let line = "c_2558,m_1997,0,app_83,started,400,800,0.04";
        let r = parse_meta_line(1, line).unwrap();
        assert_eq!(r.app_du, "app_83");
        assert_eq!(r.cpu_limit, 800.0);
        assert_eq!(format_meta_line(&r), line);
    }

    #[test]
    fn usage_round_trip() {
        let line = "c_1,m_2,3600,42.5,38.1,1.25,2.5,0.7,0.125,0.5,12.5";
        let r = parse_usage_line(1, line).unwrap();
        assert_eq!(r.cpi, 1.25);
        assert_eq!(format_usage_line(&r), line);
    }

    #[test]
    fn wrong_field_counts_rejected() {
        assert!(parse_meta_line(1, "a,b,c").is_err());
        assert!(parse_usage_line(1, "a,b,c,d").is_err());
    }

    #[test]
    fn stream_round_trips() {
        let (meta, usage) = generate_containers(3, 4, 86_400, 9);
        let mut buf = Vec::new();
        write_meta(&mut buf, &meta).unwrap();
        assert_eq!(read_meta(&buf[..]).unwrap(), meta);
        let mut buf2 = Vec::new();
        write_usage(&mut buf2, &usage).unwrap();
        assert_eq!(read_usage(&buf2[..]).unwrap(), usage);
    }

    #[test]
    fn generator_shape() {
        let (meta, usage) = generate_containers(5, 8, 86_400, 1);
        assert_eq!(meta.len(), 40);
        assert_eq!(usage.len(), 40 * 4); // 4 samples/day × 1 day
                                         // Containers are spread over all machines and grouped into apps.
        let machines: std::collections::HashSet<&str> =
            meta.iter().map(|m| m.machine_id.as_str()).collect();
        assert_eq!(machines.len(), 5);
        let apps: std::collections::HashSet<&str> =
            meta.iter().map(|m| m.app_du.as_str()).collect();
        assert!(apps.len() >= 2);
        for u in &usage {
            assert!((0.0..=100.0).contains(&u.cpu_util_percent));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate_containers(4, 3, 86_400, 7),
            generate_containers(4, 3, 86_400, 7)
        );
    }
}
