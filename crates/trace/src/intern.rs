//! Cheap interned strings for low-cardinality trace columns.
//!
//! The v2018 trace repeats a handful of values millions of times in the
//! `task_type` and `machine_id` columns (~a dozen task types, ~4k
//! machines). Storing them as `String` per row costs an allocation and
//! 20+ heap bytes each; [`IStr`] stores one shared `Arc<str>` per distinct
//! value instead, so a clone is a reference-count bump and equality is
//! usually pointer equality.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable, interned string.
///
/// Behaves like a `&str` for comparison, ordering, hashing, and display.
/// Two `IStr`s are equal when their text is equal, whether or not they came
/// from the same [`Interner`].
#[derive(Clone)]
pub struct IStr(Arc<str>);

impl IStr {
    /// View as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl Default for IStr {
    fn default() -> IStr {
        IStr(Arc::from(""))
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> IStr {
        IStr(Arc::from(s))
    }
}

impl From<String> for IStr {
    fn from(s: String) -> IStr {
        IStr(Arc::from(s))
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &IStr) -> bool {
        // Interned duplicates share the allocation, so the common case is a
        // pointer comparison.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for IStr {}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == &*other.0
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &IStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &IStr) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for IStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.0, f)
    }
}

/// Deduplicating factory for [`IStr`]s: one allocation per distinct value.
#[derive(Debug, Default)]
pub struct Interner {
    table: HashMap<IStr, ()>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Return the canonical `IStr` for `s`, allocating on first sight.
    pub fn intern(&mut self, s: &str) -> IStr {
        if let Some((k, ())) = self.table.get_key_value(s) {
            return k.clone();
        }
        let v = IStr::from(s);
        self.table.insert(v.clone(), ());
        v
    }

    /// Number of distinct strings seen.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_allocations() {
        let mut i = Interner::new();
        let a = i.intern("m_1997");
        let b = i.intern("m_1997");
        let c = i.intern("m_2");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn equality_across_interners() {
        let a = Interner::new().intern("x");
        let b = Interner::new().intern("x");
        assert_eq!(a, b);
        assert_eq!(a, "x");
        assert_eq!("x", a);
        assert_ne!(a, Interner::new().intern("y"));
    }

    #[test]
    fn str_like_behavior() {
        let s: IStr = "m_42".into();
        assert!(s.starts_with("m_"));
        assert_eq!(s.as_str(), "m_42");
        assert_eq!(format!("{s}"), "m_42");
        assert_eq!(format!("{s:?}"), "\"m_42\"");
        assert_eq!(IStr::default(), "");
        let owned: IStr = String::from("j_1").into();
        assert_eq!(owned, "j_1");
    }

    #[test]
    fn ordering_matches_str() {
        let mut v: Vec<IStr> = ["b", "a", "c"].into_iter().map(IStr::from).collect();
        v.sort();
        assert_eq!(v, vec![IStr::from("a"), IStr::from("b"), IStr::from("c")]);
    }
}
