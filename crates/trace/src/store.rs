//! Columnar (struct-of-arrays) storage for task rows grouped into jobs.
//!
//! [`crate::TaskRecord`] is convenient but heap-heavy: every row carries an
//! owned task-name `String` plus reference-counted job-name/type handles —
//! fine for a 100-job sample, ruinous for the full 4M-job trace. [`JobStore`]
//! lays the same data out as flat per-task columns (timestamps, status,
//! instance counts, resource asks), task names in one shared byte arena
//! addressed by `(offset, len)` spans, and jobs as contiguous
//! `Range<u32>` row slices. A row costs ~45 bytes plus its name bytes, with
//! zero per-row allocations.
//!
//! [`JobView`] exposes the same derived quantities as [`Job`]
//! (`is_dag_job`, `completion_time`, planned volumes…), computed with the
//! identical fold order, so anything decided from a view — filter
//! eligibility, [`JobFacts`] for statistics — agrees bit-for-bit with the
//! materialized path. The streaming reader keeps exactly one open job in a
//! store, folds it, and clears the rows; the batch path can hold many.

use std::collections::HashMap;
use std::ops::Range;

use crate::csv::TaskParts;
use crate::filter::SampleCriteria;
use crate::intern::{IStr, Interner};
use crate::schema::{Status, TaskRecord};
use crate::stats::JobFacts;
use crate::taskname;
use crate::Job;

/// Struct-of-arrays task storage with jobs as contiguous row ranges.
#[derive(Debug, Default)]
pub struct JobStore {
    /// Task-name bytes, all rows concatenated.
    arena: Vec<u8>,
    /// Per-task `(offset, len)` span into `arena`.
    name_span: Vec<(u32, u32)>,
    instance_num: Vec<u32>,
    /// Per-task index into `types`.
    task_type: Vec<u32>,
    status: Vec<Status>,
    start_time: Vec<i64>,
    end_time: Vec<i64>,
    plan_cpu: Vec<f64>,
    plan_mem: Vec<f64>,
    /// Closed jobs: name and row range.
    jobs: Vec<(String, Range<u32>)>,
    /// Row index where the currently open job began.
    open_start: Option<u32>,
    open_name: String,
    /// Distinct task-type codes, indexed by the `task_type` column.
    types: Vec<IStr>,
    type_ids: HashMap<IStr, u32>,
    /// Most recently interned type id — adjacent rows almost always share
    /// a type code, and one short string compare beats a hash lookup.
    last_type: Option<u32>,
}

impl JobStore {
    /// Empty store.
    pub fn new() -> JobStore {
        JobStore::default()
    }

    /// Total task rows stored.
    pub fn rows(&self) -> usize {
        self.status.len()
    }

    /// Closed jobs stored.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Intern a task-type code into the store's type table.
    fn type_id(&mut self, ty: &str) -> u32 {
        if let Some(id) = self.last_type {
            if &*self.types[id as usize] == ty {
                return id;
            }
        }
        if let Some(&id) = self.type_ids.get(ty) {
            self.last_type = Some(id);
            return id;
        }
        let id = self.types.len() as u32;
        let istr: IStr = ty.into();
        self.types.push(istr.clone());
        self.type_ids.insert(istr, id);
        self.last_type = Some(id);
        id
    }

    /// Open a new job; subsequent row pushes belong to it until
    /// [`JobStore::end_job`].
    pub fn begin_job(&mut self, name: &str) {
        assert!(self.open_start.is_none(), "previous job still open");
        self.open_start = Some(self.rows() as u32);
        self.open_name.clear();
        self.open_name.push_str(name);
    }

    /// Append one row (borrowed CSV parts) to the open job.
    pub fn push_parts(&mut self, p: &TaskParts<'_>) {
        assert!(self.open_start.is_some(), "no open job");
        let off = self.arena.len() as u32;
        self.arena.extend_from_slice(p.task_name.as_bytes());
        self.name_span.push((off, p.task_name.len() as u32));
        self.instance_num.push(p.instance_num);
        let ty = self.type_id(p.task_type);
        self.task_type.push(ty);
        self.status.push(p.status);
        self.start_time.push(p.start_time);
        self.end_time.push(p.end_time);
        self.plan_cpu.push(p.plan_cpu);
        self.plan_mem.push(p.plan_mem);
    }

    /// Append one materialized record to the open job.
    pub fn push_record(&mut self, t: &TaskRecord) {
        self.push_parts(&TaskParts {
            task_name: &t.task_name,
            instance_num: t.instance_num,
            job_name: &t.job_name,
            task_type: &t.task_type,
            status: t.status,
            start_time: t.start_time,
            end_time: t.end_time,
            plan_cpu: t.plan_cpu,
            plan_mem: t.plan_mem,
        });
    }

    /// Number of rows in the currently open job.
    pub fn open_rows(&self) -> usize {
        match self.open_start {
            Some(s) => self.rows() - s as usize,
            None => 0,
        }
    }

    /// Name of the currently open job, if any.
    pub fn open_name(&self) -> Option<&str> {
        self.open_start.map(|_| self.open_name.as_str())
    }

    /// A view of the currently open job's rows so far.
    pub fn open_view(&self) -> Option<JobView<'_>> {
        let start = self.open_start?;
        Some(JobView {
            store: self,
            name: &self.open_name,
            range: start as usize..self.rows(),
        })
    }

    /// Close the open job, returning its index.
    pub fn end_job(&mut self) -> usize {
        let start = self.open_start.take().expect("no open job");
        let name = std::mem::take(&mut self.open_name);
        self.jobs.push((name, start..self.rows() as u32));
        self.jobs.len() - 1
    }

    /// Discard the open job's rows without closing it (the streaming
    /// reader's reaction to a quarantine verdict landing mid-job).
    pub fn abandon_open(&mut self) {
        if let Some(start) = self.open_start.take() {
            self.truncate_rows(start as usize);
            self.open_name.clear();
        }
    }

    /// Drop all rows and jobs, keeping the type table and column
    /// capacities — the streaming reader calls this after folding each job.
    pub fn clear(&mut self) {
        assert!(self.open_start.is_none(), "clearing with a job open");
        self.jobs.clear();
        self.truncate_rows(0);
    }

    fn truncate_rows(&mut self, rows: usize) {
        if let Some(&(off, _)) = self.name_span.get(rows) {
            self.arena.truncate(off as usize);
        }
        self.name_span.truncate(rows);
        self.instance_num.truncate(rows);
        self.task_type.truncate(rows);
        self.status.truncate(rows);
        self.start_time.truncate(rows);
        self.end_time.truncate(rows);
        self.plan_cpu.truncate(rows);
        self.plan_mem.truncate(rows);
    }

    /// Append a materialized job wholesale.
    pub fn push_job(&mut self, job: &Job) -> usize {
        self.begin_job(&job.name);
        for t in &job.tasks {
            self.push_record(t);
        }
        self.end_job()
    }

    /// View a closed job.
    pub fn view(&self, i: usize) -> JobView<'_> {
        let (name, range) = &self.jobs[i];
        JobView {
            store: self,
            name,
            range: range.start as usize..range.end as usize,
        }
    }

    /// Materialize a closed job back into heap records, interning the
    /// shared columns through `interner`.
    pub fn materialize(&self, i: usize, interner: &mut Interner) -> Job {
        let v = self.view(i);
        let job_name = interner.intern(v.name);
        let tasks = v
            .range
            .clone()
            .map(|r| TaskRecord {
                task_name: self.task_name(r).to_string(),
                instance_num: self.instance_num[r],
                job_name: job_name.clone(),
                task_type: self.types[self.task_type[r] as usize].clone(),
                status: self.status[r],
                start_time: self.start_time[r],
                end_time: self.end_time[r],
                plan_cpu: self.plan_cpu[r],
                plan_mem: self.plan_mem[r],
            })
            .collect();
        Job {
            name: v.name.to_string(),
            tasks,
        }
    }

    /// Task name of row `r`.
    fn task_name(&self, r: usize) -> &str {
        let (off, len) = self.name_span[r];
        // Spans are recorded from `&str` pushes, so the slice is valid UTF-8.
        std::str::from_utf8(&self.arena[off as usize..(off + len) as usize])
            .expect("arena spans are pushed from valid UTF-8")
    }

    /// Approximate heap footprint of the columns, for diagnostics.
    pub fn heap_bytes(&self) -> usize {
        self.arena.capacity()
            + self.name_span.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.instance_num.capacity() * 4
            + self.task_type.capacity() * 4
            + self.status.capacity() * std::mem::size_of::<Status>()
            + self.start_time.capacity() * 8
            + self.end_time.capacity() * 8
            + self.plan_cpu.capacity() * 8
            + self.plan_mem.capacity() * 8
    }
}

/// Borrowed view of one job inside a [`JobStore`], mirroring [`Job`]'s
/// derived quantities with identical iteration and fold order.
#[derive(Debug, Clone)]
pub struct JobView<'a> {
    store: &'a JobStore,
    /// The job's name.
    pub name: &'a str,
    /// Row range inside the store.
    pub range: Range<usize>,
}

impl JobView<'_> {
    /// Number of tasks — [`Job::size`].
    pub fn size(&self) -> usize {
        self.range.len()
    }

    /// Task name of the `k`-th row of this job.
    pub fn task_name(&self, k: usize) -> &str {
        self.store.task_name(self.range.start + k)
    }

    /// [`Job::is_dag_job`].
    pub fn is_dag_job(&self) -> bool {
        !self.range.is_empty()
            && self
                .range
                .clone()
                .all(|r| taskname::is_dag_name(self.store.task_name(r)))
    }

    /// [`Job::fully_terminated`].
    pub fn fully_terminated(&self) -> bool {
        !self.range.is_empty()
            && self.store.status[self.range.clone()]
                .iter()
                .all(|&s| s == Status::Terminated)
    }

    /// [`Job::start_time`].
    pub fn start_time(&self) -> Option<i64> {
        self.store.start_time[self.range.clone()]
            .iter()
            .copied()
            .filter(|&s| s > 0)
            .min()
    }

    /// [`Job::end_time`].
    pub fn end_time(&self) -> Option<i64> {
        self.store.end_time[self.range.clone()]
            .iter()
            .copied()
            .filter(|&e| e > 0)
            .max()
    }

    /// [`Job::completion_time`].
    pub fn completion_time(&self) -> Option<i64> {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) if e >= s => Some(e - s),
            _ => None,
        }
    }

    /// [`Job::planned_cpu_volume`] — same row order, same naive `f64` fold.
    pub fn planned_cpu_volume(&self) -> f64 {
        self.range
            .clone()
            .map(|r| self.store.instance_num[r] as f64 * self.store.plan_cpu[r])
            .sum()
    }

    /// [`Job::planned_mem_volume`].
    pub fn planned_mem_volume(&self) -> f64 {
        self.range
            .clone()
            .map(|r| self.store.instance_num[r] as f64 * self.store.plan_mem[r])
            .sum()
    }

    /// [`crate::TaskRecord::duration`] of the `k`-th row.
    fn duration(&self, k: usize) -> Option<i64> {
        let r = self.range.start + k;
        let (s, e) = (self.store.start_time[r], self.store.end_time[r]);
        if s > 0 && e >= s {
            Some(e - s)
        } else {
            None
        }
    }

    /// [`SampleCriteria::integrity`] over this view.
    pub fn integrity(&self) -> bool {
        self.is_dag_job() && self.fully_terminated()
    }

    /// [`SampleCriteria::availability`] over this view.
    pub fn availability(&self, criteria: &SampleCriteria) -> bool {
        let Some(start) = self.start_time() else {
            return false;
        };
        let Some(end) = self.end_time() else {
            return false;
        };
        if start < criteria.min_start || end > criteria.window_secs + 86_400 {
            return false;
        }
        (0..self.size()).all(|k| {
            let r = self.range.start + k;
            self.duration(k).is_some()
                && self.store.plan_cpu[r] > 0.0
                && self.store.plan_mem[r] > 0.0
                && self.store.instance_num[r] > 0
        })
    }

    /// [`SampleCriteria::accepts`] over this view.
    pub fn eligible(&self, criteria: &SampleCriteria) -> bool {
        self.integrity() && self.availability(criteria)
    }

    /// The job's [`JobFacts`], identical to `JobFacts::of_job` on the
    /// materialized form.
    pub fn facts(&self) -> JobFacts {
        let mut status_counts = [0usize; Status::ALL.len()];
        for &s in &self.store.status[self.range.clone()] {
            status_counts[s.index()] += 1;
        }
        JobFacts {
            cpu_volume: self.planned_cpu_volume(),
            mem_volume: self.planned_mem_volume(),
            is_dag: self.is_dag_job(),
            size: self.size(),
            fully_terminated: self.fully_terminated(),
            completion: self.completion_time(),
            status_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};

    fn sample_set() -> crate::JobSet {
        TraceGenerator::new(GeneratorConfig {
            jobs: 120,
            seed: 21,
            ..Default::default()
        })
        .generate()
        .job_set()
    }

    #[test]
    fn views_mirror_job_methods_exactly() {
        let set = sample_set();
        let mut store = JobStore::new();
        for job in set.jobs() {
            store.push_job(job);
        }
        assert_eq!(store.job_count(), set.len());
        let criteria = SampleCriteria::default();
        for (i, job) in set.jobs().iter().enumerate() {
            let v = store.view(i);
            assert_eq!(v.name, job.name);
            assert_eq!(v.size(), job.size());
            assert_eq!(v.is_dag_job(), job.is_dag_job());
            assert_eq!(v.fully_terminated(), job.fully_terminated());
            assert_eq!(v.start_time(), job.start_time());
            assert_eq!(v.end_time(), job.end_time());
            assert_eq!(v.completion_time(), job.completion_time());
            assert_eq!(
                v.planned_cpu_volume().to_bits(),
                job.planned_cpu_volume().to_bits()
            );
            assert_eq!(
                v.planned_mem_volume().to_bits(),
                job.planned_mem_volume().to_bits()
            );
            assert_eq!(v.eligible(&criteria), criteria.accepts(job));
            assert_eq!(v.facts(), crate::stats::JobFacts::of_job(job));
        }
    }

    #[test]
    fn materialize_round_trips() {
        let set = sample_set();
        let mut store = JobStore::new();
        for job in set.jobs() {
            store.push_job(job);
        }
        let mut interner = Interner::new();
        for (i, job) in set.jobs().iter().enumerate() {
            assert_eq!(&store.materialize(i, &mut interner), job);
        }
    }

    #[test]
    fn clear_retains_type_table_and_reuses_capacity() {
        let set = sample_set();
        let mut store = JobStore::new();
        store.push_job(&set.jobs()[0]);
        let cap_before = store.heap_bytes();
        store.clear();
        assert_eq!(store.rows(), 0);
        assert_eq!(store.job_count(), 0);
        assert!(store.heap_bytes() >= cap_before);
        store.push_job(&set.jobs()[1]);
        let mut interner = Interner::new();
        assert_eq!(store.materialize(0, &mut interner), set.jobs()[1]);
    }

    #[test]
    fn abandon_open_discards_rows() {
        let set = sample_set();
        let job = &set.jobs()[0];
        let mut store = JobStore::new();
        store.begin_job("doomed");
        for t in &job.tasks {
            store.push_record(t);
        }
        store.abandon_open();
        assert_eq!(store.rows(), 0);
        assert!(store.open_name().is_none());
        // Store stays usable.
        store.push_job(job);
        assert_eq!(store.view(0).size(), job.size());
    }

    #[test]
    fn open_view_tracks_partial_job() {
        let set = sample_set();
        let job = &set.jobs()[0];
        let mut store = JobStore::new();
        store.begin_job(&job.name);
        store.push_record(&job.tasks[0]);
        let v = store.open_view().unwrap();
        assert_eq!(v.size(), 1);
        assert_eq!(v.task_name(0), job.tasks[0].task_name);
        assert_eq!(store.open_rows(), 1);
        assert_eq!(store.open_name(), Some(job.name.as_str()));
        for t in &job.tasks[1..] {
            store.push_record(t);
        }
        let i = store.end_job();
        assert_eq!(store.view(i).size(), job.size());
        assert!(store.open_view().is_none());
    }
}
