//! Lossy ingestion policy: divert bad rows instead of aborting.
//!
//! The published Alibaba-2018 files are known to contain truncated and
//! inconsistent rows; a 4M-job ingestion that aborts on the first one is
//! useless operationally. [`ReadPolicy`] selects between the historical
//! fail-fast behavior ([`ReadPolicy::Strict`], bit-identical to the
//! original readers) and **quarantine mode**, where up to `max_bad` bad
//! rows are recorded in a [`Quarantine`] report — line number, byte
//! offset, error, raw excerpt — and skipped, so one malformed row costs
//! one row, not the whole trace.
//!
//! A row is *bad* when it fails to decode (wrong field count, unparsable
//! numeric field, invalid UTF-8) or — quarantine mode only — when its
//! timestamps are impossible (`end_time` before `start_time`, both
//! present). Strict mode accepts impossible timestamps exactly as it
//! always has; downstream availability filters reject those jobs later.
//!
//! Quarantined rows may leave the jobs they belong to with a partial task
//! set. [`Quarantine::suspect_jobs`] names every job implicated by a bad
//! row so the ingestion layer can drop them with a recorded reason (see
//! [`crate::filter::FilterStats`]) instead of silently characterizing a
//! truncated DAG.

use std::collections::BTreeMap;

use crate::TraceError;

/// Longest raw-row excerpt kept in a quarantine entry, in bytes.
const MAX_EXCERPT_BYTES: usize = 120;

/// How a reader treats rows that fail to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Abort on the first bad row with its error — the historical
    /// behavior, bit-identical to the policy-free readers.
    Strict,
    /// Divert bad rows into a [`Quarantine`] report and keep reading.
    /// The `max_bad + 1`-th bad row aborts the read with that row's
    /// error, so a wholly corrupt file cannot masquerade as a short one.
    /// `Quarantine { max_bad: 0 }` therefore behaves exactly like
    /// [`ReadPolicy::Strict`] on any input free of impossible timestamps.
    Quarantine {
        /// Largest number of bad rows tolerated before aborting.
        max_bad: usize,
    },
}

impl ReadPolicy {
    /// The bad-row budget: 0 under [`ReadPolicy::Strict`].
    pub fn max_bad(&self) -> usize {
        match self {
            ReadPolicy::Strict => 0,
            ReadPolicy::Quarantine { max_bad } => *max_bad,
        }
    }

    /// Whether bad rows are diverted rather than aborted on.
    pub fn is_quarantine(&self) -> bool {
        matches!(self, ReadPolicy::Quarantine { .. })
    }
}

/// One diverted row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRow {
    /// 1-based line number in the source document.
    pub line: usize,
    /// Byte offset of the row's first byte in the source document.
    pub byte_offset: u64,
    /// Why the row was diverted.
    pub error: TraceError,
    /// The raw row text, lossily decoded and truncated to a bounded
    /// excerpt so a pathological multi-megabyte line cannot bloat the
    /// report.
    pub excerpt: String,
    /// The row's `job_name` field, when enough of the row existed to
    /// extract one (bad rows implicate their job, see
    /// [`Quarantine::suspect_jobs`]).
    pub job_name: Option<String>,
}

/// Loss accounting for one read under [`ReadPolicy::Quarantine`].
///
/// Invariant (checked by the property suite): `rows_good +
/// rows.len() == rows_total` on every input, under both the sequential
/// and the chunked parallel readers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Quarantine {
    /// Every diverted row, in document order.
    pub rows: Vec<QuarantinedRow>,
    /// Rows decoded successfully.
    pub rows_good: usize,
    /// Non-blank rows seen (good + quarantined).
    pub rows_total: usize,
    /// All lines seen, blank ones included.
    pub lines_total: usize,
}

impl Quarantine {
    /// Number of diverted rows.
    pub fn rows_quarantined(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was diverted.
    pub fn is_clean(&self) -> bool {
        self.rows.is_empty()
    }

    /// Job names implicated by quarantined rows, with the first
    /// quarantine entry that implicated each (document order decides).
    /// Jobs listed here have a potentially incomplete task set and should
    /// be dropped from ingestion.
    pub fn suspect_jobs(&self) -> BTreeMap<&str, &QuarantinedRow> {
        let mut out = BTreeMap::new();
        for row in &self.rows {
            if let Some(name) = row.job_name.as_deref() {
                out.entry(name).or_insert(row);
            }
        }
        out
    }

    /// One-paragraph human summary for logs and CLI output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "quarantine: {} of {} rows diverted ({} good)",
            self.rows.len(),
            self.rows_total,
            self.rows_good
        );
        for row in self.rows.iter().take(5) {
            write!(
                out,
                "\n  line {} (byte {}): {} | {:?}",
                row.line, row.byte_offset, row.error, row.excerpt
            )
            .expect("writing to a String cannot fail");
        }
        if self.rows.len() > 5 {
            write!(out, "\n  … and {} more", self.rows.len() - 5)
                .expect("writing to a String cannot fail");
        }
        out
    }
}

/// Build a bounded lossy excerpt of a raw row.
pub(crate) fn excerpt_of(raw: &[u8]) -> String {
    let cut = raw.len().min(MAX_EXCERPT_BYTES);
    // Back off to a char boundary so the lossy decode never splits a
    // multi-byte sequence that was valid in the source.
    let mut end = cut;
    while end > 0 && end < raw.len() && (raw[end] & 0xC0) == 0x80 {
        end -= 1;
    }
    let mut text = String::from_utf8_lossy(&raw[..end]).into_owned();
    if raw.len() > end {
        text.push('…');
    }
    text
}

/// Best-effort `job_name` extraction from a raw row (third CSV field in
/// both the `batch_task` and `batch_instance` schemas). Works even when
/// the row is malformed elsewhere.
pub(crate) fn job_name_of(raw: &[u8]) -> Option<String> {
    let field = raw.split(|&b| b == b',').nth(2)?;
    if field.is_empty() {
        return None;
    }
    std::str::from_utf8(field).ok().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excerpt_is_bounded_and_lossy() {
        assert_eq!(excerpt_of(b"a,b,c"), "a,b,c");
        let long = vec![b'x'; 500];
        let e = excerpt_of(&long);
        assert!(e.chars().count() <= MAX_EXCERPT_BYTES + 1);
        assert!(e.ends_with('…'));
        // Invalid UTF-8 never panics.
        assert!(excerpt_of(b"\xff\xfe,bad").contains(','));
        // Truncation backs off to a char boundary.
        let mut doc = vec![b'a'; MAX_EXCERPT_BYTES - 1];
        doc.extend_from_slice("é".as_bytes()); // 2-byte char straddling the cut
        let e = excerpt_of(&doc);
        assert!(e.ends_with('…'));
    }

    #[test]
    fn job_name_extraction_is_best_effort() {
        assert_eq!(job_name_of(b"M1,2,j_77,1"), Some("j_77".to_string()));
        assert_eq!(job_name_of(b"M1,2,j_77"), Some("j_77".to_string()));
        assert_eq!(job_name_of(b"M1,2"), None);
        assert_eq!(job_name_of(b"M1,2,,1"), None);
        assert_eq!(job_name_of(b"M1,2,\xff\xfe,1"), None);
    }

    #[test]
    fn suspect_jobs_keeps_first_entry_per_job() {
        let row = |line: usize, job: Option<&str>| QuarantinedRow {
            line,
            byte_offset: 0,
            error: TraceError::Io("x".into()),
            excerpt: String::new(),
            job_name: job.map(str::to_string),
        };
        let q = Quarantine {
            rows: vec![row(1, Some("j_a")), row(2, None), row(3, Some("j_a"))],
            rows_good: 0,
            rows_total: 3,
            lines_total: 3,
        };
        let suspects = q.suspect_jobs();
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects["j_a"].line, 1);
        assert!(q.render().contains("3 of 3 rows"));
    }
}
