//! Exactly rounded floating-point accumulation (Shewchuk partials).
//!
//! The streaming trace engine folds per-job resource volumes into running
//! totals as jobs close, and must later *subtract* contributions when an
//! out-of-order straggler or a quarantine verdict revises a job. Naive
//! `f64` addition is order-sensitive, so a streamed total would drift from
//! the batch path's fold and break bit-identical reports. [`ExactSum`]
//! keeps a list of non-overlapping partials whose sum is the *exact* real
//! sum of everything added (minus everything subtracted); [`ExactSum::value`]
//! rounds that exact sum once, so the result depends only on the multiset
//! of inputs — never on arrival order.
//!
//! The algorithm is Shewchuk's grow-expansion as used by Python's
//! `math.fsum`. Inputs are assumed finite (trace resource requests are);
//! overflow of partial sums is not handled.

/// Order-independent exactly rounded `f64` accumulator.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    /// Non-overlapping partials in increasing magnitude order.
    partials: Vec<f64>,
}

impl ExactSum {
    /// Empty sum (value 0.0).
    pub fn new() -> ExactSum {
        ExactSum::default()
    }

    /// Add `value` to the running sum, exactly.
    pub fn add(&mut self, value: f64) {
        let mut x = value;
        let mut kept = 0;
        for k in 0..self.partials.len() {
            let mut y = self.partials[k];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        self.partials.truncate(kept);
        self.partials.push(x);
    }

    /// Subtract `value` from the running sum, exactly. Subtracting every
    /// previously added value returns the sum to exactly 0.0.
    pub fn sub(&mut self, value: f64) {
        self.add(-value);
    }

    /// The exact sum of two accumulators, as a new accumulator. Each
    /// partial is itself an exact float, so folding one side's partials
    /// into the other loses nothing: `a.merged(&b).value()` is the
    /// correctly rounded sum of *every* value ever added to either side —
    /// identical to having fed one accumulator from the start.
    pub fn merged(&self, other: &ExactSum) -> ExactSum {
        let (big, small) = if self.partials.len() >= other.partials.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        for &p in &small.partials {
            out.add(p);
        }
        out
    }

    /// The correctly rounded value of the exact sum.
    ///
    /// Depends only on the exact real sum, not on the internal partials
    /// representation, so two accumulators fed the same multiset in any
    /// order agree bit-for-bit.
    pub fn value(&self) -> f64 {
        // Round-half-even correction over the partials, largest first
        // (the `lsum` tail of Python's math.fsum).
        let p = &self.partials;
        let mut n = p.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = p[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // `hi + lo` landed exactly halfway between floats: break the tie
        // toward the remaining partials' sign.
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn empty_is_zero() {
        assert_eq!(ExactSum::new().value(), 0.0);
    }

    #[test]
    fn classic_cancellation() {
        // 1 + 1e100 + 1 - 1e100 == 2 exactly, where naive summation gives 0.
        let mut s = ExactSum::new();
        for v in [1.0, 1e100, 1.0, -1e100] {
            s.add(v);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn tenths_sum_exactly() {
        let mut s = ExactSum::new();
        for _ in 0..10 {
            s.add(0.1);
        }
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn order_independent() {
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<f64> = (0..200)
            .map(|_| rng.random_range(-1e7..1e7) * rng.random_range(0.0..1.0))
            .collect();
        let mut forward = ExactSum::new();
        for &v in &values {
            forward.add(v);
        }
        for _ in 0..20 {
            let mut shuffled = values.clone();
            shuffled.shuffle(&mut rng);
            let mut s = ExactSum::new();
            for &v in &shuffled {
                s.add(v);
            }
            assert_eq!(s.value().to_bits(), forward.value().to_bits());
        }
    }

    #[test]
    fn subtraction_is_exact_inverse() {
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<f64> = (0..100).map(|_| rng.random_range(-1e6..1e6)).collect();
        let mut s = ExactSum::new();
        for &v in &values {
            s.add(v);
        }
        let full = s.value();
        // Remove and re-add a value: identical bits.
        s.sub(values[13]);
        s.add(values[13]);
        assert_eq!(s.value().to_bits(), full.to_bits());
        // Remove everything (in a different order): exactly zero.
        let mut order = values.clone();
        order.shuffle(&mut rng);
        for &v in &order {
            s.sub(v);
        }
        assert_eq!(s.value(), 0.0);
    }
}
