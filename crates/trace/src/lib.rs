//! Cloud batch-workload trace model in the Alibaba cluster-trace-v2018
//! schema, plus a synthetic workload generator.
//!
//! The paper analyzes the 2018 Alibaba trace (`batch_task` and
//! `batch_instance` CSV files over 8 days / ~4k machines / ~4M batch jobs).
//! That trace is not redistributable here, so this crate provides both:
//!
//! * the **schema types + CSV codecs** ([`TaskRecord`], [`InstanceRecord`],
//!   [`csv`]) able to ingest the real published files, and
//! * a **synthetic generator** ([`gen`]) that emits records in the same
//!   schema whose *marginal statistics match the figures the paper reports*
//!   (dependency share, size distribution, shape mix, task-type composition,
//!   diurnal arrivals, interrupted jobs).
//!
//! Everything downstream (DAG building, kernels, clustering) consumes these
//! records, so the substitution exercises the identical code path a real
//! trace would.
//!
//! Key entry points:
//!
//! * [`taskname::parse`] — the task-name dependency grammar
//!   (`M1`, `R2_1`, `J3_1_2`, `R5_4_3_2_1`, `task_XYZ`…),
//! * [`gen::TraceGenerator`] — deterministic seeded workload synthesis,
//! * [`JobSet::from_tasks`] — group raw task rows into jobs,
//! * [`filter::SampleCriteria`] — the paper's integrity / availability /
//!   variability filters and the stratified 100-job sampler,
//! * [`stats::TraceStats`] — trace-level headline numbers (E10).

// `deny` rather than `forbid` so the one audited hot-path escape hatch
// (`scan::ascii`'s proven-ASCII `from_utf8_unchecked`) can opt in with a
// module-scoped `#[allow(unsafe_code)]`, mirroring `dagscope-par`'s mmap
// module. Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod csv;
mod error;
pub mod filter;
pub mod fsum;
pub mod gen;
pub mod intern;
mod job;
pub mod machine;
pub mod placement;
pub mod quarantine;
pub mod scan;
mod schema;
pub mod stats;
pub mod store;
pub mod stream;
pub mod taskname;

pub use error::TraceError;
pub use intern::{IStr, Interner};
pub use job::{Job, JobSet};
pub use quarantine::{Quarantine, QuarantinedRow, ReadPolicy};
pub use schema::{InstanceRecord, Status, TaskRecord};
pub use taskname::{ParsedTaskName, TaskKind};
