//! The v2018 task-name dependency grammar.
//!
//! In the Alibaba 2018 trace, a task's name encodes both its position in the
//! job DAG and its upstream dependencies:
//!
//! * `M1` — task 1, a Map-family task with no parents (in-degree 0),
//! * `R2_1` — task 2, Reduce, depends on task 1,
//! * `J3_1_2` — task 3, Join, depends on tasks 1 and 2,
//! * `R5_4_3_2_1` — task 5, Reduce, depends on tasks 4, 3, 2 and 1,
//! * `task_Kx92ab` — an *independent* task carrying no DAG information.
//!
//! The paper (Section IV-A and V-C) distinguishes three type codes: `M`
//! (Map or Merge), `R` (Reduce) and `J` (Join); anything else is preserved
//! as [`TaskKind::Other`].

use serde::{Deserialize, Serialize};

/// Task-type code inferred from the first letter of a DAG task name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskKind {
    /// `M…` — Map or Merge stage.
    Map,
    /// `R…` — Reduce stage.
    Reduce,
    /// `J…` — Join stage (the Map-Join-Reduce model's independent join).
    Join,
    /// Any other leading letter (rare in the batch DAG subset).
    Other(char),
}

impl TaskKind {
    /// The letter used when rendering a task name.
    pub fn letter(&self) -> char {
        match self {
            TaskKind::Map => 'M',
            TaskKind::Reduce => 'R',
            TaskKind::Join => 'J',
            TaskKind::Other(c) => *c,
        }
    }

    /// Inverse of [`letter`](Self::letter).
    pub fn from_letter(c: char) -> TaskKind {
        match c {
            'M' => TaskKind::Map,
            'R' => TaskKind::Reduce,
            'J' => TaskKind::Join,
            other => TaskKind::Other(other),
        }
    }
}

/// Result of parsing a task name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParsedTaskName {
    /// A DAG-participating task: type code, 1-based task id, parent ids.
    Dag {
        /// Stage type inferred from the leading letter.
        kind: TaskKind,
        /// 1-based task number within the job.
        id: u32,
        /// Parent task numbers (order as written in the name).
        parents: Vec<u32>,
    },
    /// A task with no dependency information (`task_…` or unparseable).
    Independent {
        /// The raw name, preserved verbatim.
        raw: String,
    },
}

impl ParsedTaskName {
    /// True for the `Dag` variant.
    pub fn is_dag(&self) -> bool {
        matches!(self, ParsedTaskName::Dag { .. })
    }
}

/// Parse a v2018 task name.
///
/// Grammar: `letter+ digits ('_' digits)*` is a DAG task (only the *first*
/// letter determines the [`TaskKind`]; names like `MergeTask12_1` seen in
/// the wild still parse, with `Merge…` collapsing to `M`). Anything else —
/// including the common `task_XXXX` opaque form — is `Independent`.
///
/// ```
/// use dagscope_trace::taskname::{parse, ParsedTaskName, TaskKind};
/// match parse("R5_4_3_2_1") {
///     ParsedTaskName::Dag { kind, id, parents } => {
///         assert_eq!(kind, TaskKind::Reduce);
///         assert_eq!(id, 5);
///         assert_eq!(parents, vec![4, 3, 2, 1]);
///     }
///     _ => panic!("should parse as DAG"),
/// }
/// assert!(!parse("task_Kx92").is_dag());
/// ```
pub fn parse(name: &str) -> ParsedTaskName {
    let independent = || ParsedTaskName::Independent {
        raw: name.to_string(),
    };

    // The opaque independent form is lowercase `task_…`.
    if name.starts_with("task_") || name.is_empty() {
        return independent();
    }

    let mut chars = name.char_indices().peekable();
    // 1) leading letters.
    let mut first_letter = None;
    let mut digits_start = None;
    for (i, c) in chars.by_ref() {
        if c.is_ascii_alphabetic() {
            if first_letter.is_none() {
                first_letter = Some(c);
            }
        } else if c.is_ascii_digit() {
            digits_start = Some(i);
            break;
        } else {
            return independent();
        }
    }
    let (Some(first_letter), Some(digits_start)) = (first_letter, digits_start) else {
        return independent();
    };

    // 2) task id digits, then `_digits` groups.
    let rest = &name[digits_start..];
    let mut segments = rest.split('_');
    let id = match segments.next().and_then(|s| s.parse::<u32>().ok()) {
        Some(id) => id,
        None => return independent(),
    };
    let mut parents = Vec::new();
    for seg in segments {
        match seg.parse::<u32>() {
            Ok(p) => parents.push(p),
            // Mixed suffixes (e.g. `M1_Stg2`) carry no usable dependency
            // info — treat the whole name as independent, like the paper's
            // preprocessing does.
            Err(_) => return independent(),
        }
    }

    ParsedTaskName::Dag {
        kind: TaskKind::from_letter(first_letter.to_ascii_uppercase()),
        id,
        parents,
    }
}

/// Allocation-free [`parse`]`(name).is_dag()` — the ingest hot loop asks
/// this once per task row, where [`parse`]'s parent `Vec` (or the
/// `Independent` name copy) would be the only per-row allocation left.
/// Kept equivalent to the full parser by construction (same grammar, same
/// `u32` overflow behavior per segment) and pinned by tests.
pub fn is_dag_name(name: &str) -> bool {
    if name.is_empty() || name.starts_with("task_") {
        return false;
    }
    let bytes = name.as_bytes();
    // Leading letters; the first non-letter must be an ASCII digit. A
    // multi-byte character's lead byte is neither, matching the char-wise
    // parser's `Independent` verdict.
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
        i += 1;
    }
    if i == 0 || i == bytes.len() || !bytes[i].is_ascii_digit() {
        return false;
    }
    // Task id, then `_parent` groups: every segment must be a valid `u32`,
    // replicating `str::parse::<u32>` exactly — optional leading `+`, at
    // least one digit, nothing else, value within range (leading zeros
    // allowed, so the bound is on the value, not the digit count).
    bytes[i..].split(|&b| b == b'_').all(|seg| {
        let digits = match seg.split_first() {
            Some((&b'+', rest)) => rest,
            _ => seg,
        };
        if digits.is_empty() {
            return false;
        }
        let mut v: u64 = 0;
        for &b in digits {
            let d = b.wrapping_sub(b'0');
            if d > 9 {
                return false;
            }
            v = v * 10 + u64::from(d);
            if v > u64::from(u32::MAX) {
                return false;
            }
        }
        true
    })
}

/// Memoizing wrapper around [`is_dag_name`] for the ingest hot loop.
///
/// DAG task names repeat enormously across jobs (`M1`, `R2_1`, `J3_1_2`…
/// come from a small grammar), so a tiny direct-mapped cache keyed on the
/// raw name bytes turns the ~25 ns grammar walk into a load-and-compare
/// for names up to 15 bytes. The opaque `task_…` form bypasses the cache
/// entirely — those names are frequently unique and would thrash the
/// slots, and their verdict is a prefix test away. Misses and longer
/// names delegate to [`is_dag_name`], so the wrapper is transparent by
/// construction; a differential test pins it anyway.
#[derive(Debug, Clone)]
pub struct DagNameMemo {
    /// `(packed key, verdict)` per slot. Key 0 marks an empty slot — a
    /// real key cannot be 0 because the name's (nonzero) length is folded
    /// into the top byte.
    slots: Vec<(u128, bool)>,
}

impl Default for DagNameMemo {
    fn default() -> DagNameMemo {
        DagNameMemo::new()
    }
}

impl DagNameMemo {
    const SLOTS: usize = 256;

    /// An empty cache (~8 KiB, comfortably L1-resident).
    pub fn new() -> DagNameMemo {
        DagNameMemo {
            slots: vec![(0, false); Self::SLOTS],
        }
    }

    /// Memoized [`is_dag_name`]`(name)`.
    #[inline]
    pub fn is_dag_name(&mut self, name: &str) -> bool {
        let bytes = name.as_bytes();
        if bytes.is_empty() || bytes.starts_with(b"task_") {
            return false;
        }
        if bytes.len() > 15 {
            return is_dag_name(name);
        }
        let mut packed = [0u8; 16];
        packed[..bytes.len()].copy_from_slice(bytes);
        // Zero padding cannot collide across lengths: the length occupies
        // the (always zero-padded) top byte.
        let key = u128::from_le_bytes(packed) | (bytes.len() as u128) << 120;
        let h = ((key as u64) ^ ((key >> 64) as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let slot = (h >> 48) as usize & (Self::SLOTS - 1);
        let (k, v) = self.slots[slot];
        if k == key {
            return v;
        }
        let v = is_dag_name(name);
        self.slots[slot] = (key, v);
        v
    }
}

/// Render a DAG task name from its components (inverse of [`parse`]).
///
/// ```
/// use dagscope_trace::taskname::{format_dag, TaskKind};
/// assert_eq!(format_dag(TaskKind::Reduce, 5, &[4, 3, 2, 1]), "R5_4_3_2_1");
/// assert_eq!(format_dag(TaskKind::Map, 1, &[]), "M1");
/// ```
pub fn format_dag(kind: TaskKind, id: u32, parents: &[u32]) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(2 + 3 * parents.len());
    s.push(kind.letter());
    write!(s, "{id}").unwrap();
    for p in parents {
        write!(s, "_{p}").unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // Section IV-A examples from job 1001388.
        assert_eq!(
            parse("M1"),
            ParsedTaskName::Dag {
                kind: TaskKind::Map,
                id: 1,
                parents: vec![]
            }
        );
        assert_eq!(
            parse("R2_1"),
            ParsedTaskName::Dag {
                kind: TaskKind::Reduce,
                id: 2,
                parents: vec![1]
            }
        );
        assert_eq!(
            parse("R4_3"),
            ParsedTaskName::Dag {
                kind: TaskKind::Reduce,
                id: 4,
                parents: vec![3]
            }
        );
        assert_eq!(
            parse("R5_4_3_2_1"),
            ParsedTaskName::Dag {
                kind: TaskKind::Reduce,
                id: 5,
                parents: vec![4, 3, 2, 1]
            }
        );
    }

    #[test]
    fn join_tasks() {
        assert_eq!(
            parse("J3_1_2"),
            ParsedTaskName::Dag {
                kind: TaskKind::Join,
                id: 3,
                parents: vec![1, 2]
            }
        );
    }

    #[test]
    fn multi_letter_prefix_uses_first_letter() {
        assert_eq!(
            parse("MergeTask12_1"),
            ParsedTaskName::Dag {
                kind: TaskKind::Map,
                id: 12,
                parents: vec![1]
            }
        );
    }

    #[test]
    fn lowercase_prefix_normalized() {
        assert_eq!(
            parse("m2_1"),
            ParsedTaskName::Dag {
                kind: TaskKind::Map,
                id: 2,
                parents: vec![1]
            }
        );
    }

    #[test]
    fn independent_forms() {
        assert!(!parse("task_Kx92ab").is_dag());
        assert!(!parse("").is_dag());
        assert!(!parse("123").is_dag());
        assert!(!parse("M").is_dag());
        assert!(!parse("M1_x2").is_dag());
        assert!(!parse("M-1").is_dag());
    }

    #[test]
    fn other_kind_preserved() {
        match parse("X7_2") {
            ParsedTaskName::Dag { kind, id, parents } => {
                assert_eq!(kind, TaskKind::Other('X'));
                assert_eq!(id, 7);
                assert_eq!(parents, vec![2]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn format_parse_round_trip() {
        for (kind, id, parents) in [
            (TaskKind::Map, 1, vec![]),
            (TaskKind::Reduce, 9, vec![8, 7]),
            (TaskKind::Join, 3, vec![1, 2]),
            (TaskKind::Other('Z'), 30, vec![29, 28, 1]),
        ] {
            let s = format_dag(kind, id, &parents);
            assert_eq!(parse(&s), ParsedTaskName::Dag { kind, id, parents });
        }
    }

    #[test]
    fn is_dag_name_matches_full_parser() {
        // The fast predicate and the allocating parser must agree on every
        // grammar edge: overflow segments, `+`-signed parents (u32::from_str
        // accepts them), non-ASCII lead bytes, empty segments, bare letters.
        for name in [
            "M1",
            "R2_1",
            "R5_4_3_2_1",
            "MergeTask12_1",
            "m2_1",
            "task_Kx92ab",
            "task_",
            "",
            "123",
            "M",
            "M1_x2",
            "M-1",
            "M1_",
            "M_1",
            "M1__2",
            "M1_+2",
            "M+1",
            "M4294967295",
            "M4294967296",
            "M99999999999_1",
            "M1_99999999999",
            "M00000000001_1",
            "M1_00000000000042",
            "M007_001",
            "Ṁ1",
            "M1\u{300}",
            "Stg5_4_3",
            "X7_2",
            "J3_1_2",
        ] {
            assert_eq!(
                is_dag_name(name),
                parse(name).is_dag(),
                "disagreement on {name:?}"
            );
        }
    }

    #[test]
    fn kind_letter_round_trip() {
        for k in [
            TaskKind::Map,
            TaskKind::Reduce,
            TaskKind::Join,
            TaskKind::Other('Q'),
        ] {
            assert_eq!(TaskKind::from_letter(k.letter()), k);
        }
    }
}
