//! Machine-side records of the v2018 release (`machine_meta.csv` and
//! `machine_usage.csv`).
//!
//! The paper (Section III) notes the trace also ships machine meta and
//! usage files; the characterization experiments only consume batch rows,
//! but the scheduling substrate uses the machine shape, and completeness
//! lets real dumps drop in wholesale.

use std::io::{BufRead, BufWriter, Write};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::TraceError;

/// One row of `machine_meta.csv` (v2018 column order):
/// `machine_id, time_stamp, failure_domain_1, failure_domain_2, cpu_num,
/// mem_size, status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineMetaRecord {
    /// Machine identifier (`m_1997`…).
    pub machine_id: String,
    /// Observation timestamp (seconds since trace start).
    pub time_stamp: i64,
    /// Coarse failure domain (rack-level in the real dump).
    pub failure_domain_1: u32,
    /// Fine failure domain.
    pub failure_domain_2: u32,
    /// Core count (96 on the published machines).
    pub cpu_num: u32,
    /// Memory size, normalized units.
    pub mem_size: f64,
    /// Machine status string (`USING`…).
    pub status: String,
}

/// One row of `machine_usage.csv` (v2018 column order):
/// `machine_id, time_stamp, cpu_util_percent, mem_util_percent, mem_gps,
/// mkpi, net_in, net_out, disk_io_percent`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineUsageRecord {
    /// Machine identifier.
    pub machine_id: String,
    /// Sample timestamp (seconds since trace start).
    pub time_stamp: i64,
    /// CPU utilization, percent.
    pub cpu_util_percent: f64,
    /// Memory utilization, percent.
    pub mem_util_percent: f64,
    /// Memory bandwidth (GB/s in the real dump; 0 when unsampled).
    pub mem_gps: f64,
    /// Memory KPI (cache misses per kilo-instruction proxy).
    pub mkpi: f64,
    /// Normalized inbound network traffic.
    pub net_in: f64,
    /// Normalized outbound network traffic.
    pub net_out: f64,
    /// Disk I/O utilization, percent.
    pub disk_io_percent: f64,
}

fn parse_num<T: std::str::FromStr + Default>(
    s: &str,
    line: usize,
    column: &'static str,
) -> Result<T, TraceError> {
    if s.is_empty() {
        return Ok(T::default());
    }
    s.parse::<T>().map_err(|_| TraceError::BadField {
        line,
        column,
        value: s.to_string(),
    })
}

/// Decode one `machine_meta.csv` row.
pub fn parse_meta_line(line_no: usize, line: &str) -> Result<MachineMetaRecord, TraceError> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 7 {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: 7,
            found: f.len(),
        });
    }
    Ok(MachineMetaRecord {
        machine_id: f[0].to_string(),
        time_stamp: parse_num(f[1], line_no, "time_stamp")?,
        failure_domain_1: parse_num(f[2], line_no, "failure_domain_1")?,
        failure_domain_2: parse_num(f[3], line_no, "failure_domain_2")?,
        cpu_num: parse_num(f[4], line_no, "cpu_num")?,
        mem_size: parse_num(f[5], line_no, "mem_size")?,
        status: f[6].to_string(),
    })
}

/// Decode one `machine_usage.csv` row.
pub fn parse_usage_line(line_no: usize, line: &str) -> Result<MachineUsageRecord, TraceError> {
    let f: Vec<&str> = line.split(',').collect();
    if f.len() != 9 {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: 9,
            found: f.len(),
        });
    }
    Ok(MachineUsageRecord {
        machine_id: f[0].to_string(),
        time_stamp: parse_num(f[1], line_no, "time_stamp")?,
        cpu_util_percent: parse_num(f[2], line_no, "cpu_util_percent")?,
        mem_util_percent: parse_num(f[3], line_no, "mem_util_percent")?,
        mem_gps: parse_num(f[4], line_no, "mem_gps")?,
        mkpi: parse_num(f[5], line_no, "mkpi")?,
        net_in: parse_num(f[6], line_no, "net_in")?,
        net_out: parse_num(f[7], line_no, "net_out")?,
        disk_io_percent: parse_num(f[8], line_no, "disk_io_percent")?,
    })
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Encode one meta row.
pub fn format_meta_line(m: &MachineMetaRecord) -> String {
    format!(
        "{},{},{},{},{},{},{}",
        m.machine_id,
        m.time_stamp,
        m.failure_domain_1,
        m.failure_domain_2,
        m.cpu_num,
        fmt_f64(m.mem_size),
        m.status
    )
}

/// Encode one usage row.
pub fn format_usage_line(u: &MachineUsageRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{}",
        u.machine_id,
        u.time_stamp,
        fmt_f64(u.cpu_util_percent),
        fmt_f64(u.mem_util_percent),
        fmt_f64(u.mem_gps),
        fmt_f64(u.mkpi),
        fmt_f64(u.net_in),
        fmt_f64(u.net_out),
        fmt_f64(u.disk_io_percent)
    )
}

/// Read a whole `machine_meta.csv` stream.
pub fn read_meta<R: BufRead>(reader: R) -> Result<Vec<MachineMetaRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if !line.is_empty() {
            out.push(parse_meta_line(i + 1, &line)?);
        }
    }
    Ok(out)
}

/// Read a whole `machine_usage.csv` stream.
pub fn read_usage<R: BufRead>(reader: R) -> Result<Vec<MachineUsageRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if !line.is_empty() {
            out.push(parse_usage_line(i + 1, &line)?);
        }
    }
    Ok(out)
}

/// Write meta rows.
pub fn write_meta<W: Write>(writer: W, rows: &[MachineMetaRecord]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for r in rows {
        writeln!(w, "{}", format_meta_line(r))?;
    }
    w.flush()?;
    Ok(())
}

/// Write usage rows.
pub fn write_usage<W: Write>(writer: W, rows: &[MachineUsageRecord]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for r in rows {
        writeln!(w, "{}", format_usage_line(r))?;
    }
    w.flush()?;
    Ok(())
}

/// Synthesize the machine fleet: `machines` identical 96-core nodes spread
/// over failure domains, plus hourly usage samples whose CPU utilization
/// follows the diurnal pattern the batch arrivals do (online load peaks in
/// the day, batch backfills at night — Section II's co-location premise).
pub fn generate_machines(
    machines: u32,
    window_secs: i64,
    seed: u64,
) -> (Vec<MachineMetaRecord>, Vec<MachineUsageRecord>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D41_4348);
    let mut meta = Vec::with_capacity(machines as usize);
    let mut usage = Vec::new();
    for m in 1..=machines {
        let id = format!("m_{m}");
        meta.push(MachineMetaRecord {
            machine_id: id.clone(),
            time_stamp: 0,
            failure_domain_1: (m - 1) / 40, // ~40 machines per rack
            failure_domain_2: (m - 1) % 40,
            cpu_num: 96,
            mem_size: 100.0,
            status: "USING".to_string(),
        });
        let mut t = 0i64;
        while t < window_secs {
            let day_frac = (t % 86_400) as f64 / 86_400.0;
            let online = 35.0 + 25.0 * (std::f64::consts::TAU * (day_frac - 0.55)).sin();
            let jitter: f64 = rng.random_range(-8.0f64..8.0);
            let cpu = (online + jitter).clamp(2.0, 98.0);
            usage.push(MachineUsageRecord {
                machine_id: id.clone(),
                time_stamp: t,
                cpu_util_percent: (cpu * 10.0).round() / 10.0,
                mem_util_percent: ((cpu * 0.8 + rng.random_range(0.0f64..10.0)) * 10.0).round()
                    / 10.0,
                mem_gps: (rng.random_range(0.5f64..8.0) * 100.0).round() / 100.0,
                mkpi: (rng.random_range(0.1f64..3.0) * 100.0).round() / 100.0,
                net_in: (rng.random_range(0.0f64..1.0) * 1000.0).round() / 1000.0,
                net_out: (rng.random_range(0.0f64..1.0) * 1000.0).round() / 1000.0,
                disk_io_percent: (rng.random_range(0.0f64..60.0) * 10.0).round() / 10.0,
            });
            t += 3_600;
        }
    }
    (meta, usage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trip() {
        let line = "m_1997,0,3,17,96,100,USING";
        let r = parse_meta_line(1, line).unwrap();
        assert_eq!(r.cpu_num, 96);
        assert_eq!(format_meta_line(&r), line);
    }

    #[test]
    fn usage_round_trip() {
        let line = "m_1,3600,42.5,38.1,2.25,0.7,0.125,0.5,12.5";
        let r = parse_usage_line(1, line).unwrap();
        assert_eq!(r.cpu_util_percent, 42.5);
        assert_eq!(format_usage_line(&r), line);
    }

    #[test]
    fn wrong_field_counts_rejected() {
        assert!(parse_meta_line(1, "a,b").is_err());
        assert!(parse_usage_line(1, "a,b,c").is_err());
    }

    #[test]
    fn stream_round_trips() {
        let (meta, usage) = generate_machines(5, 86_400, 1);
        let mut buf = Vec::new();
        write_meta(&mut buf, &meta).unwrap();
        assert_eq!(read_meta(&buf[..]).unwrap(), meta);
        let mut buf2 = Vec::new();
        write_usage(&mut buf2, &usage).unwrap();
        assert_eq!(read_usage(&buf2[..]).unwrap(), usage);
    }

    #[test]
    fn generator_shape() {
        let (meta, usage) = generate_machines(80, 2 * 86_400, 7);
        assert_eq!(meta.len(), 80);
        // Hourly samples over 2 days per machine.
        assert_eq!(usage.len(), 80 * 48);
        // Failure domains: 40 machines per rack → 2 racks.
        assert_eq!(meta.iter().map(|m| m.failure_domain_1).max(), Some(1));
        for u in &usage {
            assert!((0.0..=100.0).contains(&u.cpu_util_percent));
            assert!((0.0..=110.0).contains(&u.mem_util_percent));
        }
        // Diurnal: mean CPU in the busiest hour clearly above the quietest.
        let mut by_hour = vec![(0.0f64, 0usize); 24];
        for u in &usage {
            let h = ((u.time_stamp % 86_400) / 3_600) as usize;
            by_hour[h].0 += u.cpu_util_percent;
            by_hour[h].1 += 1;
        }
        let means: Vec<f64> = by_hour.iter().map(|(s, c)| s / *c as f64).collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min + 20.0, "hourly means {means:?}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate_machines(10, 86_400, 3),
            generate_machines(10, 86_400, 3)
        );
    }
}
