//! Grouping raw task rows into jobs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::schema::{Status, TaskRecord};
use crate::taskname;

/// All task rows of one batch job, in stable (insertion) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job identifier (`j_1001388`…).
    pub name: String,
    /// The job's task rows.
    pub tasks: Vec<TaskRecord>,
}

impl Job {
    /// Number of tasks.
    pub fn size(&self) -> usize {
        self.tasks.len()
    }

    /// True when **every** task name parses as a DAG task — the subset the
    /// paper's analysis covers.
    pub fn is_dag_job(&self) -> bool {
        !self.tasks.is_empty()
            && self
                .tasks
                .iter()
                .all(|t| taskname::is_dag_name(&t.task_name))
    }

    /// True when every task finished with [`Status::Terminated`]
    /// (the *integrity* criterion).
    pub fn fully_terminated(&self) -> bool {
        !self.tasks.is_empty() && self.tasks.iter().all(|t| t.status == Status::Terminated)
    }

    /// Earliest task start (ignoring missing zeros), if any.
    pub fn start_time(&self) -> Option<i64> {
        self.tasks
            .iter()
            .map(|t| t.start_time)
            .filter(|&s| s > 0)
            .min()
    }

    /// Latest task end, if any.
    pub fn end_time(&self) -> Option<i64> {
        self.tasks
            .iter()
            .map(|t| t.end_time)
            .filter(|&e| e > 0)
            .max()
    }

    /// Job completion time: earliest start of the first task(s) to latest
    /// end of the last task(s), per Section II-B.
    pub fn completion_time(&self) -> Option<i64> {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) if e >= s => Some(e - s),
            _ => None,
        }
    }

    /// Sum over tasks of `instance_num × plan_cpu` — the job's requested
    /// CPU volume, used for the resource-share statistic (E10).
    pub fn planned_cpu_volume(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.instance_num as f64 * t.plan_cpu)
            .sum()
    }

    /// Sum over tasks of `instance_num × plan_mem`.
    pub fn planned_mem_volume(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.instance_num as f64 * t.plan_mem)
            .sum()
    }
}

/// A collection of jobs, keyed and iterated in deterministic (name) order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobSet {
    jobs: Vec<Job>,
}

impl JobSet {
    /// Group task rows by `job_name`. Rows keep their relative order inside
    /// each job; jobs are sorted by name so downstream sampling is
    /// reproducible regardless of input row order.
    pub fn from_tasks(tasks: impl IntoIterator<Item = TaskRecord>) -> JobSet {
        let mut by_job: BTreeMap<crate::IStr, Vec<TaskRecord>> = BTreeMap::new();
        for t in tasks {
            by_job.entry(t.job_name.clone()).or_default().push(t);
        }
        JobSet {
            jobs: by_job
                .into_iter()
                .map(|(name, tasks)| Job {
                    name: name.to_string(),
                    tasks,
                })
                .collect(),
        }
    }

    /// Wrap an already-grouped list (sorted by name for determinism).
    pub fn from_jobs(mut jobs: Vec<Job>) -> JobSet {
        jobs.sort_by(|a, b| a.name.cmp(&b.name));
        JobSet { jobs }
    }

    /// Borrow the jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Look up a job by name (binary search — the set is name-sorted).
    pub fn get(&self, name: &str) -> Option<&Job> {
        self.jobs
            .binary_search_by(|j| j.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.jobs[i])
    }

    /// Consume into the underlying vector.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(job: &str, name: &str, status: Status, start: i64, end: i64) -> TaskRecord {
        TaskRecord {
            task_name: name.into(),
            instance_num: 2,
            job_name: job.into(),
            task_type: "1".into(),
            status,
            start_time: start,
            end_time: end,
            plan_cpu: 100.0,
            plan_mem: 0.5,
        }
    }

    #[test]
    fn grouping_and_ordering() {
        let rows = vec![
            task("j_2", "M1", Status::Terminated, 10, 20),
            task("j_1", "M1", Status::Terminated, 5, 9),
            task("j_2", "R2_1", Status::Terminated, 21, 30),
        ];
        let set = JobSet::from_tasks(rows);
        assert_eq!(set.len(), 2);
        assert_eq!(set.jobs()[0].name, "j_1");
        assert_eq!(set.jobs()[1].tasks.len(), 2);
        assert!(set.get("j_2").is_some());
        assert!(set.get("j_3").is_none());
    }

    #[test]
    fn dag_detection() {
        let dag = Job {
            name: "j".into(),
            tasks: vec![task("j", "M1", Status::Terminated, 1, 2)],
        };
        assert!(dag.is_dag_job());
        let indep = Job {
            name: "j".into(),
            tasks: vec![task("j", "task_abc", Status::Terminated, 1, 2)],
        };
        assert!(!indep.is_dag_job());
        let empty = Job {
            name: "j".into(),
            tasks: vec![],
        };
        assert!(!empty.is_dag_job());
    }

    #[test]
    fn completion_time_spans_tasks() {
        let j = Job {
            name: "j".into(),
            tasks: vec![
                task("j", "M1", Status::Terminated, 100, 150),
                task("j", "M3", Status::Terminated, 90, 120),
                task("j", "R2_1", Status::Terminated, 151, 200),
            ],
        };
        assert_eq!(j.start_time(), Some(90));
        assert_eq!(j.end_time(), Some(200));
        assert_eq!(j.completion_time(), Some(110));
    }

    #[test]
    fn completion_time_missing_when_no_valid_stamps() {
        let j = Job {
            name: "j".into(),
            tasks: vec![task("j", "M1", Status::Interrupted, 0, 0)],
        };
        assert_eq!(j.completion_time(), None);
    }

    #[test]
    fn integrity_requires_all_terminated() {
        let j = Job {
            name: "j".into(),
            tasks: vec![
                task("j", "M1", Status::Terminated, 1, 2),
                task("j", "R2_1", Status::Failed, 2, 3),
            ],
        };
        assert!(!j.fully_terminated());
    }

    #[test]
    fn resource_volumes() {
        let j = Job {
            name: "j".into(),
            tasks: vec![task("j", "M1", Status::Terminated, 1, 2)],
        };
        assert_eq!(j.planned_cpu_volume(), 200.0);
        assert_eq!(j.planned_mem_volume(), 1.0);
    }
}
