//! CSV codecs for the v2018 `batch_task` / `batch_instance` files.
//!
//! The published trace ships headerless comma-separated files; fields never
//! contain commas or quotes, so a split-based codec is both correct for the
//! real data and fast. Empty numeric fields (common in the real trace for
//! missing timestamps/resources) decode as `0`.

use std::io::{BufRead, BufWriter, Write};

use crate::schema::{InstanceRecord, Status, TaskRecord};
use crate::TraceError;

const TASK_FIELDS: usize = 9;
const INSTANCE_FIELDS: usize = 14;

fn parse_num<T: std::str::FromStr + Default>(
    s: &str,
    line: usize,
    column: &'static str,
) -> Result<T, TraceError> {
    if s.is_empty() {
        return Ok(T::default());
    }
    s.parse::<T>().map_err(|_| TraceError::BadField {
        line,
        column,
        value: s.to_string(),
    })
}

/// Decode one `batch_task.csv` row.
pub fn parse_task_line(line_no: usize, line: &str) -> Result<TaskRecord, TraceError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != TASK_FIELDS {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: TASK_FIELDS,
            found: fields.len(),
        });
    }
    Ok(TaskRecord {
        task_name: fields[0].to_string(),
        instance_num: parse_num(fields[1], line_no, "instance_num")?,
        job_name: fields[2].to_string(),
        task_type: fields[3].to_string(),
        status: Status::parse(fields[4]),
        start_time: parse_num(fields[5], line_no, "start_time")?,
        end_time: parse_num(fields[6], line_no, "end_time")?,
        plan_cpu: parse_num(fields[7], line_no, "plan_cpu")?,
        plan_mem: parse_num(fields[8], line_no, "plan_mem")?,
    })
}

/// Decode one `batch_instance.csv` row.
pub fn parse_instance_line(line_no: usize, line: &str) -> Result<InstanceRecord, TraceError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != INSTANCE_FIELDS {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: INSTANCE_FIELDS,
            found: fields.len(),
        });
    }
    Ok(InstanceRecord {
        instance_name: fields[0].to_string(),
        task_name: fields[1].to_string(),
        job_name: fields[2].to_string(),
        task_type: fields[3].to_string(),
        status: Status::parse(fields[4]),
        start_time: parse_num(fields[5], line_no, "start_time")?,
        end_time: parse_num(fields[6], line_no, "end_time")?,
        machine_id: fields[7].to_string(),
        seq_no: parse_num(fields[8], line_no, "seq_no")?,
        total_seq_no: parse_num(fields[9], line_no, "total_seq_no")?,
        cpu_avg: parse_num(fields[10], line_no, "cpu_avg")?,
        cpu_max: parse_num(fields[11], line_no, "cpu_max")?,
        mem_avg: parse_num(fields[12], line_no, "mem_avg")?,
        mem_max: parse_num(fields[13], line_no, "mem_max")?,
    })
}

/// Read a whole `batch_task.csv` stream.
pub fn read_tasks<R: BufRead>(reader: R) -> Result<Vec<TaskRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        out.push(parse_task_line(i + 1, &line)?);
    }
    Ok(out)
}

/// Read a whole `batch_instance.csv` stream.
pub fn read_instances<R: BufRead>(reader: R) -> Result<Vec<InstanceRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        out.push(parse_instance_line(i + 1, &line)?);
    }
    Ok(out)
}

/// Format a float the way the published trace does: integers print bare
/// (`100`), fractions keep their decimals (`0.5`).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Encode one task row.
pub fn format_task_line(t: &TaskRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{}",
        t.task_name,
        t.instance_num,
        t.job_name,
        t.task_type,
        t.status.as_str(),
        t.start_time,
        t.end_time,
        fmt_f64(t.plan_cpu),
        fmt_f64(t.plan_mem),
    )
}

/// Encode one instance row.
pub fn format_instance_line(i: &InstanceRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        i.instance_name,
        i.task_name,
        i.job_name,
        i.task_type,
        i.status.as_str(),
        i.start_time,
        i.end_time,
        i.machine_id,
        i.seq_no,
        i.total_seq_no,
        fmt_f64(i.cpu_avg),
        fmt_f64(i.cpu_max),
        fmt_f64(i.mem_avg),
        fmt_f64(i.mem_max),
    )
}

/// Write task rows as `batch_task.csv`.
pub fn write_tasks<W: Write>(writer: W, tasks: &[TaskRecord]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for t in tasks {
        writeln!(w, "{}", format_task_line(t))?;
    }
    w.flush()?;
    Ok(())
}

/// Write instance rows as `batch_instance.csv`.
pub fn write_instances<W: Write>(
    writer: W,
    instances: &[InstanceRecord],
) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for i in instances {
        writeln!(w, "{}", format_instance_line(i))?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TASK_LINE: &str = "R2_1,5,j_1001388,1,Terminated,86400,86520,100,0.5";

    #[test]
    fn task_line_round_trip() {
        let t = parse_task_line(1, TASK_LINE).unwrap();
        assert_eq!(t.task_name, "R2_1");
        assert_eq!(t.instance_num, 5);
        assert_eq!(t.status, Status::Terminated);
        assert_eq!(t.plan_cpu, 100.0);
        assert_eq!(format_task_line(&t), TASK_LINE);
    }

    #[test]
    fn empty_numeric_fields_default() {
        let t = parse_task_line(1, "task_abc,,j_1,1,Running,,,,").unwrap();
        assert_eq!(t.instance_num, 0);
        assert_eq!(t.start_time, 0);
        assert_eq!(t.plan_cpu, 0.0);
    }

    #[test]
    fn wrong_field_count_reported() {
        let err = parse_task_line(7, "a,b,c").unwrap_err();
        assert_eq!(
            err,
            TraceError::FieldCount {
                line: 7,
                expected: 9,
                found: 3
            }
        );
    }

    #[test]
    fn bad_field_reported_with_column() {
        let err = parse_task_line(2, "M1,x,j_1,1,Terminated,1,2,3,4").unwrap_err();
        match err {
            TraceError::BadField {
                line: 2,
                column: "instance_num",
                value,
            } => {
                assert_eq!(value, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_line_round_trip() {
        let line = "inst_1,M1,j_9,1,Terminated,100,200,m_1997,1,1,50.5,80,0.1,0.2";
        let i = parse_instance_line(1, line).unwrap();
        assert_eq!(i.machine_id, "m_1997");
        assert_eq!(i.cpu_avg, 50.5);
        assert_eq!(format_instance_line(&i), line);
    }

    #[test]
    fn stream_read_write_round_trip() {
        let t1 = parse_task_line(1, TASK_LINE).unwrap();
        let t2 = parse_task_line(1, "M1,2,j_1001388,1,Terminated,86000,86400,50,0.25").unwrap();
        let mut buf = Vec::new();
        write_tasks(&mut buf, &[t1.clone(), t2.clone()]).unwrap();
        let back = read_tasks(&buf[..]).unwrap();
        assert_eq!(back, vec![t1, t2]);
    }

    #[test]
    fn blank_lines_skipped() {
        let data = format!("{TASK_LINE}\n\n{TASK_LINE}\n");
        let rows = read_tasks(data.as_bytes()).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
