//! CSV codecs for the v2018 `batch_task` / `batch_instance` files.
//!
//! The published trace ships headerless comma-separated files; fields never
//! contain commas or quotes, so a split-based codec is both correct for the
//! real data and fast. Empty numeric fields (common in the real trace for
//! missing timestamps/resources) decode as `0`.
//!
//! Two ingestion paths are provided:
//!
//! * the **sequential** readers [`read_tasks`] / [`read_instances`], which
//!   stream from any [`BufRead`], and
//! * the **parallel** readers [`read_tasks_parallel`] /
//!   [`read_instances_parallel`], which split an in-memory byte buffer into
//!   large newline-aligned chunks and decode them across threads via
//!   [`dagscope_par::par_chunk_map`].
//!
//! The two paths produce identical records and identical errors — including
//! exact 1-based line numbers — on every input; the sequential readers stay
//! as the oracle the property tests compare against.

use std::io::{BufRead, BufWriter, Read, Write};

use dagscope_faults::failpoint;

use crate::intern::Interner;
use crate::quarantine::{Quarantine, QuarantinedRow, ReadPolicy};
use crate::scan::{self, LineSource};
use crate::schema::{InstanceRecord, Status, TaskRecord};
use crate::TraceError;

pub(crate) const TASK_FIELDS: usize = 9;
pub(crate) const INSTANCE_FIELDS: usize = 14;

/// Buffer capacity for the default streaming readers — large enough that
/// the SWAR scanner spends its time in line parsing, not `read` calls.
const DEFAULT_READ_BUF: usize = 1 << 20;

/// Chunk size for the default parallel readers: large enough to amortize
/// thread dispatch, small enough to load-balance a multi-GB trace file.
const DEFAULT_CHUNK_BYTES: usize = 4 << 20;

/// The message `BufRead::lines` produces for invalid UTF-8; the parallel
/// and streaming paths emit the same text so errors compare equal across
/// paths.
pub(crate) const UTF8_ERR: &str = "stream did not contain valid UTF-8";

fn parse_num<T: std::str::FromStr + Default>(
    s: &str,
    line: usize,
    column: &'static str,
) -> Result<T, TraceError> {
    if s.is_empty() {
        return Ok(T::default());
    }
    s.parse::<T>().map_err(|_| TraceError::BadField {
        line,
        column,
        value: s.to_string(),
    })
}

/// Split a row into exactly `N` comma-separated fields without allocating.
fn split_fields<const N: usize>(line_no: usize, line: &str) -> Result<[&str; N], TraceError> {
    let mut fields = [""; N];
    let mut it = line.split(',');
    for (i, slot) in fields.iter_mut().enumerate() {
        match it.next() {
            Some(f) => *slot = f,
            None => {
                return Err(TraceError::FieldCount {
                    line: line_no,
                    expected: N,
                    found: i,
                })
            }
        }
    }
    if it.next().is_some() {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: N,
            found: line.split(',').count(),
        });
    }
    Ok(fields)
}

/// One `batch_task.csv` row decoded against borrowed field slices — the
/// allocation-free form the columnar streaming reader consumes. Field and
/// error-precedence semantics are exactly those of
/// [`parse_task_line_interned`], which is built on top of this.
#[derive(Debug, Clone, Copy)]
pub struct TaskParts<'a> {
    /// Dependency-encoding task name.
    pub task_name: &'a str,
    /// Instance count.
    pub instance_num: u32,
    /// Owning job identifier.
    pub job_name: &'a str,
    /// Task type code (not yet interned).
    pub task_type: &'a str,
    /// Final status.
    pub status: Status,
    /// Start timestamp.
    pub start_time: i64,
    /// End timestamp.
    pub end_time: i64,
    /// Requested CPU.
    pub plan_cpu: f64,
    /// Requested memory.
    pub plan_mem: f64,
}

impl TaskParts<'_> {
    /// Materialize into an owned record, interning the low-cardinality
    /// columns through `interner`.
    pub fn to_record(&self, interner: &mut Interner) -> TaskRecord {
        TaskRecord {
            task_name: self.task_name.to_string(),
            instance_num: self.instance_num,
            job_name: interner.intern(self.job_name),
            task_type: interner.intern(self.task_type),
            status: self.status,
            start_time: self.start_time,
            end_time: self.end_time,
            plan_cpu: self.plan_cpu,
            plan_mem: self.plan_mem,
        }
    }
}

/// Scalar-oracle fallback for raw byte rows the SWAR fast path declines
/// ([`crate::scan::parse_task_parts_bytes`]): exact historical semantics,
/// including the UTF-8 error taking precedence over any parse error.
pub(crate) fn task_parts_fallback(line_no: usize, raw: &[u8]) -> Result<TaskParts<'_>, TraceError> {
    match std::str::from_utf8(raw) {
        Err(_) => Err(TraceError::Io(UTF8_ERR.to_string())),
        Ok(text) => parse_task_parts(line_no, text),
    }
}

/// Scalar-oracle fallback for raw byte instance rows (see
/// [`task_parts_fallback`]).
pub(crate) fn instance_parts_fallback(
    line_no: usize,
    raw: &[u8],
) -> Result<InstanceParts<'_>, TraceError> {
    match std::str::from_utf8(raw) {
        Err(_) => Err(TraceError::Io(UTF8_ERR.to_string())),
        Ok(text) => parse_instance_parts(line_no, text),
    }
}

/// Decode one `batch_task.csv` row into borrowed parts.
pub fn parse_task_parts(line_no: usize, line: &str) -> Result<TaskParts<'_>, TraceError> {
    let f: [&str; TASK_FIELDS] = split_fields(line_no, line)?;
    Ok(TaskParts {
        task_name: f[0],
        instance_num: parse_num(f[1], line_no, "instance_num")?,
        job_name: f[2],
        task_type: f[3],
        status: Status::parse(f[4]),
        start_time: parse_num(f[5], line_no, "start_time")?,
        end_time: parse_num(f[6], line_no, "end_time")?,
        plan_cpu: parse_num(f[7], line_no, "plan_cpu")?,
        plan_mem: parse_num(f[8], line_no, "plan_mem")?,
    })
}

/// Decode one `batch_task.csv` row, interning `job_name` and `task_type`
/// through `interner`.
pub fn parse_task_line_interned(
    line_no: usize,
    line: &str,
    interner: &mut Interner,
) -> Result<TaskRecord, TraceError> {
    parse_task_parts(line_no, line).map(|p| p.to_record(interner))
}

/// Decode one `batch_task.csv` row.
pub fn parse_task_line(line_no: usize, line: &str) -> Result<TaskRecord, TraceError> {
    parse_task_line_interned(line_no, line, &mut Interner::new())
}

/// One `batch_instance.csv` row decoded against borrowed field slices —
/// the allocation-free twin of [`TaskParts`]. Field and error-precedence
/// semantics are exactly those of [`parse_instance_line_interned`], which
/// is built on top of this.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct InstanceParts<'a> {
    pub instance_name: &'a str,
    pub task_name: &'a str,
    pub job_name: &'a str,
    pub task_type: &'a str,
    pub status: Status,
    pub start_time: i64,
    pub end_time: i64,
    pub machine_id: &'a str,
    pub seq_no: u32,
    pub total_seq_no: u32,
    pub cpu_avg: f64,
    pub cpu_max: f64,
    pub mem_avg: f64,
    pub mem_max: f64,
}

impl InstanceParts<'_> {
    /// Materialize into an owned record, interning the low-cardinality
    /// columns through `interner`.
    pub fn to_record(&self, interner: &mut Interner) -> InstanceRecord {
        InstanceRecord {
            instance_name: self.instance_name.to_string(),
            task_name: self.task_name.to_string(),
            job_name: self.job_name.to_string(),
            task_type: interner.intern(self.task_type),
            status: self.status,
            start_time: self.start_time,
            end_time: self.end_time,
            machine_id: interner.intern(self.machine_id),
            seq_no: self.seq_no,
            total_seq_no: self.total_seq_no,
            cpu_avg: self.cpu_avg,
            cpu_max: self.cpu_max,
            mem_avg: self.mem_avg,
            mem_max: self.mem_max,
        }
    }
}

/// Decode one `batch_instance.csv` row into borrowed parts. Numeric
/// fields decode in column order, so the first bad field reported matches
/// the historical reader exactly.
pub fn parse_instance_parts(line_no: usize, line: &str) -> Result<InstanceParts<'_>, TraceError> {
    let f: [&str; INSTANCE_FIELDS] = split_fields(line_no, line)?;
    Ok(InstanceParts {
        instance_name: f[0],
        task_name: f[1],
        job_name: f[2],
        task_type: f[3],
        status: Status::parse(f[4]),
        start_time: parse_num(f[5], line_no, "start_time")?,
        end_time: parse_num(f[6], line_no, "end_time")?,
        machine_id: f[7],
        seq_no: parse_num(f[8], line_no, "seq_no")?,
        total_seq_no: parse_num(f[9], line_no, "total_seq_no")?,
        cpu_avg: parse_num(f[10], line_no, "cpu_avg")?,
        cpu_max: parse_num(f[11], line_no, "cpu_max")?,
        mem_avg: parse_num(f[12], line_no, "mem_avg")?,
        mem_max: parse_num(f[13], line_no, "mem_max")?,
    })
}

/// Decode one `batch_instance.csv` row, interning `task_type` and
/// `machine_id` through `interner`.
pub fn parse_instance_line_interned(
    line_no: usize,
    line: &str,
    interner: &mut Interner,
) -> Result<InstanceRecord, TraceError> {
    parse_instance_parts(line_no, line).map(|p| p.to_record(interner))
}

/// Decode one `batch_instance.csv` row.
pub fn parse_instance_line(line_no: usize, line: &str) -> Result<InstanceRecord, TraceError> {
    parse_instance_line_interned(line_no, line, &mut Interner::new())
}

/// A raw byte-line reader tracking 1-based line numbers and byte offsets,
/// replicating `BufRead::lines` line-splitting exactly: a final `\n` does
/// not open an empty trailing line, `\r\n` endings are trimmed, and a bare
/// trailing `\r` on an unterminated last line is kept.
pub(crate) struct RawLines<R> {
    reader: R,
    offset: u64,
}

impl<R: BufRead> RawLines<R> {
    /// Start reading lines at byte offset 0 of `reader`.
    pub(crate) fn new(reader: R) -> RawLines<R> {
        RawLines { reader, offset: 0 }
    }

    /// Next raw line as `(byte offset of its first byte, bytes)`, newline
    /// terminator stripped. `None` at end of stream.
    fn next_line(&mut self) -> Result<Option<(u64, Vec<u8>)>, std::io::Error> {
        let mut buf = Vec::new();
        Ok(self
            .next_line_into(&mut buf)?
            .map(|(start, _)| (start, buf)))
    }

    /// Allocation-reusing form of [`RawLines::next_line`]: the stripped line
    /// lands in `buf`, the return value is `(byte offset of its first byte,
    /// bytes consumed from the stream including the terminator)`.
    pub(crate) fn next_line_into(
        &mut self,
        buf: &mut Vec<u8>,
    ) -> Result<Option<(u64, u64)>, std::io::Error> {
        // One hit per line, in document order, for every sequential and
        // streamed reader; `K>1*return` makes line K+1 fail its read.
        failpoint!("trace.read.line_io", |_arg: Option<String>| Err(
            std::io::Error::other("injected read failure")
        ));
        buf.clear();
        let start = self.offset;
        let n = self.reader.read_until(b'\n', buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.offset += n as u64;
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        Ok(Some((start, n as u64)))
    }
}

/// Decide a decoded row's fate: the quarantine policy additionally rejects
/// rows whose timestamps are impossible (end before start, both present),
/// which a strict read accepts exactly as it always has.
pub(crate) fn classify_row<T>(
    policy: &ReadPolicy,
    line_no: usize,
    row: T,
    times: impl Fn(&T) -> (i64, i64),
) -> Result<T, TraceError> {
    let (start, end) = times(&row);
    if policy.is_quarantine() && start > 0 && end > 0 && end < start {
        return Err(TraceError::BadTimestamps {
            line: line_no,
            start,
            end,
        });
    }
    Ok(row)
}

/// Chaos helper for `trace.read.torn_line`: when the armed `return`
/// action fires, the current raw line is truncated to this many bytes
/// (half a row — enough to break parsing, not enough to vanish).
#[inline]
fn injected_torn_len(_len: usize) -> Option<usize> {
    failpoint!("trace.read.torn_line", |_arg: Option<String>| Some(
        _len / 2
    ));
    None
}

/// Chaos helper for `trace.read.chunk_io`: an injected mid-chunk IO
/// error for the parallel readers. Chunks decode across threads in
/// nondeterministic order, so the fault targets a chunk by its *byte
/// offset* (the action arg) rather than by hit count; an argless action
/// fails every chunk. Offsets are stable for fixed `(data, chunk_bytes)`
/// — see [`dagscope_par::chunk_bounds`] — keeping injected runs
/// deterministic.
#[inline]
fn injected_chunk_io(_chunk_start: usize) -> Option<TraceError> {
    failpoint!("trace.read.chunk_io", |arg: Option<String>| {
        match arg.and_then(|a| a.parse::<usize>().ok()) {
            Some(target) if target != _chunk_start => None,
            _ => Some(TraceError::Io(format!(
                "injected mid-chunk IO error at byte {_chunk_start}"
            ))),
        }
    });
    None
}

/// Policy-aware row reader over any [`LineSource`] — the SWAR hot loop
/// every sequential entry point funnels through. Observationally
/// identical to the historical scalar reader ([`read_rows_scalar`], kept
/// below as the oracle): same records, same quarantine report, same first
/// error, same line numbers and byte offsets.
fn read_rows_source<S: LineSource, T>(
    mut lines: S,
    policy: &ReadPolicy,
    parse: impl Fn(usize, &[u8], &mut Interner) -> Result<T, TraceError>,
    times: impl Fn(&T) -> (i64, i64) + Copy,
) -> Result<(Vec<T>, Quarantine), TraceError> {
    let mut interner = Interner::new();
    let mut out = Vec::new();
    let mut q = Quarantine::default();
    while let Some((offset, _consumed, mut span)) = lines.next_span()? {
        // Chaos sites, one hit per line in document order: a short read
        // ends the stream early (downstream sees a truncated but
        // well-formed trace); a torn read delivers half a row, which
        // must fail parsing and take the policy's bad-row path.
        failpoint!("trace.read.short_read", |_arg: Option<String>| Ok((out, q)));
        if let Some(keep) = injected_torn_len(span.len()) {
            span.end = span.start + keep;
        }
        q.lines_total += 1;
        let line_no = q.lines_total;
        if span.is_empty() {
            continue;
        }
        q.rows_total += 1;
        let raw = &lines.view()[span];
        let verdict = parse(line_no, raw, &mut interner)
            .and_then(|row| classify_row(policy, line_no, row, times));
        match verdict {
            Ok(row) => {
                q.rows_good += 1;
                out.push(row);
            }
            Err(error) => {
                if !policy.is_quarantine() || q.rows.len() >= policy.max_bad() {
                    return Err(error);
                }
                q.rows.push(QuarantinedRow {
                    line: line_no,
                    byte_offset: offset,
                    error,
                    excerpt: crate::quarantine::excerpt_of(raw),
                    job_name: crate::quarantine::job_name_of(raw),
                });
            }
        }
    }
    Ok((out, q))
}

/// The historical scalar row reader, retained verbatim as the bitwise
/// oracle the SWAR readers are differential-tested against
/// (`tests/scan_equiv.rs`) and runnable end-to-end via `--parser scalar`
/// in the CLI.
fn read_rows_scalar<R: BufRead, T>(
    reader: R,
    policy: &ReadPolicy,
    parse: impl Fn(usize, &str, &mut Interner) -> Result<T, TraceError>,
    times: impl Fn(&T) -> (i64, i64) + Copy,
) -> Result<(Vec<T>, Quarantine), TraceError> {
    let mut interner = Interner::new();
    let mut lines = RawLines::new(reader);
    let mut out = Vec::new();
    let mut q = Quarantine::default();
    while let Some((offset, mut raw)) = lines.next_line()? {
        failpoint!("trace.read.short_read", |_arg: Option<String>| Ok((out, q)));
        if let Some(keep) = injected_torn_len(raw.len()) {
            raw.truncate(keep);
        }
        q.lines_total += 1;
        let line_no = q.lines_total;
        if raw.is_empty() {
            continue;
        }
        q.rows_total += 1;
        let verdict = match std::str::from_utf8(&raw) {
            Err(_) => Err(TraceError::Io(UTF8_ERR.to_string())),
            Ok(text) => parse(line_no, text, &mut interner)
                .and_then(|row| classify_row(policy, line_no, row, times)),
        };
        match verdict {
            Ok(row) => {
                q.rows_good += 1;
                out.push(row);
            }
            Err(error) => {
                if !policy.is_quarantine() || q.rows.len() >= policy.max_bad() {
                    return Err(error);
                }
                q.rows.push(QuarantinedRow {
                    line: line_no,
                    byte_offset: offset,
                    error,
                    excerpt: crate::quarantine::excerpt_of(&raw),
                    job_name: crate::quarantine::job_name_of(&raw),
                });
            }
        }
    }
    Ok((out, q))
}

fn parse_task_record_bytes(
    line_no: usize,
    raw: &[u8],
    interner: &mut Interner,
) -> Result<TaskRecord, TraceError> {
    scan::parse_task_parts_bytes(line_no, raw).map(|p| p.to_record(interner))
}

fn parse_instance_record_bytes(
    line_no: usize,
    raw: &[u8],
    interner: &mut Interner,
) -> Result<InstanceRecord, TraceError> {
    scan::parse_instance_parts_bytes(line_no, raw).map(|p| p.to_record(interner))
}

/// Read a whole `batch_task.csv` stream under a [`ReadPolicy`].
pub fn read_tasks_with_policy<R: BufRead>(
    reader: R,
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    read_tasks_buffered_with_policy(reader, DEFAULT_READ_BUF, policy)
}

/// Read a `batch_task.csv` stream with an explicit scan-buffer capacity —
/// exposed so the differential tests can force every refill boundary.
pub fn read_tasks_buffered_with_policy<R: Read>(
    reader: R,
    capacity: usize,
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    read_rows_source(
        scan::BufLines::new(reader, capacity),
        policy,
        parse_task_record_bytes,
        |t: &TaskRecord| (t.start_time, t.end_time),
    )
}

/// Read `batch_task.csv` bytes already in memory — the zero-copy path:
/// lines are parsed in place, nothing is copied except the surviving
/// records themselves.
pub fn read_tasks_slice_with_policy(
    data: &[u8],
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    read_rows_source(
        scan::SliceLines::new(data),
        policy,
        parse_task_record_bytes,
        |t: &TaskRecord| (t.start_time, t.end_time),
    )
}

/// Read a whole `batch_task.csv` stream through the scalar oracle parser
/// — the historical implementation, byte-for-byte. Slow path; exists so
/// the SWAR readers have a live differential baseline.
pub fn read_tasks_scalar_with_policy<R: BufRead>(
    reader: R,
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    read_rows_scalar(
        reader,
        policy,
        parse_task_line_interned,
        |t: &TaskRecord| (t.start_time, t.end_time),
    )
}

/// Read a whole `batch_instance.csv` stream under a [`ReadPolicy`].
pub fn read_instances_with_policy<R: BufRead>(
    reader: R,
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    read_rows_source(
        scan::BufLines::new(reader, DEFAULT_READ_BUF),
        policy,
        parse_instance_record_bytes,
        |i: &InstanceRecord| (i.start_time, i.end_time),
    )
}

/// Read `batch_instance.csv` bytes already in memory (zero-copy).
pub fn read_instances_slice_with_policy(
    data: &[u8],
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    read_rows_source(
        scan::SliceLines::new(data),
        policy,
        parse_instance_record_bytes,
        |i: &InstanceRecord| (i.start_time, i.end_time),
    )
}

/// Read a whole `batch_instance.csv` stream through the scalar oracle
/// parser (see [`read_tasks_scalar_with_policy`]).
pub fn read_instances_scalar_with_policy<R: BufRead>(
    reader: R,
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    read_rows_scalar(
        reader,
        policy,
        parse_instance_line_interned,
        |i: &InstanceRecord| (i.start_time, i.end_time),
    )
}

/// Read a whole `batch_task.csv` stream (strict: first bad row aborts).
pub fn read_tasks<R: BufRead>(reader: R) -> Result<Vec<TaskRecord>, TraceError> {
    read_tasks_with_policy(reader, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Read a whole `batch_instance.csv` stream (strict: first bad row
/// aborts).
pub fn read_instances<R: BufRead>(reader: R) -> Result<Vec<InstanceRecord>, TraceError> {
    read_instances_with_policy(reader, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Per-chunk decode result: rows parsed, quarantined rows in chunk-local
/// coordinates, line/row accounting, and (strict mode) the first error
/// with a chunk-local line number.
struct ChunkOut<T> {
    rows: Vec<T>,
    /// All lines in the chunk, blank ones included.
    lines: usize,
    /// Non-blank rows seen.
    rows_seen: usize,
    /// Rows decoded successfully.
    rows_good: usize,
    /// Chunk length in bytes (re-bases byte offsets during the merge).
    bytes: u64,
    /// Quarantined rows with chunk-local line numbers and offsets,
    /// capped at `max_bad + 1` — once a single chunk overflows the whole
    /// budget the merge is guaranteed to abort at or before its last
    /// collected entry, so parsing further rows would be wasted work.
    quarantined: Vec<QuarantinedRow>,
    /// First error (strict mode only; quarantine mode never sets this).
    err: Option<TraceError>,
}

/// Shift an error's line number from chunk-local to document coordinates.
fn offset_error(err: TraceError, base: usize) -> TraceError {
    match err {
        TraceError::FieldCount {
            line,
            expected,
            found,
        } => TraceError::FieldCount {
            line: line + base,
            expected,
            found,
        },
        TraceError::BadField {
            line,
            column,
            value,
        } => TraceError::BadField {
            line: line + base,
            column,
            value,
        },
        TraceError::BadTimestamps { line, start, end } => TraceError::BadTimestamps {
            line: line + base,
            start,
            end,
        },
        other => other,
    }
}

/// Decode every line of one newline-aligned chunk, mirroring
/// `BufRead::lines` semantics exactly: a final `\n` does not open an empty
/// trailing line, `\r\n` endings are trimmed (a bare trailing `\r` on the
/// last unterminated line is kept), and blank lines are skipped but still
/// numbered.
fn parse_chunk<T>(
    chunk: &[u8],
    policy: &ReadPolicy,
    parse: impl Fn(usize, &[u8], &mut Interner) -> Result<T, TraceError>,
    times: impl Fn(&T) -> (i64, i64) + Copy,
) -> ChunkOut<T> {
    let mut interner = Interner::new();
    let mut out = ChunkOut {
        rows: Vec::new(),
        lines: 0,
        rows_seen: 0,
        rows_good: 0,
        bytes: chunk.len() as u64,
        quarantined: Vec::new(),
        err: None,
    };
    let cap = policy.max_bad().saturating_add(1);
    // The per-line failpoint stays disarmed here: the chunked readers'
    // chaos surface is `trace.read.chunk_io`, as it always was.
    let mut lines = scan::SliceLines::without_line_failpoints(chunk);
    while let Some((line_start, _consumed, span)) = lines
        .next_span()
        .expect("slice line source is infallible with failpoints disarmed")
    {
        out.lines += 1;
        if span.is_empty() {
            continue;
        }
        let raw = &lines.view()[span];
        out.rows_seen += 1;
        let line_no = out.lines;
        let verdict = parse(line_no, raw, &mut interner)
            .and_then(|row| classify_row(policy, line_no, row, times));
        match verdict {
            Ok(row) => {
                out.rows_good += 1;
                out.rows.push(row);
            }
            Err(error) => {
                if policy.is_quarantine() {
                    out.quarantined.push(QuarantinedRow {
                        line: line_no,
                        byte_offset: line_start,
                        error,
                        excerpt: crate::quarantine::excerpt_of(raw),
                        job_name: crate::quarantine::job_name_of(raw),
                    });
                    if out.quarantined.len() >= cap {
                        return out;
                    }
                } else {
                    out.err = Some(error);
                    return out;
                }
            }
        }
    }
    out
}

/// Stitch per-chunk outputs back together in document order, re-basing
/// line numbers and byte offsets onto the whole file and enforcing the
/// policy's bad-row budget globally — the `max_bad + 1`-th quarantined
/// row in document order aborts with exactly the error the sequential
/// reader would report.
fn merge_chunks<T>(
    outs: Vec<ChunkOut<T>>,
    policy: &ReadPolicy,
) -> Result<(Vec<T>, Quarantine), TraceError> {
    let mut rows = Vec::with_capacity(outs.iter().map(|o| o.rows.len()).sum());
    let mut q = Quarantine::default();
    let mut base_lines = 0usize;
    let mut base_bytes = 0u64;
    for out in outs {
        rows.extend(out.rows);
        for mut entry in out.quarantined {
            if q.rows.len() >= policy.max_bad() {
                return Err(offset_error(entry.error, base_lines));
            }
            entry.line += base_lines;
            entry.byte_offset += base_bytes;
            entry.error = offset_error(entry.error, base_lines);
            q.rows.push(entry);
        }
        if let Some(err) = out.err {
            return Err(offset_error(err, base_lines));
        }
        q.rows_good += out.rows_good;
        q.rows_total += out.rows_seen;
        q.lines_total += out.lines;
        base_lines += out.lines;
        base_bytes += out.bytes;
    }
    Ok((rows, q))
}

/// Read `batch_task.csv` bytes with an explicit target chunk size under a
/// [`ReadPolicy`]. Exposed so tests can force chunk boundaries to land
/// mid-row; use [`read_tasks_parallel_with_policy`] for the tuned default.
pub fn read_tasks_chunked_with_policy(
    data: &[u8],
    chunk_bytes: usize,
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    merge_chunks(
        dagscope_par::par_chunk_map(data, chunk_bytes, b'\n', |start, chunk| {
            let mut out = parse_chunk(chunk, policy, parse_task_record_bytes, |t: &TaskRecord| {
                (t.start_time, t.end_time)
            });
            if out.err.is_none() {
                if let Some(e) = injected_chunk_io(start) {
                    out.err = Some(e);
                }
            }
            out
        }),
        policy,
    )
}

/// Read `batch_task.csv` bytes, decoding newline-aligned chunks in
/// parallel under a [`ReadPolicy`]. Produces exactly what
/// [`read_tasks_with_policy`] produces on the same bytes — same records,
/// same quarantine report, same first error past the budget.
pub fn read_tasks_parallel_with_policy(
    data: &[u8],
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    // With one effective worker the chunked path is pure overhead
    // (chunk bookkeeping plus the merge pass) — go straight to the
    // zero-copy slice reader, which produces identical output by contract.
    if dagscope_par::parallelism() == 1 {
        return read_tasks_slice_with_policy(data, policy);
    }
    read_tasks_chunked_with_policy(data, DEFAULT_CHUNK_BYTES, policy)
}

/// Read `batch_task.csv` bytes with an explicit target chunk size
/// (strict).
pub fn read_tasks_chunked(data: &[u8], chunk_bytes: usize) -> Result<Vec<TaskRecord>, TraceError> {
    read_tasks_chunked_with_policy(data, chunk_bytes, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Read `batch_task.csv` bytes, decoding newline-aligned chunks in
/// parallel. Produces exactly what [`read_tasks`] produces on the same
/// bytes — same records, same first error, same line numbers.
pub fn read_tasks_parallel(data: &[u8]) -> Result<Vec<TaskRecord>, TraceError> {
    if dagscope_par::parallelism() == 1 {
        return read_tasks_slice_with_policy(data, &ReadPolicy::Strict).map(|(rows, _)| rows);
    }
    read_tasks_chunked(data, DEFAULT_CHUNK_BYTES)
}

/// Read `batch_instance.csv` bytes with an explicit target chunk size
/// under a [`ReadPolicy`].
pub fn read_instances_chunked_with_policy(
    data: &[u8],
    chunk_bytes: usize,
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    merge_chunks(
        dagscope_par::par_chunk_map(data, chunk_bytes, b'\n', |start, chunk| {
            let mut out = parse_chunk(
                chunk,
                policy,
                parse_instance_record_bytes,
                |i: &InstanceRecord| (i.start_time, i.end_time),
            );
            if out.err.is_none() {
                if let Some(e) = injected_chunk_io(start) {
                    out.err = Some(e);
                }
            }
            out
        }),
        policy,
    )
}

/// Read `batch_instance.csv` bytes, decoding newline-aligned chunks in
/// parallel under a [`ReadPolicy`].
pub fn read_instances_parallel_with_policy(
    data: &[u8],
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    if dagscope_par::parallelism() == 1 {
        return read_instances_slice_with_policy(data, policy);
    }
    read_instances_chunked_with_policy(data, DEFAULT_CHUNK_BYTES, policy)
}

/// Read `batch_instance.csv` bytes with an explicit target chunk size
/// (strict).
pub fn read_instances_chunked(
    data: &[u8],
    chunk_bytes: usize,
) -> Result<Vec<InstanceRecord>, TraceError> {
    read_instances_chunked_with_policy(data, chunk_bytes, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Read `batch_instance.csv` bytes, decoding newline-aligned chunks in
/// parallel. Equivalent to [`read_instances`] on the same bytes.
pub fn read_instances_parallel(data: &[u8]) -> Result<Vec<InstanceRecord>, TraceError> {
    if dagscope_par::parallelism() == 1 {
        return read_instances_slice_with_policy(data, &ReadPolicy::Strict).map(|(rows, _)| rows);
    }
    read_instances_chunked(data, DEFAULT_CHUNK_BYTES)
}

/// Append `v`'s decimal digits to `buf` (itoa-style: digits build in a
/// fixed stack array, one `extend_from_slice` into the row buffer — no
/// `format!` temporary per field).
fn push_u64(buf: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&tmp[i..]);
}

fn push_i64(buf: &mut Vec<u8>, v: i64) {
    if v < 0 {
        buf.push(b'-');
    }
    push_u64(buf, v.unsigned_abs());
}

/// Append a float the way the published trace prints them: integers bare
/// (`100`), fractions with their decimals (`0.5`). Byte-identical to the
/// historical `format!`-based encoder on every value.
fn push_f64(buf: &mut Vec<u8>, v: f64) {
    if v == v.trunc() && v.abs() < 1e15 {
        push_i64(buf, v as i64);
    } else {
        // Rare shape (non-integral beyond the common grid): fall back to
        // the std formatter, writing straight into the row buffer.
        write!(buf, "{v}").expect("writing to a Vec cannot fail");
    }
}

/// Append one encoded task row plus terminating newline to `buf` — the
/// allocation-free writer hot path ([`write_tasks`] and the benches reuse
/// one buffer across all rows).
pub fn push_task_line(buf: &mut Vec<u8>, t: &TaskRecord) {
    buf.extend_from_slice(t.task_name.as_bytes());
    buf.push(b',');
    push_u64(buf, u64::from(t.instance_num));
    buf.push(b',');
    buf.extend_from_slice(t.job_name.as_bytes());
    buf.push(b',');
    buf.extend_from_slice(t.task_type.as_bytes());
    buf.push(b',');
    buf.extend_from_slice(t.status.as_str().as_bytes());
    buf.push(b',');
    push_i64(buf, t.start_time);
    buf.push(b',');
    push_i64(buf, t.end_time);
    buf.push(b',');
    push_f64(buf, t.plan_cpu);
    buf.push(b',');
    push_f64(buf, t.plan_mem);
    buf.push(b'\n');
}

/// Append one encoded instance row plus terminating newline to `buf`.
pub fn push_instance_line(buf: &mut Vec<u8>, i: &InstanceRecord) {
    buf.extend_from_slice(i.instance_name.as_bytes());
    buf.push(b',');
    buf.extend_from_slice(i.task_name.as_bytes());
    buf.push(b',');
    buf.extend_from_slice(i.job_name.as_bytes());
    buf.push(b',');
    buf.extend_from_slice(i.task_type.as_bytes());
    buf.push(b',');
    buf.extend_from_slice(i.status.as_str().as_bytes());
    buf.push(b',');
    push_i64(buf, i.start_time);
    buf.push(b',');
    push_i64(buf, i.end_time);
    buf.push(b',');
    buf.extend_from_slice(i.machine_id.as_bytes());
    buf.push(b',');
    push_u64(buf, u64::from(i.seq_no));
    buf.push(b',');
    push_u64(buf, u64::from(i.total_seq_no));
    buf.push(b',');
    push_f64(buf, i.cpu_avg);
    buf.push(b',');
    push_f64(buf, i.cpu_max);
    buf.push(b',');
    push_f64(buf, i.mem_avg);
    buf.push(b',');
    push_f64(buf, i.mem_max);
    buf.push(b'\n');
}

/// Encode one task row (no newline). Convenience wrapper over
/// [`push_task_line`]; per-call allocation, so not the writer hot path.
pub fn format_task_line(t: &TaskRecord) -> String {
    let mut buf = Vec::with_capacity(96);
    push_task_line(&mut buf, t);
    buf.pop();
    String::from_utf8(buf).expect("encoded rows are UTF-8: every field came from a str")
}

/// Encode one instance row (no newline).
pub fn format_instance_line(i: &InstanceRecord) -> String {
    let mut buf = Vec::with_capacity(128);
    push_instance_line(&mut buf, i);
    buf.pop();
    String::from_utf8(buf).expect("encoded rows are UTF-8: every field came from a str")
}

/// Write task rows as `batch_task.csv`.
pub fn write_tasks<W: Write>(writer: W, tasks: &[TaskRecord]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    let mut row = Vec::with_capacity(128);
    for t in tasks {
        row.clear();
        push_task_line(&mut row, t);
        w.write_all(&row)?;
    }
    w.flush()?;
    Ok(())
}

/// Write instance rows as `batch_instance.csv`.
pub fn write_instances<W: Write>(
    writer: W,
    instances: &[InstanceRecord],
) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    let mut row = Vec::with_capacity(160);
    for i in instances {
        row.clear();
        push_instance_line(&mut row, i);
        w.write_all(&row)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TASK_LINE: &str = "R2_1,5,j_1001388,1,Terminated,86400,86520,100,0.5";

    #[test]
    fn task_line_round_trip() {
        let t = parse_task_line(1, TASK_LINE).unwrap();
        assert_eq!(t.task_name, "R2_1");
        assert_eq!(t.instance_num, 5);
        assert_eq!(t.status, Status::Terminated);
        assert_eq!(t.plan_cpu, 100.0);
        assert_eq!(format_task_line(&t), TASK_LINE);
    }

    #[test]
    fn empty_numeric_fields_default() {
        let t = parse_task_line(1, "task_abc,,j_1,1,Running,,,,").unwrap();
        assert_eq!(t.instance_num, 0);
        assert_eq!(t.start_time, 0);
        assert_eq!(t.plan_cpu, 0.0);
    }

    #[test]
    fn wrong_field_count_reported() {
        let err = parse_task_line(7, "a,b,c").unwrap_err();
        assert_eq!(
            err,
            TraceError::FieldCount {
                line: 7,
                expected: 9,
                found: 3
            }
        );
    }

    #[test]
    fn bad_field_reported_with_column() {
        let err = parse_task_line(2, "M1,x,j_1,1,Terminated,1,2,3,4").unwrap_err();
        match err {
            TraceError::BadField {
                line: 2,
                column: "instance_num",
                value,
            } => {
                assert_eq!(value, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_line_round_trip() {
        let line = "inst_1,M1,j_9,1,Terminated,100,200,m_1997,1,1,50.5,80,0.1,0.2";
        let i = parse_instance_line(1, line).unwrap();
        assert_eq!(i.machine_id, "m_1997");
        assert_eq!(i.cpu_avg, 50.5);
        assert_eq!(format_instance_line(&i), line);
    }

    #[test]
    fn stream_read_write_round_trip() {
        let t1 = parse_task_line(1, TASK_LINE).unwrap();
        let t2 = parse_task_line(1, "M1,2,j_1001388,1,Terminated,86000,86400,50,0.25").unwrap();
        let mut buf = Vec::new();
        write_tasks(&mut buf, &[t1.clone(), t2.clone()]).unwrap();
        let back = read_tasks(&buf[..]).unwrap();
        assert_eq!(back, vec![t1, t2]);
    }

    #[test]
    fn blank_lines_skipped() {
        let data = format!("{TASK_LINE}\n\n{TASK_LINE}\n");
        let rows = read_tasks(data.as_bytes()).unwrap();
        assert_eq!(rows.len(), 2);
    }

    const TASK_LINE2: &str = "M1,2,j_1001389,2,Terminated,86000,86400,50,0.25";

    /// Messy-but-valid document: CRLF ending, blank lines, and a final row
    /// with no trailing newline.
    fn messy_doc() -> String {
        format!("{TASK_LINE}\r\n\n{TASK_LINE2}\n\r\n{TASK_LINE}")
    }

    #[test]
    fn parallel_matches_sequential_at_every_chunk_size() {
        let data = messy_doc();
        let seq = read_tasks(data.as_bytes()).unwrap();
        assert_eq!(seq.len(), 3);
        // Chunk sizes from 1 byte (every row its own chunk) past the whole
        // document (single chunk) all agree with the sequential oracle.
        for chunk_bytes in 1..data.len() + 2 {
            let par = read_tasks_chunked(data.as_bytes(), chunk_bytes).unwrap();
            assert_eq!(par, seq, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_empty_input() {
        assert_eq!(read_tasks_parallel(b"").unwrap(), vec![]);
        assert_eq!(read_tasks_parallel(b"\n\n\n").unwrap(), vec![]);
    }

    #[test]
    fn parallel_error_line_numbers_match_sequential() {
        // Bad row on (1-based) line 5; blank lines still count.
        let data = format!("{TASK_LINE}\n\n{TASK_LINE2}\n\na,b,c\n{TASK_LINE}\n");
        let want = read_tasks(data.as_bytes()).unwrap_err();
        assert_eq!(
            want,
            TraceError::FieldCount {
                line: 5,
                expected: 9,
                found: 3
            }
        );
        for chunk_bytes in 1..data.len() + 2 {
            let got = read_tasks_chunked(data.as_bytes(), chunk_bytes).unwrap_err();
            assert_eq!(got, want, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_reports_first_error_only() {
        // Two bad rows: the earlier one must win regardless of chunking.
        let data = format!("{TASK_LINE}\nM1,x,j_1,1,Terminated,1,2,3,4\nbad\n");
        let want = read_tasks(data.as_bytes()).unwrap_err();
        for chunk_bytes in 1..data.len() + 2 {
            let got = read_tasks_chunked(data.as_bytes(), chunk_bytes).unwrap_err();
            assert_eq!(got, want, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_invalid_utf8_matches_sequential() {
        let mut data = format!("{TASK_LINE}\n").into_bytes();
        data.extend_from_slice(b"\xff\xfe,bad,utf8\n");
        let want = read_tasks(&data[..]).unwrap_err();
        for chunk_bytes in [1, 7, 64, data.len() + 1] {
            let got = read_tasks_chunked(&data, chunk_bytes).unwrap_err();
            assert_eq!(got, want, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_instances_match_sequential() {
        let line = "inst_1,M1,j_9,1,Terminated,100,200,m_1997,1,1,50.5,80,0.1,0.2";
        let data = format!("{line}\n{line}\n\n{line}");
        let seq = read_instances(data.as_bytes()).unwrap();
        for chunk_bytes in 1..data.len() + 2 {
            let par = read_instances_chunked(data.as_bytes(), chunk_bytes).unwrap();
            assert_eq!(par, seq, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn interning_dedups_within_reader() {
        let line = "inst_1,M1,j_9,1,Terminated,100,200,m_7,1,1,1,1,1,1";
        let data = format!("{line}\n{line}\n");
        let rows = read_instances(data.as_bytes()).unwrap();
        assert_eq!(rows[0].machine_id, rows[1].machine_id);
        assert_eq!(rows[0].machine_id, "m_7");
    }
}
