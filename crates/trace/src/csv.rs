//! CSV codecs for the v2018 `batch_task` / `batch_instance` files.
//!
//! The published trace ships headerless comma-separated files; fields never
//! contain commas or quotes, so a split-based codec is both correct for the
//! real data and fast. Empty numeric fields (common in the real trace for
//! missing timestamps/resources) decode as `0`.
//!
//! Two ingestion paths are provided:
//!
//! * the **sequential** readers [`read_tasks`] / [`read_instances`], which
//!   stream from any [`BufRead`], and
//! * the **parallel** readers [`read_tasks_parallel`] /
//!   [`read_instances_parallel`], which split an in-memory byte buffer into
//!   large newline-aligned chunks and decode them across threads via
//!   [`dagscope_par::par_chunk_map`].
//!
//! The two paths produce identical records and identical errors — including
//! exact 1-based line numbers — on every input; the sequential readers stay
//! as the oracle the property tests compare against.

use std::io::{BufRead, BufWriter, Write};

use dagscope_faults::failpoint;

use crate::intern::Interner;
use crate::quarantine::{Quarantine, QuarantinedRow, ReadPolicy};
use crate::schema::{InstanceRecord, Status, TaskRecord};
use crate::TraceError;

const TASK_FIELDS: usize = 9;
const INSTANCE_FIELDS: usize = 14;

/// Chunk size for the default parallel readers: large enough to amortize
/// thread dispatch, small enough to load-balance a multi-GB trace file.
const DEFAULT_CHUNK_BYTES: usize = 4 << 20;

/// The message `BufRead::lines` produces for invalid UTF-8; the parallel
/// and streaming paths emit the same text so errors compare equal across
/// paths.
pub(crate) const UTF8_ERR: &str = "stream did not contain valid UTF-8";

fn parse_num<T: std::str::FromStr + Default>(
    s: &str,
    line: usize,
    column: &'static str,
) -> Result<T, TraceError> {
    if s.is_empty() {
        return Ok(T::default());
    }
    s.parse::<T>().map_err(|_| TraceError::BadField {
        line,
        column,
        value: s.to_string(),
    })
}

/// Split a row into exactly `N` comma-separated fields without allocating.
fn split_fields<const N: usize>(line_no: usize, line: &str) -> Result<[&str; N], TraceError> {
    let mut fields = [""; N];
    let mut it = line.split(',');
    for (i, slot) in fields.iter_mut().enumerate() {
        match it.next() {
            Some(f) => *slot = f,
            None => {
                return Err(TraceError::FieldCount {
                    line: line_no,
                    expected: N,
                    found: i,
                })
            }
        }
    }
    if it.next().is_some() {
        return Err(TraceError::FieldCount {
            line: line_no,
            expected: N,
            found: line.split(',').count(),
        });
    }
    Ok(fields)
}

/// One `batch_task.csv` row decoded against borrowed field slices — the
/// allocation-free form the columnar streaming reader consumes. Field and
/// error-precedence semantics are exactly those of
/// [`parse_task_line_interned`], which is built on top of this.
#[derive(Debug, Clone, Copy)]
pub struct TaskParts<'a> {
    /// Dependency-encoding task name.
    pub task_name: &'a str,
    /// Instance count.
    pub instance_num: u32,
    /// Owning job identifier.
    pub job_name: &'a str,
    /// Task type code (not yet interned).
    pub task_type: &'a str,
    /// Final status.
    pub status: Status,
    /// Start timestamp.
    pub start_time: i64,
    /// End timestamp.
    pub end_time: i64,
    /// Requested CPU.
    pub plan_cpu: f64,
    /// Requested memory.
    pub plan_mem: f64,
}

impl TaskParts<'_> {
    /// Materialize into an owned record, interning the low-cardinality
    /// columns through `interner`.
    pub fn to_record(&self, interner: &mut Interner) -> TaskRecord {
        TaskRecord {
            task_name: self.task_name.to_string(),
            instance_num: self.instance_num,
            job_name: interner.intern(self.job_name),
            task_type: interner.intern(self.task_type),
            status: self.status,
            start_time: self.start_time,
            end_time: self.end_time,
            plan_cpu: self.plan_cpu,
            plan_mem: self.plan_mem,
        }
    }
}

/// Decode one `batch_task.csv` row into borrowed parts.
pub fn parse_task_parts(line_no: usize, line: &str) -> Result<TaskParts<'_>, TraceError> {
    let f: [&str; TASK_FIELDS] = split_fields(line_no, line)?;
    Ok(TaskParts {
        task_name: f[0],
        instance_num: parse_num(f[1], line_no, "instance_num")?,
        job_name: f[2],
        task_type: f[3],
        status: Status::parse(f[4]),
        start_time: parse_num(f[5], line_no, "start_time")?,
        end_time: parse_num(f[6], line_no, "end_time")?,
        plan_cpu: parse_num(f[7], line_no, "plan_cpu")?,
        plan_mem: parse_num(f[8], line_no, "plan_mem")?,
    })
}

/// Decode one `batch_task.csv` row, interning `job_name` and `task_type`
/// through `interner`.
pub fn parse_task_line_interned(
    line_no: usize,
    line: &str,
    interner: &mut Interner,
) -> Result<TaskRecord, TraceError> {
    parse_task_parts(line_no, line).map(|p| p.to_record(interner))
}

/// Decode one `batch_task.csv` row.
pub fn parse_task_line(line_no: usize, line: &str) -> Result<TaskRecord, TraceError> {
    parse_task_line_interned(line_no, line, &mut Interner::new())
}

/// Decode one `batch_instance.csv` row, interning `task_type` and
/// `machine_id` through `interner`.
pub fn parse_instance_line_interned(
    line_no: usize,
    line: &str,
    interner: &mut Interner,
) -> Result<InstanceRecord, TraceError> {
    let f: [&str; INSTANCE_FIELDS] = split_fields(line_no, line)?;
    Ok(InstanceRecord {
        instance_name: f[0].to_string(),
        task_name: f[1].to_string(),
        job_name: f[2].to_string(),
        task_type: interner.intern(f[3]),
        status: Status::parse(f[4]),
        start_time: parse_num(f[5], line_no, "start_time")?,
        end_time: parse_num(f[6], line_no, "end_time")?,
        machine_id: interner.intern(f[7]),
        seq_no: parse_num(f[8], line_no, "seq_no")?,
        total_seq_no: parse_num(f[9], line_no, "total_seq_no")?,
        cpu_avg: parse_num(f[10], line_no, "cpu_avg")?,
        cpu_max: parse_num(f[11], line_no, "cpu_max")?,
        mem_avg: parse_num(f[12], line_no, "mem_avg")?,
        mem_max: parse_num(f[13], line_no, "mem_max")?,
    })
}

/// Decode one `batch_instance.csv` row.
pub fn parse_instance_line(line_no: usize, line: &str) -> Result<InstanceRecord, TraceError> {
    parse_instance_line_interned(line_no, line, &mut Interner::new())
}

/// A raw byte-line reader tracking 1-based line numbers and byte offsets,
/// replicating `BufRead::lines` line-splitting exactly: a final `\n` does
/// not open an empty trailing line, `\r\n` endings are trimmed, and a bare
/// trailing `\r` on an unterminated last line is kept.
pub(crate) struct RawLines<R> {
    reader: R,
    offset: u64,
}

impl<R: BufRead> RawLines<R> {
    /// Start reading lines at byte offset 0 of `reader`.
    pub(crate) fn new(reader: R) -> RawLines<R> {
        RawLines { reader, offset: 0 }
    }

    /// Next raw line as `(byte offset of its first byte, bytes)`, newline
    /// terminator stripped. `None` at end of stream.
    fn next_line(&mut self) -> Result<Option<(u64, Vec<u8>)>, std::io::Error> {
        let mut buf = Vec::new();
        Ok(self
            .next_line_into(&mut buf)?
            .map(|(start, _)| (start, buf)))
    }

    /// Allocation-reusing form of [`RawLines::next_line`]: the stripped line
    /// lands in `buf`, the return value is `(byte offset of its first byte,
    /// bytes consumed from the stream including the terminator)`.
    pub(crate) fn next_line_into(
        &mut self,
        buf: &mut Vec<u8>,
    ) -> Result<Option<(u64, u64)>, std::io::Error> {
        // One hit per line, in document order, for every sequential and
        // streamed reader; `K>1*return` makes line K+1 fail its read.
        failpoint!("trace.read.line_io", |_arg: Option<String>| Err(
            std::io::Error::other("injected read failure")
        ));
        buf.clear();
        let start = self.offset;
        let n = self.reader.read_until(b'\n', buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.offset += n as u64;
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        Ok(Some((start, n as u64)))
    }
}

/// Decide a decoded row's fate: the quarantine policy additionally rejects
/// rows whose timestamps are impossible (end before start, both present),
/// which a strict read accepts exactly as it always has.
pub(crate) fn classify_row<T>(
    policy: &ReadPolicy,
    line_no: usize,
    row: T,
    times: impl Fn(&T) -> (i64, i64),
) -> Result<T, TraceError> {
    let (start, end) = times(&row);
    if policy.is_quarantine() && start > 0 && end > 0 && end < start {
        return Err(TraceError::BadTimestamps {
            line: line_no,
            start,
            end,
        });
    }
    Ok(row)
}

/// Chaos helper for `trace.read.torn_line`: when the armed `return`
/// action fires, the current raw line is truncated to this many bytes
/// (half a row — enough to break parsing, not enough to vanish).
#[inline]
fn injected_torn_len(_len: usize) -> Option<usize> {
    failpoint!("trace.read.torn_line", |_arg: Option<String>| Some(
        _len / 2
    ));
    None
}

/// Chaos helper for `trace.read.chunk_io`: an injected mid-chunk IO
/// error for the parallel readers. Chunks decode across threads in
/// nondeterministic order, so the fault targets a chunk by its *byte
/// offset* (the action arg) rather than by hit count; an argless action
/// fails every chunk. Offsets are stable for fixed `(data, chunk_bytes)`
/// — see [`dagscope_par::chunk_bounds`] — keeping injected runs
/// deterministic.
#[inline]
fn injected_chunk_io(_chunk_start: usize) -> Option<TraceError> {
    failpoint!("trace.read.chunk_io", |arg: Option<String>| {
        match arg.and_then(|a| a.parse::<usize>().ok()) {
            Some(target) if target != _chunk_start => None,
            _ => Some(TraceError::Io(format!(
                "injected mid-chunk IO error at byte {_chunk_start}"
            ))),
        }
    });
    None
}

/// Sequential policy-aware row reader shared by the task and instance
/// entry points. Under [`ReadPolicy::Strict`] this is observationally
/// identical to the historical `BufRead::lines`-based readers — same
/// records, same first error, same line numbers.
fn read_rows_with_policy<R: BufRead, T>(
    reader: R,
    policy: &ReadPolicy,
    parse: impl Fn(usize, &str, &mut Interner) -> Result<T, TraceError>,
    times: impl Fn(&T) -> (i64, i64) + Copy,
) -> Result<(Vec<T>, Quarantine), TraceError> {
    let mut interner = Interner::new();
    let mut lines = RawLines::new(reader);
    let mut out = Vec::new();
    let mut q = Quarantine::default();
    while let Some((offset, mut raw)) = lines.next_line()? {
        // Chaos sites, one hit per line in document order: a short read
        // ends the stream early (downstream sees a truncated but
        // well-formed trace); a torn read delivers half a row, which
        // must fail parsing and take the policy's bad-row path.
        failpoint!("trace.read.short_read", |_arg: Option<String>| Ok((out, q)));
        if let Some(keep) = injected_torn_len(raw.len()) {
            raw.truncate(keep);
        }
        q.lines_total += 1;
        let line_no = q.lines_total;
        if raw.is_empty() {
            continue;
        }
        q.rows_total += 1;
        let verdict = match std::str::from_utf8(&raw) {
            Err(_) => Err(TraceError::Io(UTF8_ERR.to_string())),
            Ok(text) => parse(line_no, text, &mut interner)
                .and_then(|row| classify_row(policy, line_no, row, times)),
        };
        match verdict {
            Ok(row) => {
                q.rows_good += 1;
                out.push(row);
            }
            Err(error) => {
                if !policy.is_quarantine() || q.rows.len() >= policy.max_bad() {
                    return Err(error);
                }
                q.rows.push(QuarantinedRow {
                    line: line_no,
                    byte_offset: offset,
                    error,
                    excerpt: crate::quarantine::excerpt_of(&raw),
                    job_name: crate::quarantine::job_name_of(&raw),
                });
            }
        }
    }
    Ok((out, q))
}

/// Read a whole `batch_task.csv` stream under a [`ReadPolicy`].
pub fn read_tasks_with_policy<R: BufRead>(
    reader: R,
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    read_rows_with_policy(
        reader,
        policy,
        parse_task_line_interned,
        |t: &TaskRecord| (t.start_time, t.end_time),
    )
}

/// Read a whole `batch_instance.csv` stream under a [`ReadPolicy`].
pub fn read_instances_with_policy<R: BufRead>(
    reader: R,
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    read_rows_with_policy(
        reader,
        policy,
        parse_instance_line_interned,
        |i: &InstanceRecord| (i.start_time, i.end_time),
    )
}

/// Read a whole `batch_task.csv` stream (strict: first bad row aborts).
pub fn read_tasks<R: BufRead>(reader: R) -> Result<Vec<TaskRecord>, TraceError> {
    read_tasks_with_policy(reader, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Read a whole `batch_instance.csv` stream (strict: first bad row
/// aborts).
pub fn read_instances<R: BufRead>(reader: R) -> Result<Vec<InstanceRecord>, TraceError> {
    read_instances_with_policy(reader, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Per-chunk decode result: rows parsed, quarantined rows in chunk-local
/// coordinates, line/row accounting, and (strict mode) the first error
/// with a chunk-local line number.
struct ChunkOut<T> {
    rows: Vec<T>,
    /// All lines in the chunk, blank ones included.
    lines: usize,
    /// Non-blank rows seen.
    rows_seen: usize,
    /// Rows decoded successfully.
    rows_good: usize,
    /// Chunk length in bytes (re-bases byte offsets during the merge).
    bytes: u64,
    /// Quarantined rows with chunk-local line numbers and offsets,
    /// capped at `max_bad + 1` — once a single chunk overflows the whole
    /// budget the merge is guaranteed to abort at or before its last
    /// collected entry, so parsing further rows would be wasted work.
    quarantined: Vec<QuarantinedRow>,
    /// First error (strict mode only; quarantine mode never sets this).
    err: Option<TraceError>,
}

/// Shift an error's line number from chunk-local to document coordinates.
fn offset_error(err: TraceError, base: usize) -> TraceError {
    match err {
        TraceError::FieldCount {
            line,
            expected,
            found,
        } => TraceError::FieldCount {
            line: line + base,
            expected,
            found,
        },
        TraceError::BadField {
            line,
            column,
            value,
        } => TraceError::BadField {
            line: line + base,
            column,
            value,
        },
        TraceError::BadTimestamps { line, start, end } => TraceError::BadTimestamps {
            line: line + base,
            start,
            end,
        },
        other => other,
    }
}

/// Decode every line of one newline-aligned chunk, mirroring
/// `BufRead::lines` semantics exactly: a final `\n` does not open an empty
/// trailing line, `\r\n` endings are trimmed (a bare trailing `\r` on the
/// last unterminated line is kept), and blank lines are skipped but still
/// numbered.
fn parse_chunk<T>(
    chunk: &[u8],
    policy: &ReadPolicy,
    parse: impl Fn(usize, &str, &mut Interner) -> Result<T, TraceError>,
    times: impl Fn(&T) -> (i64, i64) + Copy,
) -> ChunkOut<T> {
    let mut interner = Interner::new();
    let mut out = ChunkOut {
        rows: Vec::new(),
        lines: 0,
        rows_seen: 0,
        rows_good: 0,
        bytes: chunk.len() as u64,
        quarantined: Vec::new(),
        err: None,
    };
    let cap = policy.max_bad().saturating_add(1);
    let mut pos = 0usize;
    while pos < chunk.len() {
        let line_start = pos;
        let (mut raw, terminated) = match chunk[pos..].iter().position(|&b| b == b'\n') {
            Some(i) => {
                pos += i + 1;
                (&chunk[line_start..line_start + i], true)
            }
            None => {
                pos = chunk.len();
                (&chunk[line_start..], false)
            }
        };
        out.lines += 1;
        if terminated {
            if let [rest @ .., b'\r'] = raw {
                raw = rest;
            }
        }
        if raw.is_empty() {
            continue;
        }
        out.rows_seen += 1;
        let line_no = out.lines;
        let verdict = match std::str::from_utf8(raw) {
            Err(_) => Err(TraceError::Io(UTF8_ERR.to_string())),
            Ok(text) => parse(line_no, text, &mut interner)
                .and_then(|row| classify_row(policy, line_no, row, times)),
        };
        match verdict {
            Ok(row) => {
                out.rows_good += 1;
                out.rows.push(row);
            }
            Err(error) => {
                if policy.is_quarantine() {
                    out.quarantined.push(QuarantinedRow {
                        line: line_no,
                        byte_offset: line_start as u64,
                        error,
                        excerpt: crate::quarantine::excerpt_of(raw),
                        job_name: crate::quarantine::job_name_of(raw),
                    });
                    if out.quarantined.len() >= cap {
                        return out;
                    }
                } else {
                    out.err = Some(error);
                    return out;
                }
            }
        }
    }
    out
}

/// Stitch per-chunk outputs back together in document order, re-basing
/// line numbers and byte offsets onto the whole file and enforcing the
/// policy's bad-row budget globally — the `max_bad + 1`-th quarantined
/// row in document order aborts with exactly the error the sequential
/// reader would report.
fn merge_chunks<T>(
    outs: Vec<ChunkOut<T>>,
    policy: &ReadPolicy,
) -> Result<(Vec<T>, Quarantine), TraceError> {
    let mut rows = Vec::with_capacity(outs.iter().map(|o| o.rows.len()).sum());
    let mut q = Quarantine::default();
    let mut base_lines = 0usize;
    let mut base_bytes = 0u64;
    for out in outs {
        rows.extend(out.rows);
        for mut entry in out.quarantined {
            if q.rows.len() >= policy.max_bad() {
                return Err(offset_error(entry.error, base_lines));
            }
            entry.line += base_lines;
            entry.byte_offset += base_bytes;
            entry.error = offset_error(entry.error, base_lines);
            q.rows.push(entry);
        }
        if let Some(err) = out.err {
            return Err(offset_error(err, base_lines));
        }
        q.rows_good += out.rows_good;
        q.rows_total += out.rows_seen;
        q.lines_total += out.lines;
        base_lines += out.lines;
        base_bytes += out.bytes;
    }
    Ok((rows, q))
}

/// Read `batch_task.csv` bytes with an explicit target chunk size under a
/// [`ReadPolicy`]. Exposed so tests can force chunk boundaries to land
/// mid-row; use [`read_tasks_parallel_with_policy`] for the tuned default.
pub fn read_tasks_chunked_with_policy(
    data: &[u8],
    chunk_bytes: usize,
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    merge_chunks(
        dagscope_par::par_chunk_map(data, chunk_bytes, b'\n', |start, chunk| {
            let mut out = parse_chunk(chunk, policy, parse_task_line_interned, |t: &TaskRecord| {
                (t.start_time, t.end_time)
            });
            if out.err.is_none() {
                if let Some(e) = injected_chunk_io(start) {
                    out.err = Some(e);
                }
            }
            out
        }),
        policy,
    )
}

/// Read `batch_task.csv` bytes, decoding newline-aligned chunks in
/// parallel under a [`ReadPolicy`]. Produces exactly what
/// [`read_tasks_with_policy`] produces on the same bytes — same records,
/// same quarantine report, same first error past the budget.
pub fn read_tasks_parallel_with_policy(
    data: &[u8],
    policy: &ReadPolicy,
) -> Result<(Vec<TaskRecord>, Quarantine), TraceError> {
    // With one effective worker the chunked path is pure overhead
    // (chunk bookkeeping plus the merge pass) — go straight to the
    // sequential reader, which produces identical output by contract.
    if dagscope_par::parallelism() == 1 {
        return read_tasks_with_policy(data, policy);
    }
    read_tasks_chunked_with_policy(data, DEFAULT_CHUNK_BYTES, policy)
}

/// Read `batch_task.csv` bytes with an explicit target chunk size
/// (strict).
pub fn read_tasks_chunked(data: &[u8], chunk_bytes: usize) -> Result<Vec<TaskRecord>, TraceError> {
    read_tasks_chunked_with_policy(data, chunk_bytes, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Read `batch_task.csv` bytes, decoding newline-aligned chunks in
/// parallel. Produces exactly what [`read_tasks`] produces on the same
/// bytes — same records, same first error, same line numbers.
pub fn read_tasks_parallel(data: &[u8]) -> Result<Vec<TaskRecord>, TraceError> {
    if dagscope_par::parallelism() == 1 {
        return read_tasks(data);
    }
    read_tasks_chunked(data, DEFAULT_CHUNK_BYTES)
}

/// Read `batch_instance.csv` bytes with an explicit target chunk size
/// under a [`ReadPolicy`].
pub fn read_instances_chunked_with_policy(
    data: &[u8],
    chunk_bytes: usize,
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    merge_chunks(
        dagscope_par::par_chunk_map(data, chunk_bytes, b'\n', |start, chunk| {
            let mut out = parse_chunk(
                chunk,
                policy,
                parse_instance_line_interned,
                |i: &InstanceRecord| (i.start_time, i.end_time),
            );
            if out.err.is_none() {
                if let Some(e) = injected_chunk_io(start) {
                    out.err = Some(e);
                }
            }
            out
        }),
        policy,
    )
}

/// Read `batch_instance.csv` bytes, decoding newline-aligned chunks in
/// parallel under a [`ReadPolicy`].
pub fn read_instances_parallel_with_policy(
    data: &[u8],
    policy: &ReadPolicy,
) -> Result<(Vec<InstanceRecord>, Quarantine), TraceError> {
    if dagscope_par::parallelism() == 1 {
        return read_instances_with_policy(data, policy);
    }
    read_instances_chunked_with_policy(data, DEFAULT_CHUNK_BYTES, policy)
}

/// Read `batch_instance.csv` bytes with an explicit target chunk size
/// (strict).
pub fn read_instances_chunked(
    data: &[u8],
    chunk_bytes: usize,
) -> Result<Vec<InstanceRecord>, TraceError> {
    read_instances_chunked_with_policy(data, chunk_bytes, &ReadPolicy::Strict).map(|(rows, _)| rows)
}

/// Read `batch_instance.csv` bytes, decoding newline-aligned chunks in
/// parallel. Equivalent to [`read_instances`] on the same bytes.
pub fn read_instances_parallel(data: &[u8]) -> Result<Vec<InstanceRecord>, TraceError> {
    if dagscope_par::parallelism() == 1 {
        return read_instances(data);
    }
    read_instances_chunked(data, DEFAULT_CHUNK_BYTES)
}

/// Format a float the way the published trace does: integers print bare
/// (`100`), fractions keep their decimals (`0.5`).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Encode one task row.
pub fn format_task_line(t: &TaskRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{}",
        t.task_name,
        t.instance_num,
        t.job_name,
        t.task_type,
        t.status.as_str(),
        t.start_time,
        t.end_time,
        fmt_f64(t.plan_cpu),
        fmt_f64(t.plan_mem),
    )
}

/// Encode one instance row.
pub fn format_instance_line(i: &InstanceRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        i.instance_name,
        i.task_name,
        i.job_name,
        i.task_type,
        i.status.as_str(),
        i.start_time,
        i.end_time,
        i.machine_id,
        i.seq_no,
        i.total_seq_no,
        fmt_f64(i.cpu_avg),
        fmt_f64(i.cpu_max),
        fmt_f64(i.mem_avg),
        fmt_f64(i.mem_max),
    )
}

/// Write task rows as `batch_task.csv`.
pub fn write_tasks<W: Write>(writer: W, tasks: &[TaskRecord]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for t in tasks {
        writeln!(w, "{}", format_task_line(t))?;
    }
    w.flush()?;
    Ok(())
}

/// Write instance rows as `batch_instance.csv`.
pub fn write_instances<W: Write>(
    writer: W,
    instances: &[InstanceRecord],
) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    for i in instances {
        writeln!(w, "{}", format_instance_line(i))?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TASK_LINE: &str = "R2_1,5,j_1001388,1,Terminated,86400,86520,100,0.5";

    #[test]
    fn task_line_round_trip() {
        let t = parse_task_line(1, TASK_LINE).unwrap();
        assert_eq!(t.task_name, "R2_1");
        assert_eq!(t.instance_num, 5);
        assert_eq!(t.status, Status::Terminated);
        assert_eq!(t.plan_cpu, 100.0);
        assert_eq!(format_task_line(&t), TASK_LINE);
    }

    #[test]
    fn empty_numeric_fields_default() {
        let t = parse_task_line(1, "task_abc,,j_1,1,Running,,,,").unwrap();
        assert_eq!(t.instance_num, 0);
        assert_eq!(t.start_time, 0);
        assert_eq!(t.plan_cpu, 0.0);
    }

    #[test]
    fn wrong_field_count_reported() {
        let err = parse_task_line(7, "a,b,c").unwrap_err();
        assert_eq!(
            err,
            TraceError::FieldCount {
                line: 7,
                expected: 9,
                found: 3
            }
        );
    }

    #[test]
    fn bad_field_reported_with_column() {
        let err = parse_task_line(2, "M1,x,j_1,1,Terminated,1,2,3,4").unwrap_err();
        match err {
            TraceError::BadField {
                line: 2,
                column: "instance_num",
                value,
            } => {
                assert_eq!(value, "x");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_line_round_trip() {
        let line = "inst_1,M1,j_9,1,Terminated,100,200,m_1997,1,1,50.5,80,0.1,0.2";
        let i = parse_instance_line(1, line).unwrap();
        assert_eq!(i.machine_id, "m_1997");
        assert_eq!(i.cpu_avg, 50.5);
        assert_eq!(format_instance_line(&i), line);
    }

    #[test]
    fn stream_read_write_round_trip() {
        let t1 = parse_task_line(1, TASK_LINE).unwrap();
        let t2 = parse_task_line(1, "M1,2,j_1001388,1,Terminated,86000,86400,50,0.25").unwrap();
        let mut buf = Vec::new();
        write_tasks(&mut buf, &[t1.clone(), t2.clone()]).unwrap();
        let back = read_tasks(&buf[..]).unwrap();
        assert_eq!(back, vec![t1, t2]);
    }

    #[test]
    fn blank_lines_skipped() {
        let data = format!("{TASK_LINE}\n\n{TASK_LINE}\n");
        let rows = read_tasks(data.as_bytes()).unwrap();
        assert_eq!(rows.len(), 2);
    }

    const TASK_LINE2: &str = "M1,2,j_1001389,2,Terminated,86000,86400,50,0.25";

    /// Messy-but-valid document: CRLF ending, blank lines, and a final row
    /// with no trailing newline.
    fn messy_doc() -> String {
        format!("{TASK_LINE}\r\n\n{TASK_LINE2}\n\r\n{TASK_LINE}")
    }

    #[test]
    fn parallel_matches_sequential_at_every_chunk_size() {
        let data = messy_doc();
        let seq = read_tasks(data.as_bytes()).unwrap();
        assert_eq!(seq.len(), 3);
        // Chunk sizes from 1 byte (every row its own chunk) past the whole
        // document (single chunk) all agree with the sequential oracle.
        for chunk_bytes in 1..data.len() + 2 {
            let par = read_tasks_chunked(data.as_bytes(), chunk_bytes).unwrap();
            assert_eq!(par, seq, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_empty_input() {
        assert_eq!(read_tasks_parallel(b"").unwrap(), vec![]);
        assert_eq!(read_tasks_parallel(b"\n\n\n").unwrap(), vec![]);
    }

    #[test]
    fn parallel_error_line_numbers_match_sequential() {
        // Bad row on (1-based) line 5; blank lines still count.
        let data = format!("{TASK_LINE}\n\n{TASK_LINE2}\n\na,b,c\n{TASK_LINE}\n");
        let want = read_tasks(data.as_bytes()).unwrap_err();
        assert_eq!(
            want,
            TraceError::FieldCount {
                line: 5,
                expected: 9,
                found: 3
            }
        );
        for chunk_bytes in 1..data.len() + 2 {
            let got = read_tasks_chunked(data.as_bytes(), chunk_bytes).unwrap_err();
            assert_eq!(got, want, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_reports_first_error_only() {
        // Two bad rows: the earlier one must win regardless of chunking.
        let data = format!("{TASK_LINE}\nM1,x,j_1,1,Terminated,1,2,3,4\nbad\n");
        let want = read_tasks(data.as_bytes()).unwrap_err();
        for chunk_bytes in 1..data.len() + 2 {
            let got = read_tasks_chunked(data.as_bytes(), chunk_bytes).unwrap_err();
            assert_eq!(got, want, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_invalid_utf8_matches_sequential() {
        let mut data = format!("{TASK_LINE}\n").into_bytes();
        data.extend_from_slice(b"\xff\xfe,bad,utf8\n");
        let want = read_tasks(&data[..]).unwrap_err();
        for chunk_bytes in [1, 7, 64, data.len() + 1] {
            let got = read_tasks_chunked(&data, chunk_bytes).unwrap_err();
            assert_eq!(got, want, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn parallel_instances_match_sequential() {
        let line = "inst_1,M1,j_9,1,Terminated,100,200,m_1997,1,1,50.5,80,0.1,0.2";
        let data = format!("{line}\n{line}\n\n{line}");
        let seq = read_instances(data.as_bytes()).unwrap();
        for chunk_bytes in 1..data.len() + 2 {
            let par = read_instances_chunked(data.as_bytes(), chunk_bytes).unwrap();
            assert_eq!(par, seq, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn interning_dedups_within_reader() {
        let line = "inst_1,M1,j_9,1,Terminated,100,200,m_7,1,1,1,1,1,1";
        let data = format!("{line}\n{line}\n");
        let rows = read_instances(data.as_bytes()).unwrap();
        assert_eq!(rows[0].machine_id, rows[1].machine_id);
        assert_eq!(rows[0].machine_id, "m_7");
    }
}
