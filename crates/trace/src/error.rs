//! Error type for trace parsing and validation.

use std::fmt;

/// Errors produced while reading or validating trace data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A CSV row had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Expected field count.
        expected: usize,
        /// Fields actually present.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name from the v2018 schema.
        column: &'static str,
        /// Offending raw text.
        value: String,
    },
    /// A row's timestamps are impossible: both present, but the end
    /// precedes the start. Only the quarantine reader classifies rows
    /// this way; strict reads accept them (the availability filter
    /// rejects the enclosing job later).
    BadTimestamps {
        /// 1-based line number.
        line: usize,
        /// Row start time.
        start: i64,
        /// Row end time (earlier than `start`).
        end: i64,
    },
    /// An I/O error, stringified (kept `Clone`/`Eq` for test ergonomics).
    Io(String),
    /// A semantic validation failure (e.g. a dependency cycle).
    Invalid(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::FieldCount {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: expected {expected} fields, found {found}")
            }
            TraceError::BadField {
                line,
                column,
                value,
            } => {
                write!(
                    f,
                    "line {line}: cannot parse column `{column}` from {value:?}"
                )
            }
            TraceError::BadTimestamps { line, start, end } => {
                write!(
                    f,
                    "line {line}: impossible timestamps: end {end} precedes start {start}"
                )
            }
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::FieldCount {
            line: 3,
            expected: 9,
            found: 7,
        };
        assert!(e.to_string().contains("line 3"));
        let e = TraceError::BadField {
            line: 1,
            column: "plan_cpu",
            value: "x".into(),
        };
        assert!(e.to_string().contains("plan_cpu"));
    }
}
