//! Streaming single-pass trace ingestion under a bounded memory budget.
//!
//! The batch path ([`crate::csv::read_tasks_parallel_with_policy`] +
//! [`JobSet::from_tasks`]) materializes every task row of the trace before
//! grouping — fine at 100k jobs, hopeless at the full 4M. [`StreamedTrace`]
//! instead consumes the CSV once, front to back, exploiting the trace's
//! job-contiguity: rows of one job arrive together, so each row folds
//! straight into an incremental [`OpenFold`] (facts + eligibility, no row
//! ever stored), the closing job lands in a [`StatsAccumulator`] and an
//! eligibility flag, and what survives per job is ~26 bytes of metadata (a
//! numeric name key, the job's byte range in the source, its size, and
//! flags).
//!
//! Jobs are later *re-materialized on demand* by replaying their recorded
//! byte ranges through the same parser (the source must be `Read + Seek`),
//! which is how the stratified sample — picked from the size column alone,
//! see [`crate::filter::stratified_sample_indices`] — becomes concrete
//! [`Job`]s for the downstream pipeline.
//!
//! Two disruptions are handled without breaking bit-identity with the
//! batch path:
//!
//! * **Out-of-order stragglers** — a row for an already-closed job opens a
//!   correction: the extra byte range is recorded and, at finalize, the
//!   job's old contribution is retracted and the merged job (rows in
//!   document order, exactly as [`JobSet::from_tasks`] would have grouped
//!   them) is folded back in.
//! * **Quarantine verdicts** — a bad row implicates its job (see
//!   [`Quarantine::suspect_jobs`]); the implicated job is dropped entirely,
//!   matching the batch ingestion which deletes all rows of suspect jobs
//!   before grouping. A suspicion arriving after the job closed retracts
//!   its folded contribution at finalize.
//!
//! Retractions are exact because the accumulator's resource totals use
//! [`crate::fsum::ExactSum`]; everything else is integer counting.

use std::collections::{BTreeSet, HashMap};
use std::io::{BufReader, Cursor, Read, Seek, SeekFrom};

use crate::csv::{self, RawLines};
use crate::filter::{DropReason, FilterStats, SampleCriteria};
use crate::scan::{self, LineSource};
use crate::quarantine::{self, Quarantine, QuarantinedRow, ReadPolicy};
use crate::csv::TaskParts;
use crate::schema::Status;
use crate::stats::{JobFacts, StatsAccumulator, TraceStats};
use crate::taskname;
use crate::{Job, JobSet, TraceError};

/// [`NameColumn::small`] sentinel for names that are not canonical
/// `j_<digits>` (the string lives in the odd-name side table).
const ODD_NAME: u32 = u32::MAX;
/// [`NameColumn::small`] sentinel for numeric names too large for 32 bits
/// (the value lives in the big-name side table).
const BIG_NAME: u32 = u32::MAX - 1;

/// Per-job flag bits.
const FOLDED: u8 = 1 << 0;
const DEAD: u8 = 1 << 1;
const ELIGIBLE: u8 = 1 << 2;
const DIRTY: u8 = 1 << 3;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Encode a canonical `j_<digits>` name (no leading zeros) as its numeric
/// value; anything else — including a value colliding with the sentinel —
/// stays a string in the odd-name side table.
fn encode_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("j_")?;
    if digits.is_empty() || digits.len() > 19 || (digits.len() > 1 && digits.starts_with('0')) {
        return None;
    }
    let mut v: u64 = 0;
    for b in digits.bytes() {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    if v == u64::MAX {
        None
    } else {
        Some(v)
    }
}

/// Per-job name column. Alibaba-style `j_<digits>` names are stored as
/// their numeric value — 4 bytes per job, since real trace job ids fit in
/// 32 bits — with two side tables for the exceptions: numerics past the
/// sentinel range, and non-canonical strings. At 4M jobs the column is
/// ~17 MB where a `Vec<String>` would cost hundreds.
#[derive(Debug)]
struct NameColumn {
    small: Vec<u32>,
    big: HashMap<u32, u64>,
    odd: HashMap<u32, String>,
}

impl NameColumn {
    fn new() -> NameColumn {
        NameColumn {
            small: Vec::new(),
            big: HashMap::new(),
            odd: HashMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.small.len()
    }

    /// Append the next job's name with its already-computed encoding.
    fn push_encoded(&mut self, encoded: Option<u64>, name: &str) {
        let idx = self.small.len() as u32;
        match encoded {
            Some(v) => match u32::try_from(v) {
                Ok(small) if small < BIG_NAME => self.small.push(small),
                _ => {
                    self.small.push(BIG_NAME);
                    self.big.insert(idx, v);
                }
            },
            None => {
                self.small.push(ODD_NAME);
                self.odd.insert(idx, name.to_string());
            }
        }
    }

    /// Compare against an already-encoded name.
    fn is_encoded(&self, idx: u32, encoded: &Option<u64>, name: &str) -> bool {
        match encoded {
            Some(v) => self.numeric(idx) == Some(*v),
            None => {
                self.small[idx as usize] == ODD_NAME
                    && self.odd.get(&idx).is_some_and(|n| n == name)
            }
        }
    }

    /// The name's numeric value, or `None` for odd names.
    fn numeric(&self, idx: u32) -> Option<u64> {
        match self.small[idx as usize] {
            ODD_NAME => None,
            BIG_NAME => Some(self.big[&idx]),
            v => Some(u64::from(v)),
        }
    }

    fn hash(&self, idx: u32) -> u64 {
        match self.numeric(idx) {
            Some(v) => splitmix64(v),
            None => fnv1a(self.odd[&idx].as_bytes()),
        }
    }

    fn is(&self, idx: u32, name: &str) -> bool {
        match encode_name(name) {
            Some(v) => self.numeric(idx) == Some(v),
            None => {
                self.small[idx as usize] == ODD_NAME
                    && self.odd.get(&idx).is_some_and(|n| n == name)
            }
        }
    }

    fn string(&self, idx: u32) -> String {
        match self.numeric(idx) {
            Some(v) => format!("j_{v}"),
            None => self.odd[&idx].clone(),
        }
    }

    /// Write job `idx`'s name into `buf` (numeric names) or borrow it from
    /// the odd-name table, returning the bytes to compare.
    fn bytes<'a>(&'a self, idx: u32, buf: &'a mut [u8; 22]) -> &'a [u8] {
        match self.numeric(idx) {
            None => self.odd[&idx].as_bytes(),
            Some(mut v) => {
                buf[0] = b'j';
                buf[1] = b'_';
                let mut tmp = [0u8; 20];
                let mut i = tmp.len();
                loop {
                    i -= 1;
                    tmp[i] = b'0' + (v % 10) as u8;
                    v /= 10;
                    if v == 0 {
                        break;
                    }
                }
                let digits = tmp.len() - i;
                buf[2..2 + digits].copy_from_slice(&tmp[i..]);
                &buf[..2 + digits]
            }
        }
    }

    /// Heap footprint of the per-job column (side tables excluded — they
    /// hold only the rare exceptions).
    fn heap_bytes(&self) -> usize {
        self.small.capacity() * 4
    }
}

/// Open-addressing hash set of job indices keyed by job name, 4 bytes per
/// slot — at 4M jobs this is ~32 MB where a `HashMap<String, u32>` would
/// cost hundreds. The engine supplies name equality and re-hashing, so the
/// table itself stores nothing but `index + 1` (0 = empty).
#[derive(Debug)]
struct NameIndex {
    slots: Vec<u32>,
    len: usize,
    /// Job indices this table can hold before fingerprint bits must be
    /// returned to the index field ([`FP_IDX_MASK`]); `with_fp_cap` lowers
    /// it in tests to exercise the wide mode without 16M inserts.
    fp_cap: usize,
    /// Whether the *current* slot array carries fingerprints. A property
    /// of the stored words, not of `len` — it only flips inside
    /// [`NameIndex::grow`], which rewrites every word.
    fp: bool,
}

/// Low bits of a slot in fingerprint mode: `idx + 1`.
const FP_IDX_MASK: u32 = 0x00ff_ffff;

impl NameIndex {
    fn new() -> NameIndex {
        NameIndex::with_fp_cap(FP_IDX_MASK as usize - 1)
    }

    fn with_fp_cap(fp_cap: usize) -> NameIndex {
        NameIndex {
            slots: vec![0; 1 << 16],
            len: 0,
            fp_cap,
            fp: true,
        }
    }

    /// While the table is small enough that every `idx + 1` fits in 24
    /// bits, the top 8 bits of each slot carry a hash fingerprint, so a
    /// probe only pays the name-column load (a second cache miss at
    /// million-job scale) for entries whose fingerprint already matches —
    /// 255 of 256 mismatching occupied slots are skipped on the slot word
    /// alone. Past [`NameIndex::fp_cap`] entries the table rebuilds with
    /// plain `idx + 1` slots; the fingerprint is only ever a filter, so
    /// both modes answer probes identically.
    ///
    /// The slot word for `idx` under `hash` in the current mode.
    fn slot_word(&self, hash: u64, idx: u32) -> u32 {
        if self.fp {
            ((hash >> 56) as u32) << 24 | (idx + 1)
        } else {
            idx + 1
        }
    }

    fn lookup(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        self.probe(hash, eq).ok()
    }

    /// Walk the probe chain for `hash`: `Ok(idx)` when a matching entry is
    /// found, `Err(slot)` with the first empty slot otherwise. The miss
    /// slot is exactly where a subsequent insert of the same key belongs,
    /// so callers that miss-then-insert ([`ScanState::close_open`]) pay the
    /// chain — one cache miss per probe at 4M-job table sizes — only once.
    fn probe(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Result<u32, usize> {
        let mask = self.slots.len() - 1;
        let mut pos = hash as usize & mask;
        if self.fp {
            let want = ((hash >> 56) as u32) << 24;
            loop {
                let stored = self.slots[pos];
                if stored == 0 {
                    return Err(pos);
                }
                if stored & !FP_IDX_MASK == want {
                    let idx = (stored & FP_IDX_MASK) - 1;
                    if eq(idx) {
                        return Ok(idx);
                    }
                }
                pos = (pos + 1) & mask;
            }
        }
        loop {
            match self.slots[pos] {
                0 => return Err(pos),
                stored => {
                    let idx = stored - 1;
                    if eq(idx) {
                        return Ok(idx);
                    }
                }
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Fill a previously probed empty slot ([`NameIndex::probe`] `Err`).
    /// Only valid while no other insert or grow has happened since the
    /// probe — the scan guarantees that: a job's slot is probed when its
    /// first row opens it, and the next insert is that same job's close.
    fn insert_at(&mut self, slot: usize, hash: u64, idx: u32) {
        debug_assert_eq!(self.slots[slot], 0, "probed slot was taken since");
        self.slots[slot] = self.slot_word(hash, idx);
        self.len += 1;
    }

    /// True when one more insert would push the load factor past 0.7, or
    /// force the fingerprint mode past its index capacity.
    fn needs_grow(&self) -> bool {
        (self.len + 1) * 10 >= self.slots.len() * 7 || (self.fp && self.len >= self.fp_cap)
    }

    /// Double capacity, re-placing every stored index by `hash_of(idx)`.
    /// The rebuild also re-derives the slot encoding, which is how the
    /// table leaves fingerprint mode when it outgrows 24-bit indices (the
    /// capacity stays doubled in that case even though the trigger wasn't
    /// load factor — a one-time rebuild either way).
    ///
    /// Every index in `0..len` is stored exactly once, so the table can be
    /// rebuilt from the indices alone — the old table is freed *before* the
    /// new one is allocated. At millions of jobs the grow moment is the
    /// scan's peak-RSS point, and two tables coexisting would double the
    /// index's contribution to it.
    fn grow(&mut self, hash_of: impl Fn(u32) -> u64) {
        let new_cap = self.slots.len() * 2;
        self.slots = Vec::new();
        let mut slots = vec![0u32; new_cap];
        let mask = new_cap - 1;
        // Mode of the rebuilt table: room for the insert that triggered us.
        self.fp = self.len + 1 <= self.fp_cap;
        let fp = self.fp;
        for idx in 0..self.len as u32 {
            let hash = hash_of(idx);
            let mut pos = hash as usize & mask;
            while slots[pos] != 0 {
                pos = (pos + 1) & mask;
            }
            slots[pos] = if fp {
                ((hash >> 56) as u32) << 24 | (idx + 1)
            } else {
                idx + 1
            };
        }
        self.slots = slots;
    }

    /// Insert a new index under `hash`. The caller has verified absence and
    /// capacity ([`NameIndex::needs_grow`]).
    fn insert(&mut self, hash: u64, idx: u32) {
        let word = self.slot_word(hash, idx);
        let mask = self.slots.len() - 1;
        let mut pos = hash as usize & mask;
        while self.slots[pos] != 0 {
            pos = (pos + 1) & mask;
        }
        self.slots[pos] = word;
        self.len += 1;
    }
}

/// What the scan is currently accumulating.
enum Open {
    /// A job not seen before: rows fold into the running [`OpenFold`].
    New { start: u64, end: u64 },
    /// An out-of-order straggler batch for a closed job: only the byte
    /// range is tracked; rows are recovered by replay at finalize.
    Straggler { idx: u32, start: u64, end: u64 },
}

/// Incremental fold of the open job — everything [`JobFacts`] and the
/// eligibility verdict need, updated row by row so the scan never stores
/// task rows at all. Each reduction repeats the exact fold the columnar
/// [`crate::store::JobView`] would run over stored rows (same row order,
/// same `f64` add sequence for the volumes, same min/max filters), so the
/// verdicts and statistics stay bit-identical to the materialized path.
struct OpenFold {
    /// Job name (reused buffer; valid while a job is open).
    name: String,
    /// [`encode_name`] of `name`, computed once at open time.
    encoded: Option<u64>,
    /// Name hash, computed once at open time.
    hash: u64,
    /// Empty [`NameIndex`] slot found by the open-time probe miss; where
    /// the close-time insert lands (unless the index grew in between —
    /// it cannot, see [`NameIndex::insert_at`]).
    slot: usize,
    size: u32,
    /// Every row's task name parses as a DAG task so far.
    all_dag: bool,
    /// Every row terminated so far.
    all_terminated: bool,
    /// `min` over positive start times ([`crate::store::JobView::start_time`]),
    /// `i64::MAX` while none seen — a sentinel instead of an `Option` keeps
    /// the per-row fold branch-free.
    min_start: i64,
    /// `max` over positive end times ([`crate::store::JobView::end_time`]),
    /// `i64::MIN` while none seen.
    max_end: i64,
    cpu_volume: f64,
    mem_volume: f64,
    status_counts: [usize; Status::ALL.len()],
    /// Every row so far passes the per-row availability checks (valid
    /// duration, positive plans, nonzero instances).
    rows_available: bool,
    /// Shared across jobs (not reset by [`OpenFold::begin`]): the DAG-name
    /// verdict cache — task names repeat across the whole trace.
    dag_memo: taskname::DagNameMemo,
}

impl OpenFold {
    fn new() -> OpenFold {
        OpenFold {
            name: String::new(),
            encoded: None,
            hash: 0,
            slot: 0,
            size: 0,
            all_dag: true,
            all_terminated: true,
            min_start: i64::MAX,
            max_end: i64::MIN,
            cpu_volume: 0.0,
            mem_volume: 0.0,
            status_counts: [0; Status::ALL.len()],
            rows_available: true,
            dag_memo: taskname::DagNameMemo::new(),
        }
    }

    /// Reset for a new job.
    fn begin(&mut self, name: &str, encoded: Option<u64>, hash: u64, slot: usize) {
        self.name.clear();
        self.name.push_str(name);
        self.encoded = encoded;
        self.hash = hash;
        self.slot = slot;
        self.size = 0;
        self.all_dag = true;
        self.all_terminated = true;
        self.min_start = i64::MAX;
        self.max_end = i64::MIN;
        self.cpu_volume = 0.0;
        self.mem_volume = 0.0;
        self.status_counts = [0; Status::ALL.len()];
        self.rows_available = true;
    }

    /// Fold one row.
    fn push(&mut self, p: &TaskParts<'_>) {
        self.size += 1;
        self.all_dag = self.all_dag && self.dag_memo.is_dag_name(p.task_name);
        self.all_terminated = self.all_terminated && p.status == Status::Terminated;
        if p.start_time > 0 {
            self.min_start = self.min_start.min(p.start_time);
        }
        if p.end_time > 0 {
            self.max_end = self.max_end.max(p.end_time);
        }
        self.cpu_volume += p.instance_num as f64 * p.plan_cpu;
        self.mem_volume += p.instance_num as f64 * p.plan_mem;
        self.status_counts[p.status.index()] += 1;
        self.rows_available = self.rows_available
            && p.start_time > 0
            && p.end_time >= p.start_time
            && p.plan_cpu > 0.0
            && p.plan_mem > 0.0
            && p.instance_num > 0;
    }

    /// The folded [`JobFacts`] — [`crate::store::JobView::facts`].
    fn facts(&self) -> JobFacts {
        let completion = (self.min_start != i64::MAX
            && self.max_end != i64::MIN
            && self.max_end >= self.min_start)
            .then(|| self.max_end - self.min_start);
        JobFacts {
            cpu_volume: self.cpu_volume,
            mem_volume: self.mem_volume,
            is_dag: self.size > 0 && self.all_dag,
            size: self.size as usize,
            fully_terminated: self.size > 0 && self.all_terminated,
            completion,
            status_counts: self.status_counts,
        }
    }

    /// [`crate::store::JobView::availability`] over the folded rows.
    fn available(&self, criteria: &SampleCriteria) -> bool {
        if self.min_start == i64::MAX || self.max_end == i64::MIN {
            return false;
        }
        if self.min_start < criteria.min_start || self.max_end > criteria.window_secs + 86_400 {
            return false;
        }
        self.rows_available
    }
}

/// Everything the scan accumulates — split from the source so the borrow
/// of the source (held by the line reader during the scan, or by the
/// replay reader during materialization) never aliases the metadata.
struct ScanState {
    policy: ReadPolicy,
    criteria: SampleCriteria,
    interner: crate::Interner,
    /// Canonical name per job.
    names: NameColumn,
    /// Primary byte range of each job in the source.
    byte_start: Vec<u64>,
    byte_len: Vec<u32>,
    /// Task count per job (post-merge for corrected jobs).
    size: Vec<u32>,
    flags: Vec<u8>,
    /// Straggler byte ranges, in document order, for dirty jobs.
    extras: HashMap<u32, Vec<(u64, u32)>>,
    index: NameIndex,
    suspects: BTreeSet<String>,
    acc: StatsAccumulator,
    quarantine: Quarantine,
    /// Alive eligible job indices in name order (the population the
    /// stratified sampler sees).
    eligible: Vec<u32>,
    dead: usize,
    raw_bytes: u64,
}

impl ScanState {
    fn new(policy: &ReadPolicy, criteria: &SampleCriteria) -> ScanState {
        ScanState {
            policy: policy.clone(),
            criteria: criteria.clone(),
            interner: crate::Interner::new(),
            names: NameColumn::new(),
            byte_start: Vec::new(),
            byte_len: Vec::new(),
            size: Vec::new(),
            flags: Vec::new(),
            extras: HashMap::new(),
            index: NameIndex::new(),
            suspects: BTreeSet::new(),
            acc: StatsAccumulator::new(),
            quarantine: Quarantine::default(),
            eligible: Vec::new(),
            dead: 0,
            raw_bytes: 0,
        }
    }

    fn name_is(&self, idx: u32, name: &str) -> bool {
        self.names.is(idx, name)
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        let hash = match encode_name(name) {
            Some(v) => splitmix64(v),
            None => fnv1a(name.as_bytes()),
        };
        self.index.lookup(hash, |idx| self.name_is(idx, name))
    }

    /// The job's name, decoded.
    fn name_string(&self, idx: u32) -> String {
        self.names.string(idx)
    }

    fn kill(&mut self, idx: u32) {
        if self.flags[idx as usize] & DEAD == 0 {
            self.flags[idx as usize] |= DEAD;
            self.dead += 1;
        }
    }

    /// React to a name becoming suspect mid-scan. Open state referencing
    /// the name is discarded; a closed job is marked dead for
    /// finalize-time retraction. Returns the (possibly cleared) open state.
    fn on_new_suspect(
        &mut self,
        name: &str,
        open: Option<Open>,
        fold: &OpenFold,
    ) -> Option<Open> {
        match open {
            // The open fold is simply dropped; the next `begin` resets it.
            Some(Open::New { .. }) if fold.name == name => None,
            Some(Open::Straggler { idx, .. }) if self.name_is(idx, name) => {
                self.kill(idx);
                None
            }
            other => {
                if let Some(idx) = self.lookup(name) {
                    self.kill(idx);
                }
                other
            }
        }
    }

    /// Seal whatever was accumulating. A new job gets its index, metadata
    /// row, eligibility verdict, and statistics fold — all read off the
    /// incremental [`OpenFold`]. A straggler batch just records its range.
    fn close_open(&mut self, open: Open, fold: &OpenFold) -> Result<(), TraceError> {
        match open {
            Open::New { start, end } => {
                let len = u32::try_from(end - start).map_err(|_| {
                    TraceError::Io(format!(
                        "job '{}' spans more than 4 GiB of trace",
                        fold.name
                    ))
                })?;
                let facts = fold.facts();
                // Integrity is already in the facts; only the availability
                // window check remains.
                let eligible =
                    facts.is_dag && facts.fully_terminated && fold.available(&self.criteria);
                let idx = self.names.len() as u32;
                self.names.push_encoded(fold.encoded, &fold.name);
                self.byte_start.push(start);
                self.byte_len.push(len);
                self.size.push(fold.size);
                self.flags
                    .push(FOLDED | if eligible { ELIGIBLE } else { 0 });
                self.acc.add_facts(&facts);
                if self.index.needs_grow() {
                    let names = &self.names;
                    self.index.grow(|i| names.hash(i));
                    self.index.insert(fold.hash, idx);
                } else {
                    // No insert has happened since this job's open-time
                    // probe, so the probed empty slot is still the right
                    // home — skip the second probe chain.
                    self.index.insert_at(fold.slot, fold.hash, idx);
                }
            }
            Open::Straggler { idx, start, end } => {
                let len = u32::try_from(end - start).map_err(|_| {
                    TraceError::Io("straggler batch spans more than 4 GiB of trace".to_string())
                })?;
                self.extras.entry(idx).or_default().push((start, len));
                self.flags[idx as usize] |= DIRTY;
            }
        }
        Ok(())
    }

    /// Re-read one recorded byte range, appending the rows that belong to
    /// `name` (skipping blanks, rows of other jobs, and rows the scan
    /// quarantined) to `tasks`.
    fn replay_range<R: Read + Seek>(
        &mut self,
        source: &mut R,
        start: u64,
        len: u32,
        name: &str,
        tasks: &mut Vec<crate::TaskRecord>,
    ) -> Result<(), TraceError> {
        source.seek(SeekFrom::Start(start))?;
        let take = source.take(u64::from(len));
        let mut lines = RawLines::new(BufReader::new(take));
        let mut buf = Vec::new();
        while lines.next_line_into(&mut buf)?.is_some() {
            if buf.is_empty() {
                continue;
            }
            let Ok(text) = std::str::from_utf8(&buf) else {
                continue;
            };
            let Ok(parts) = csv::parse_task_parts(0, text) else {
                continue;
            };
            let Ok(parts) =
                csv::classify_row(&self.policy, 0, parts, |p| (p.start_time, p.end_time))
            else {
                continue;
            };
            if parts.job_name == name {
                tasks.push(parts.to_record(&mut self.interner));
            }
        }
        Ok(())
    }

    /// Materialize one job by replaying its byte range(s) — primary only,
    /// or with straggler extras merged in document order.
    fn replay_job<R: Read + Seek>(
        &mut self,
        source: &mut R,
        idx: u32,
        with_extras: bool,
    ) -> Result<Job, TraceError> {
        let name = self.name_string(idx);
        let mut tasks = Vec::new();
        let (start, len) = (self.byte_start[idx as usize], self.byte_len[idx as usize]);
        self.replay_range(source, start, len, &name, &mut tasks)?;
        if with_extras {
            if let Some(ranges) = self.extras.get(&idx).cloned() {
                for (s, l) in ranges {
                    self.replay_range(source, s, l, &name, &mut tasks)?;
                }
            }
        }
        Ok(Job { name, tasks })
    }

    /// Apply deferred corrections, then freeze the eligible population in
    /// name order.
    fn finalize<R: Read + Seek>(&mut self, source: &mut R) -> Result<(), TraceError> {
        for idx in 0..self.flags.len() as u32 {
            let f = self.flags[idx as usize];
            if f & DEAD != 0 {
                // Retract the folded contribution (primary range only —
                // straggler extras are never folded during the scan); the
                // job vanishes, like the batch path dropping every row of
                // a suspect job.
                if f & FOLDED != 0 {
                    let old = self.replay_job(source, idx, false)?;
                    self.acc.remove_job(&old);
                    self.flags[idx as usize] &= !FOLDED;
                }
            } else if f & DIRTY != 0 {
                let old = self.replay_job(source, idx, false)?;
                let merged = self.replay_job(source, idx, true)?;
                self.acc.remove_job(&old);
                self.acc.add_job(&merged);
                self.size[idx as usize] = merged.size() as u32;
                if self.criteria.accepts(&merged) {
                    self.flags[idx as usize] |= ELIGIBLE;
                } else {
                    self.flags[idx as usize] &= !ELIGIBLE;
                }
            }
        }
        let mut eligible: Vec<u32> = (0..self.flags.len() as u32)
            .filter(|&i| {
                let f = self.flags[i as usize];
                f & DEAD == 0 && f & ELIGIBLE != 0
            })
            .collect();
        let names = &self.names;
        eligible.sort_unstable_by(|&a, &b| {
            let (mut ba, mut bb) = ([0u8; 22], [0u8; 22]);
            let sa = names.bytes(a, &mut ba).to_vec();
            let sb = names.bytes(b, &mut bb);
            sa.as_slice().cmp(sb)
        });
        self.eligible = eligible;
        Ok(())
    }
}

/// The forward scan: group rows into jobs as they complete, fold each into
/// the running statistics, record byte ranges, and drop the rows. Generic
/// over the [`LineSource`] so the buffered (file) and zero-copy (mmap /
/// in-memory) paths share one loop; rows parse in place via the SWAR
/// scanner — no scratch line buffer, no per-row allocation.
fn run_scan_source<S: LineSource>(lines: &mut S, state: &mut ScanState) -> Result<(), TraceError> {
    let mut fold = OpenFold::new();
    let mut open: Option<Open> = None;

    while let Some((offset, consumed, span)) = lines.next_span()? {
        state.raw_bytes = offset + consumed;
        state.quarantine.lines_total += 1;
        let line_no = state.quarantine.lines_total;
        if span.is_empty() {
            continue;
        }
        let raw = &lines.view()[span];
        state.quarantine.rows_total += 1;
        let verdict = scan::parse_task_parts_bytes(line_no, raw).and_then(|p| {
            csv::classify_row(&state.policy, line_no, p, |p| (p.start_time, p.end_time))
        });
        let parts = match verdict {
            Ok(parts) => parts,
            Err(error) => {
                if !state.policy.is_quarantine()
                    || state.quarantine.rows.len() >= state.policy.max_bad()
                {
                    return Err(error);
                }
                let job_name = quarantine::job_name_of(raw);
                state.quarantine.rows.push(QuarantinedRow {
                    line: line_no,
                    byte_offset: offset,
                    error,
                    excerpt: quarantine::excerpt_of(raw),
                    job_name: job_name.clone(),
                });
                if let Some(name) = job_name {
                    if state.suspects.insert(name.clone()) {
                        open = state.on_new_suspect(&name, open, &fold);
                    }
                }
                continue;
            }
        };
        state.quarantine.rows_good += 1;
        if !state.suspects.is_empty() && state.suspects.contains(parts.job_name) {
            continue;
        }
        // Fast path: the row continues whatever is open.
        match &mut open {
            Some(Open::New { end, .. }) if fold.name == parts.job_name => {
                fold.push(&parts);
                *end = offset + consumed;
                continue;
            }
            Some(Open::Straggler { idx, end, .. }) if state.name_is(*idx, parts.job_name) => {
                *end = offset + consumed;
                continue;
            }
            _ => {}
        }
        // The row opens something else: close what was open first.
        if let Some(prev) = open.take() {
            state.close_open(prev, &fold)?;
        }
        let encoded = encode_name(parts.job_name);
        let hash = match encoded {
            Some(v) => splitmix64(v),
            None => fnv1a(parts.job_name.as_bytes()),
        };
        let probed = state
            .index
            .probe(hash, |idx| {
                state.names.is_encoded(idx, &encoded, parts.job_name)
            });
        open = Some(match probed {
            // A closed job's name re-appearing: an out-of-order straggler
            // batch (the job cannot be dead here — dead jobs are suspects,
            // and suspect rows were dropped above).
            Ok(idx) => Open::Straggler {
                idx,
                start: offset,
                end: offset + consumed,
            },
            Err(slot) => {
                fold.begin(parts.job_name, encoded, hash, slot);
                fold.push(&parts);
                Open::New {
                    start: offset,
                    end: offset + consumed,
                }
            }
        });
    }
    if let Some(prev) = open.take() {
        state.close_open(prev, &fold)?;
    }
    Ok(())
}

/// Seek-to-start wrapper: scan a `Read + Seek` source through a reused
/// [`scan::BufLines`] buffer of `buffer` bytes.
fn run_scan<R: Read + Seek>(
    source: &mut R,
    state: &mut ScanState,
    buffer: usize,
) -> Result<(), TraceError> {
    source.seek(SeekFrom::Start(0))?;
    let mut lines = scan::BufLines::new(&mut *source, buffer);
    run_scan_source(&mut lines, state)
}

/// A fully scanned trace: per-job metadata columns, exact running
/// statistics, quarantine accounting, and the (seekable) source for
/// on-demand job materialization.
pub struct StreamedTrace<R> {
    source: R,
    state: ScanState,
}

impl<R: Read + Seek> StreamedTrace<R> {
    /// Scan `source` end to end with the default buffer size.
    pub fn scan(
        source: R,
        policy: &ReadPolicy,
        criteria: &SampleCriteria,
    ) -> Result<StreamedTrace<R>, TraceError> {
        Self::scan_with_buffer(source, policy, criteria, 1 << 20)
    }

    /// Scan with an explicit buffer capacity — exposed so the property
    /// tests can force every possible chunk split.
    pub fn scan_with_buffer(
        mut source: R,
        policy: &ReadPolicy,
        criteria: &SampleCriteria,
        buffer: usize,
    ) -> Result<StreamedTrace<R>, TraceError> {
        let mut state = ScanState::new(policy, criteria);
        run_scan(&mut source, &mut state, buffer)?;
        state.finalize(&mut source)?;
        Ok(StreamedTrace { source, state })
    }

    /// Trace-level statistics over surviving jobs — bit-identical to
    /// [`TraceStats::compute`] on the batch-ingested [`JobSet`].
    pub fn stats(&self) -> TraceStats {
        self.state.acc.finish()
    }
}

impl<T: AsRef<[u8]>> StreamedTrace<Cursor<T>> {
    /// Scan bytes already in memory — a whole file read up front, or an
    /// mmap ([`dagscope_par::MmapBuf`] is `AsRef<[u8]>`) — through the
    /// zero-copy [`scan::SliceLines`] path: lines parse in place, with no
    /// intermediate buffer at all. Replay (materialization) then seeks
    /// over the same bytes through a [`Cursor`]. Output is bit-identical
    /// to [`StreamedTrace::scan`] over the same content.
    pub fn scan_bytes(
        data: T,
        policy: &ReadPolicy,
        criteria: &SampleCriteria,
    ) -> Result<StreamedTrace<Cursor<T>>, TraceError> {
        let mut state = ScanState::new(policy, criteria);
        {
            let mut lines = scan::SliceLines::new(data.as_ref());
            run_scan_source(&mut lines, &mut state)?;
        }
        let mut source = Cursor::new(data);
        state.finalize(&mut source)?;
        Ok(StreamedTrace { source, state })
    }
}

impl<R: Read + Seek> StreamedTrace<R> {
    /// Quarantine accounting for the scan.
    pub fn quarantine(&self) -> &Quarantine {
        &self.state.quarantine
    }

    /// Jobs implicated by quarantined rows (dropped from every result).
    pub fn suspects(&self) -> &BTreeSet<String> {
        &self.state.suspects
    }

    /// Surviving (non-suspect) jobs.
    pub fn job_count(&self) -> usize {
        self.state.names.len() - self.state.dead
    }

    /// Eligible jobs (alive + integrity + availability).
    pub fn eligible_count(&self) -> usize {
        self.state.eligible.len()
    }

    /// Size column of the eligible population in name order — the input to
    /// [`crate::filter::stratified_sample_indices`], positionally aligned
    /// with what [`SampleCriteria::filter`] returns on the batch path.
    pub fn eligible_sizes(&self) -> Vec<usize> {
        self.state
            .eligible
            .iter()
            .map(|&i| self.state.size[i as usize] as usize)
            .collect()
    }

    /// Stratified sample positions over the eligible population, drawn
    /// straight from the size column — no job is materialized and no
    /// usize copy of the column is built. Bit-identical to
    /// [`crate::filter::stratified_sample`] over the batch path's
    /// materialized jobs.
    pub fn sample_eligible(&self, n: usize, seed: u64) -> Vec<usize> {
        crate::filter::stratified_sample_indices_from(
            self.state
                .eligible
                .iter()
                .map(|&i| self.state.size[i as usize] as usize),
            n,
            seed,
        )
    }

    /// Materialize the `pos`-th eligible job (positions as in
    /// [`StreamedTrace::eligible_sizes`]) by replaying its byte ranges.
    pub fn materialize_eligible(&mut self, pos: usize) -> Result<Job, TraceError> {
        let idx = self.state.eligible[pos];
        self.state.replay_job(&mut self.source, idx, true)
    }

    /// Total source bytes consumed by the scan.
    pub fn raw_bytes(&self) -> u64 {
        self.state.raw_bytes
    }

    /// Approximate heap footprint of the per-job metadata columns — the
    /// part of the engine that scales with job count.
    pub fn metadata_bytes(&self) -> usize {
        self.state.names.heap_bytes()
            + self.state.byte_start.capacity() * 8
            + self.state.byte_len.capacity() * 4
            + self.state.size.capacity() * 4
            + self.state.flags.capacity()
            + self.state.index.slots.capacity() * 4
            + self.state.eligible.capacity() * 4
    }

    /// Visit every surviving job in arrival order, materialized one at a
    /// time — the full-trace census path: per-job peak memory, O(1)
    /// retained.
    pub fn for_each_job(&mut self, mut f: impl FnMut(Job)) -> Result<(), TraceError> {
        for idx in 0..self.state.flags.len() as u32 {
            if self.state.flags[idx as usize] & DEAD == 0 {
                f(self.state.replay_job(&mut self.source, idx, true)?);
            }
        }
        Ok(())
    }

    /// Materialize every surviving job — test/equivalence support, not a
    /// memory-bounded path. Equals [`JobSet::from_tasks`] over the batch
    /// rows with suspect jobs dropped.
    pub fn materialize_all(&mut self) -> Result<JobSet, TraceError> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for idx in 0..self.state.flags.len() as u32 {
            if self.state.flags[idx as usize] & DEAD == 0 {
                jobs.push(self.state.replay_job(&mut self.source, idx, true)?);
            }
        }
        Ok(JobSet::from_jobs(jobs))
    }

    /// Drop accounting identical to
    /// [`SampleCriteria::filter_with_stats`] run on the batch path's
    /// suspect-stripped [`JobSet`]. Replays every alive job, so this is a
    /// reporting/test path, not a hot one.
    pub fn filter_stats(&mut self) -> Result<FilterStats, TraceError> {
        let mut stats = FilterStats::default();
        for name in &self.state.suspects {
            stats
                .dropped
                .insert(name.clone(), DropReason::QuarantineIncomplete);
        }
        let criteria = self.state.criteria.clone();
        let mut kept = 0usize;
        for idx in 0..self.state.flags.len() as u32 {
            if self.state.flags[idx as usize] & DEAD != 0 {
                continue;
            }
            let job = self.state.replay_job(&mut self.source, idx, true)?;
            if !criteria.integrity(&job) {
                stats.dropped.insert(job.name, DropReason::Integrity);
            } else if !criteria.availability(&job) {
                stats.dropped.insert(job.name, DropReason::Availability);
            } else {
                kept += 1;
            }
        }
        stats.kept = kept;
        stats.considered = self.job_count() + self.state.suspects.len();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const L1: &str = "M1,2,j_1000001,1,Terminated,100,200,100,0.5";
    const L2: &str = "R2_1,2,j_1000001,1,Terminated,200,300,100,0.5";
    const L3: &str = "M1,1,j_1000002,1,Terminated,150,250,50,0.25";

    fn scan_str(doc: &str) -> StreamedTrace<Cursor<Vec<u8>>> {
        StreamedTrace::scan(
            Cursor::new(doc.as_bytes().to_vec()),
            &ReadPolicy::Strict,
            &SampleCriteria::default(),
        )
        .unwrap()
    }

    #[test]
    fn name_index_fingerprint_and_wide_modes_agree() {
        // Drive a tiny-capped index through the fingerprint→wide rebuild
        // and check probes answer identically in both modes. Keys are the
        // hashes of their indices so `grow`'s `hash_of` can be a closure
        // over the same array the inserts used.
        let hashes: Vec<u64> = (0..64u64).map(splitmix64).collect();
        let mut fp_idx = NameIndex::with_fp_cap(16);
        let mut wide_idx = NameIndex::with_fp_cap(0);
        assert!(fp_idx.fp);
        for (i, &h) in hashes.iter().enumerate() {
            for index in [&mut fp_idx, &mut wide_idx] {
                if index.needs_grow() {
                    index.grow(|idx| hashes[idx as usize]);
                }
                match index.probe(h, |idx| hashes[idx as usize] == h) {
                    Ok(found) => panic!("fresh key {i} already present as {found}"),
                    Err(slot) => index.insert_at(slot, h, i as u32),
                }
            }
        }
        // 64 inserts crossed the fingerprint cap of 16: the first table
        // must have rebuilt into wide mode; the second never left it.
        assert!(!fp_idx.fp);
        assert!(!wide_idx.fp);
        for (i, &h) in hashes.iter().enumerate() {
            for index in [&fp_idx, &wide_idx] {
                assert_eq!(
                    index.lookup(h, |idx| hashes[idx as usize] == h),
                    Some(i as u32)
                );
            }
        }
        assert_eq!(fp_idx.lookup(splitmix64(999), |_| false), None);
    }

    #[test]
    fn name_index_fingerprint_survives_collisions() {
        // Two keys that land on the same slot *and* share the same top-8
        // fingerprint bits must still resolve through the eq callback.
        let a: u64 = 0x7f00_0000_0000_0000;
        let b: u64 = 0x7f00_0000_0000_0000 | 0x0001_0000; // same slot mod 65536, same fp
        let keys = [a, b];
        let mut index = NameIndex::new();
        for (i, &h) in keys.iter().enumerate() {
            match index.probe(h, |idx| keys[idx as usize] == h) {
                Ok(_) => panic!("fresh key already present"),
                Err(slot) => index.insert_at(slot, h, i as u32),
            }
        }
        assert_eq!(index.lookup(a, |idx| keys[idx as usize] == a), Some(0));
        assert_eq!(index.lookup(b, |idx| keys[idx as usize] == b), Some(1));
    }

    #[test]
    fn name_encoding_round_trips() {
        assert_eq!(encode_name("j_0"), Some(0));
        assert_eq!(encode_name("j_1000001"), Some(1_000_001));
        assert_eq!(encode_name("j_01"), None, "leading zero must stay textual");
        assert_eq!(encode_name("j_"), None);
        assert_eq!(encode_name("job_7"), None);
        assert_eq!(encode_name("j_12x"), None);
        assert_eq!(encode_name("j_99999999999999999999999"), None);
    }

    #[test]
    fn wide_numeric_names_route_through_the_big_table() {
        // u32::MAX - 1 collides with the BIG_NAME sentinel and u32::MAX
        // with ODD_NAME; both must survive the u32 column via the side
        // table, as must a genuinely 64-bit id. The straggler row for the
        // first job exercises index lookup through the same path.
        let names = [
            format!("j_{}", u32::MAX - 1),
            format!("j_{}", u32::MAX),
            format!("j_{}", u64::MAX - 1),
            "j_7".to_string(),
        ];
        let mut doc = String::new();
        for n in &names {
            doc.push_str(&format!("M1,2,{n},1,Terminated,100,200,100,0.5\n"));
        }
        doc.push_str(&format!(
            "R2_1,2,{},1,Terminated,200,300,100,0.5\n",
            names[0]
        ));
        let mut t = scan_str(&doc);
        assert_eq!(t.job_count(), 4);
        let set = t.materialize_all().unwrap();
        for n in &names {
            assert!(set.get(n).is_some(), "job {n} lost");
        }
        assert_eq!(set.get(&names[0]).unwrap().tasks.len(), 2);
    }

    #[test]
    fn contiguous_jobs_group_and_fold() {
        let mut t = scan_str(&format!("{L1}\n{L2}\n{L3}\n"));
        assert_eq!(t.job_count(), 2);
        assert_eq!(t.eligible_count(), 2);
        assert_eq!(t.eligible_sizes(), vec![2, 1]);
        let set = t.materialize_all().unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.jobs()[0].name, "j_1000001");
        assert_eq!(set.jobs()[0].size(), 2);
        let stats = t.stats();
        assert_eq!(stats.total_jobs, 2);
        assert_eq!(stats.dag_jobs, 2);
    }

    #[test]
    fn straggler_rows_merge_into_their_job() {
        // j_1000001 closes, j_1000002 interrupts, then a straggler row for
        // j_1000001 arrives out of order.
        let straggler = "R3_1,1,j_1000001,1,Terminated,300,400,100,0.5";
        let mut t = scan_str(&format!("{L1}\n{L2}\n{L3}\n{straggler}\n"));
        assert_eq!(t.job_count(), 2);
        let set = t.materialize_all().unwrap();
        let j = set.get("j_1000001").unwrap();
        assert_eq!(j.size(), 3);
        assert_eq!(j.tasks[2].task_name, "R3_1");
        assert_eq!(t.stats().size_histogram.get(&3), Some(&1));
    }

    #[test]
    fn scan_matches_batch_grouping_on_generated_trace() {
        let trace = crate::gen::TraceGenerator::new(crate::gen::GeneratorConfig {
            jobs: 200,
            seed: 5,
            ..Default::default()
        })
        .generate();
        let mut doc = Vec::new();
        csv::write_tasks(&mut doc, &trace.tasks).unwrap();
        let batch_set = JobSet::from_tasks(csv::read_tasks(&doc[..]).unwrap());
        let batch_stats = TraceStats::compute(&batch_set);
        let mut t = StreamedTrace::scan(
            Cursor::new(doc),
            &ReadPolicy::Strict,
            &SampleCriteria::default(),
        )
        .unwrap();
        assert_eq!(t.stats(), batch_stats);
        assert_eq!(t.materialize_all().unwrap(), batch_set);
        // The eligible population matches the batch filter in name order.
        let criteria = SampleCriteria::default();
        let batch_eligible: Vec<usize> = criteria
            .filter(&batch_set)
            .iter()
            .map(|j| j.size())
            .collect();
        assert_eq!(t.eligible_sizes(), batch_eligible);
    }

    #[test]
    fn strict_mode_aborts_like_the_batch_reader() {
        let doc = format!("{L1}\nnot,a,row\n");
        let err = StreamedTrace::scan(
            Cursor::new(doc.clone().into_bytes()),
            &ReadPolicy::Strict,
            &SampleCriteria::default(),
        )
        .err()
        .expect("strict scan must abort");
        let batch_err = csv::read_tasks(doc.as_bytes()).unwrap_err();
        assert_eq!(err, batch_err);
    }

    #[test]
    fn quarantined_row_kills_its_job() {
        // The bad row names j_1000001 → the job is a suspect and must
        // vanish, exactly like the batch CLI stripping suspect rows before
        // grouping.
        let bad = "M9,x,j_1000001,1,Terminated,1,2,3,4";
        let policy = ReadPolicy::Quarantine { max_bad: 8 };
        let mut t = StreamedTrace::scan(
            Cursor::new(format!("{L1}\n{L2}\n{bad}\n{L3}\n").into_bytes()),
            &policy,
            &SampleCriteria::default(),
        )
        .unwrap();
        assert_eq!(t.quarantine().rows_quarantined(), 1);
        assert_eq!(t.job_count(), 1);
        assert_eq!(t.suspects().iter().collect::<Vec<_>>(), vec!["j_1000001"]);
        let set = t.materialize_all().unwrap();
        assert!(set.get("j_1000001").is_none());
        assert_eq!(t.stats().total_jobs, 1);
        let q = t.quarantine();
        assert_eq!(q.rows_good + q.rows_quarantined(), q.rows_total);
    }

    #[test]
    fn filter_stats_accounts_suspects_and_reasons() {
        let bad = "M9,x,j_1000001,1,Terminated,1,2,3,4";
        // j_1000003 fails availability (start before the window margin).
        let early = "M1,1,j_1000003,1,Terminated,0,0,50,0.25";
        let policy = ReadPolicy::Quarantine { max_bad: 8 };
        let mut t = StreamedTrace::scan(
            Cursor::new(format!("{L1}\n{L2}\n{bad}\n{L3}\n{early}\n").into_bytes()),
            &policy,
            &SampleCriteria::default(),
        )
        .unwrap();
        let stats = t.filter_stats().unwrap();
        assert_eq!(stats.considered, 3);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped["j_1000001"], DropReason::QuarantineIncomplete);
        assert_eq!(stats.dropped["j_1000003"], DropReason::Availability);
    }

    #[test]
    fn name_index_survives_growth_with_odd_names() {
        let mut doc = String::new();
        for i in 0..500 {
            let name = if i % 7 == 0 {
                format!("weird-{i}")
            } else {
                format!("j_{}", 2_000_000 + i)
            };
            doc.push_str(&format!("M1,1,{name},1,Terminated,100,200,50,0.25\n"));
        }
        let mut t = scan_str(&doc);
        assert_eq!(t.job_count(), 500);
        let set = t.materialize_all().unwrap();
        assert_eq!(set.len(), 500);
        assert!(set.get("weird-0").is_some());
        assert!(set.get("j_2000001").is_some());
    }
}
