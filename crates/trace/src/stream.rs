//! Streaming single-pass trace ingestion under a bounded memory budget.
//!
//! The batch path ([`crate::csv::read_tasks_parallel_with_policy`] +
//! [`JobSet::from_tasks`]) materializes every task row of the trace before
//! grouping — fine at 100k jobs, hopeless at the full 4M. [`StreamedTrace`]
//! instead consumes the CSV once, front to back, exploiting the trace's
//! job-contiguity: rows of one job arrive together, so each job can be
//! assembled in a small rolling [`JobStore`], folded into a
//! [`StatsAccumulator`] and an eligibility flag, and *dropped* — what
//! survives per job is ~26 bytes of metadata (a numeric name key, the job's
//! byte range in the source, its size, and flags).
//!
//! Jobs are later *re-materialized on demand* by replaying their recorded
//! byte ranges through the same parser (the source must be `Read + Seek`),
//! which is how the stratified sample — picked from the size column alone,
//! see [`crate::filter::stratified_sample_indices`] — becomes concrete
//! [`Job`]s for the downstream pipeline.
//!
//! Two disruptions are handled without breaking bit-identity with the
//! batch path:
//!
//! * **Out-of-order stragglers** — a row for an already-closed job opens a
//!   correction: the extra byte range is recorded and, at finalize, the
//!   job's old contribution is retracted and the merged job (rows in
//!   document order, exactly as [`JobSet::from_tasks`] would have grouped
//!   them) is folded back in.
//! * **Quarantine verdicts** — a bad row implicates its job (see
//!   [`Quarantine::suspect_jobs`]); the implicated job is dropped entirely,
//!   matching the batch ingestion which deletes all rows of suspect jobs
//!   before grouping. A suspicion arriving after the job closed retracts
//!   its folded contribution at finalize.
//!
//! Retractions are exact because the accumulator's resource totals use
//! [`crate::fsum::ExactSum`]; everything else is integer counting.

use std::collections::{BTreeSet, HashMap};
use std::io::{BufReader, Read, Seek, SeekFrom};

use crate::csv::{self, RawLines};
use crate::filter::{DropReason, FilterStats, SampleCriteria};
use crate::quarantine::{self, Quarantine, QuarantinedRow, ReadPolicy};
use crate::stats::{StatsAccumulator, TraceStats};
use crate::store::JobStore;
use crate::{Job, JobSet, TraceError};

/// [`NameColumn::small`] sentinel for names that are not canonical
/// `j_<digits>` (the string lives in the odd-name side table).
const ODD_NAME: u32 = u32::MAX;
/// [`NameColumn::small`] sentinel for numeric names too large for 32 bits
/// (the value lives in the big-name side table).
const BIG_NAME: u32 = u32::MAX - 1;

/// Per-job flag bits.
const FOLDED: u8 = 1 << 0;
const DEAD: u8 = 1 << 1;
const ELIGIBLE: u8 = 1 << 2;
const DIRTY: u8 = 1 << 3;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Encode a canonical `j_<digits>` name (no leading zeros) as its numeric
/// value; anything else — including a value colliding with the sentinel —
/// stays a string in the odd-name side table.
fn encode_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("j_")?;
    if digits.is_empty() || digits.len() > 19 || (digits.len() > 1 && digits.starts_with('0')) {
        return None;
    }
    let mut v: u64 = 0;
    for b in digits.bytes() {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    if v == u64::MAX {
        None
    } else {
        Some(v)
    }
}

/// Per-job name column. Alibaba-style `j_<digits>` names are stored as
/// their numeric value — 4 bytes per job, since real trace job ids fit in
/// 32 bits — with two side tables for the exceptions: numerics past the
/// sentinel range, and non-canonical strings. At 4M jobs the column is
/// ~17 MB where a `Vec<String>` would cost hundreds.
#[derive(Debug)]
struct NameColumn {
    small: Vec<u32>,
    big: HashMap<u32, u64>,
    odd: HashMap<u32, String>,
}

impl NameColumn {
    fn new() -> NameColumn {
        NameColumn {
            small: Vec::new(),
            big: HashMap::new(),
            odd: HashMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.small.len()
    }

    /// Append the next job's name, returning its index hash.
    fn push(&mut self, name: &str) -> u64 {
        let idx = self.small.len() as u32;
        match encode_name(name) {
            Some(v) => {
                match u32::try_from(v) {
                    Ok(small) if small < BIG_NAME => self.small.push(small),
                    _ => {
                        self.small.push(BIG_NAME);
                        self.big.insert(idx, v);
                    }
                }
                splitmix64(v)
            }
            None => {
                self.small.push(ODD_NAME);
                self.odd.insert(idx, name.to_string());
                fnv1a(name.as_bytes())
            }
        }
    }

    /// The name's numeric value, or `None` for odd names.
    fn numeric(&self, idx: u32) -> Option<u64> {
        match self.small[idx as usize] {
            ODD_NAME => None,
            BIG_NAME => Some(self.big[&idx]),
            v => Some(u64::from(v)),
        }
    }

    fn hash(&self, idx: u32) -> u64 {
        match self.numeric(idx) {
            Some(v) => splitmix64(v),
            None => fnv1a(self.odd[&idx].as_bytes()),
        }
    }

    fn is(&self, idx: u32, name: &str) -> bool {
        match encode_name(name) {
            Some(v) => self.numeric(idx) == Some(v),
            None => {
                self.small[idx as usize] == ODD_NAME
                    && self.odd.get(&idx).is_some_and(|n| n == name)
            }
        }
    }

    fn string(&self, idx: u32) -> String {
        match self.numeric(idx) {
            Some(v) => format!("j_{v}"),
            None => self.odd[&idx].clone(),
        }
    }

    /// Write job `idx`'s name into `buf` (numeric names) or borrow it from
    /// the odd-name table, returning the bytes to compare.
    fn bytes<'a>(&'a self, idx: u32, buf: &'a mut [u8; 22]) -> &'a [u8] {
        match self.numeric(idx) {
            None => self.odd[&idx].as_bytes(),
            Some(mut v) => {
                buf[0] = b'j';
                buf[1] = b'_';
                let mut tmp = [0u8; 20];
                let mut i = tmp.len();
                loop {
                    i -= 1;
                    tmp[i] = b'0' + (v % 10) as u8;
                    v /= 10;
                    if v == 0 {
                        break;
                    }
                }
                let digits = tmp.len() - i;
                buf[2..2 + digits].copy_from_slice(&tmp[i..]);
                &buf[..2 + digits]
            }
        }
    }

    /// Heap footprint of the per-job column (side tables excluded — they
    /// hold only the rare exceptions).
    fn heap_bytes(&self) -> usize {
        self.small.capacity() * 4
    }
}

/// Open-addressing hash set of job indices keyed by job name, 4 bytes per
/// slot — at 4M jobs this is ~32 MB where a `HashMap<String, u32>` would
/// cost hundreds. The engine supplies name equality and re-hashing, so the
/// table itself stores nothing but `index + 1` (0 = empty).
#[derive(Debug)]
struct NameIndex {
    slots: Vec<u32>,
    len: usize,
}

impl NameIndex {
    fn new() -> NameIndex {
        NameIndex {
            slots: vec![0; 1 << 16],
            len: 0,
        }
    }

    fn lookup(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut pos = hash as usize & mask;
        loop {
            match self.slots[pos] {
                0 => return None,
                stored => {
                    let idx = stored - 1;
                    if eq(idx) {
                        return Some(idx);
                    }
                }
            }
            pos = (pos + 1) & mask;
        }
    }

    /// True when one more insert would push the load factor past 0.7.
    fn needs_grow(&self) -> bool {
        (self.len + 1) * 10 >= self.slots.len() * 7
    }

    /// Double capacity, re-placing every stored index by `hash_of(idx)`.
    ///
    /// Every index in `0..len` is stored exactly once, so the table can be
    /// rebuilt from the indices alone — the old table is freed *before* the
    /// new one is allocated. At millions of jobs the grow moment is the
    /// scan's peak-RSS point, and two tables coexisting would double the
    /// index's contribution to it.
    fn grow(&mut self, hash_of: impl Fn(u32) -> u64) {
        let new_cap = self.slots.len() * 2;
        self.slots = Vec::new();
        let mut slots = vec![0u32; new_cap];
        let mask = new_cap - 1;
        for idx in 0..self.len as u32 {
            let mut pos = hash_of(idx) as usize & mask;
            while slots[pos] != 0 {
                pos = (pos + 1) & mask;
            }
            slots[pos] = idx + 1;
        }
        self.slots = slots;
    }

    /// Insert a new index under `hash`. The caller has verified absence and
    /// capacity ([`NameIndex::needs_grow`]).
    fn insert(&mut self, hash: u64, idx: u32) {
        let mask = self.slots.len() - 1;
        let mut pos = hash as usize & mask;
        while self.slots[pos] != 0 {
            pos = (pos + 1) & mask;
        }
        self.slots[pos] = idx + 1;
        self.len += 1;
    }
}

/// What the scan is currently accumulating.
enum Open {
    /// A job not seen before: rows collect in the rolling [`JobStore`].
    New { start: u64, end: u64 },
    /// An out-of-order straggler batch for a closed job: only the byte
    /// range is tracked; rows are recovered by replay at finalize.
    Straggler { idx: u32, start: u64, end: u64 },
}

/// Everything the scan accumulates — split from the source so the borrow
/// of the source (held by the line reader during the scan, or by the
/// replay reader during materialization) never aliases the metadata.
struct ScanState {
    policy: ReadPolicy,
    criteria: SampleCriteria,
    interner: crate::Interner,
    /// Canonical name per job.
    names: NameColumn,
    /// Primary byte range of each job in the source.
    byte_start: Vec<u64>,
    byte_len: Vec<u32>,
    /// Task count per job (post-merge for corrected jobs).
    size: Vec<u32>,
    flags: Vec<u8>,
    /// Straggler byte ranges, in document order, for dirty jobs.
    extras: HashMap<u32, Vec<(u64, u32)>>,
    index: NameIndex,
    suspects: BTreeSet<String>,
    acc: StatsAccumulator,
    quarantine: Quarantine,
    /// Alive eligible job indices in name order (the population the
    /// stratified sampler sees).
    eligible: Vec<u32>,
    dead: usize,
    raw_bytes: u64,
}

impl ScanState {
    fn new(policy: &ReadPolicy, criteria: &SampleCriteria) -> ScanState {
        ScanState {
            policy: policy.clone(),
            criteria: criteria.clone(),
            interner: crate::Interner::new(),
            names: NameColumn::new(),
            byte_start: Vec::new(),
            byte_len: Vec::new(),
            size: Vec::new(),
            flags: Vec::new(),
            extras: HashMap::new(),
            index: NameIndex::new(),
            suspects: BTreeSet::new(),
            acc: StatsAccumulator::new(),
            quarantine: Quarantine::default(),
            eligible: Vec::new(),
            dead: 0,
            raw_bytes: 0,
        }
    }

    fn name_is(&self, idx: u32, name: &str) -> bool {
        self.names.is(idx, name)
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        let hash = match encode_name(name) {
            Some(v) => splitmix64(v),
            None => fnv1a(name.as_bytes()),
        };
        self.index.lookup(hash, |idx| self.name_is(idx, name))
    }

    /// The job's name, decoded.
    fn name_string(&self, idx: u32) -> String {
        self.names.string(idx)
    }

    fn kill(&mut self, idx: u32) {
        if self.flags[idx as usize] & DEAD == 0 {
            self.flags[idx as usize] |= DEAD;
            self.dead += 1;
        }
    }

    /// React to a name becoming suspect mid-scan. Open state referencing
    /// the name is discarded; a closed job is marked dead for
    /// finalize-time retraction. Returns the (possibly cleared) open state.
    fn on_new_suspect(
        &mut self,
        name: &str,
        open: Option<Open>,
        store: &mut JobStore,
    ) -> Option<Open> {
        match open {
            Some(Open::New { .. }) if store.open_name() == Some(name) => {
                store.abandon_open();
                None
            }
            Some(Open::Straggler { idx, .. }) if self.name_is(idx, name) => {
                self.kill(idx);
                None
            }
            other => {
                if let Some(idx) = self.lookup(name) {
                    self.kill(idx);
                }
                other
            }
        }
    }

    /// Seal whatever was accumulating. A new job gets its index, metadata
    /// row, eligibility verdict, and statistics fold — then its rows are
    /// dropped from the store. A straggler batch just records its range.
    fn close_open(&mut self, open: Open, store: &mut JobStore) -> Result<(), TraceError> {
        match open {
            Open::New { start, end } => {
                let view = store.open_view().expect("Open::New implies an open job");
                let len = u32::try_from(end - start).map_err(|_| {
                    TraceError::Io(format!(
                        "job '{}' spans more than 4 GiB of trace",
                        view.name
                    ))
                })?;
                let facts = view.facts();
                let eligible = view.eligible(&self.criteria);
                let size = view.size() as u32;
                let idx = self.names.len() as u32;
                let hash = self.names.push(view.name);
                self.byte_start.push(start);
                self.byte_len.push(len);
                self.size.push(size);
                self.flags
                    .push(FOLDED | if eligible { ELIGIBLE } else { 0 });
                self.acc.add_facts(&facts);
                if self.index.needs_grow() {
                    let names = &self.names;
                    self.index.grow(|i| names.hash(i));
                }
                self.index.insert(hash, idx);
                store.abandon_open();
            }
            Open::Straggler { idx, start, end } => {
                let len = u32::try_from(end - start).map_err(|_| {
                    TraceError::Io("straggler batch spans more than 4 GiB of trace".to_string())
                })?;
                self.extras.entry(idx).or_default().push((start, len));
                self.flags[idx as usize] |= DIRTY;
            }
        }
        Ok(())
    }

    /// Re-read one recorded byte range, appending the rows that belong to
    /// `name` (skipping blanks, rows of other jobs, and rows the scan
    /// quarantined) to `tasks`.
    fn replay_range<R: Read + Seek>(
        &mut self,
        source: &mut R,
        start: u64,
        len: u32,
        name: &str,
        tasks: &mut Vec<crate::TaskRecord>,
    ) -> Result<(), TraceError> {
        source.seek(SeekFrom::Start(start))?;
        let take = source.take(u64::from(len));
        let mut lines = RawLines::new(BufReader::new(take));
        let mut buf = Vec::new();
        while lines.next_line_into(&mut buf)?.is_some() {
            if buf.is_empty() {
                continue;
            }
            let Ok(text) = std::str::from_utf8(&buf) else {
                continue;
            };
            let Ok(parts) = csv::parse_task_parts(0, text) else {
                continue;
            };
            let Ok(parts) =
                csv::classify_row(&self.policy, 0, parts, |p| (p.start_time, p.end_time))
            else {
                continue;
            };
            if parts.job_name == name {
                tasks.push(parts.to_record(&mut self.interner));
            }
        }
        Ok(())
    }

    /// Materialize one job by replaying its byte range(s) — primary only,
    /// or with straggler extras merged in document order.
    fn replay_job<R: Read + Seek>(
        &mut self,
        source: &mut R,
        idx: u32,
        with_extras: bool,
    ) -> Result<Job, TraceError> {
        let name = self.name_string(idx);
        let mut tasks = Vec::new();
        let (start, len) = (self.byte_start[idx as usize], self.byte_len[idx as usize]);
        self.replay_range(source, start, len, &name, &mut tasks)?;
        if with_extras {
            if let Some(ranges) = self.extras.get(&idx).cloned() {
                for (s, l) in ranges {
                    self.replay_range(source, s, l, &name, &mut tasks)?;
                }
            }
        }
        Ok(Job { name, tasks })
    }

    /// Apply deferred corrections, then freeze the eligible population in
    /// name order.
    fn finalize<R: Read + Seek>(&mut self, source: &mut R) -> Result<(), TraceError> {
        for idx in 0..self.flags.len() as u32 {
            let f = self.flags[idx as usize];
            if f & DEAD != 0 {
                // Retract the folded contribution (primary range only —
                // straggler extras are never folded during the scan); the
                // job vanishes, like the batch path dropping every row of
                // a suspect job.
                if f & FOLDED != 0 {
                    let old = self.replay_job(source, idx, false)?;
                    self.acc.remove_job(&old);
                    self.flags[idx as usize] &= !FOLDED;
                }
            } else if f & DIRTY != 0 {
                let old = self.replay_job(source, idx, false)?;
                let merged = self.replay_job(source, idx, true)?;
                self.acc.remove_job(&old);
                self.acc.add_job(&merged);
                self.size[idx as usize] = merged.size() as u32;
                if self.criteria.accepts(&merged) {
                    self.flags[idx as usize] |= ELIGIBLE;
                } else {
                    self.flags[idx as usize] &= !ELIGIBLE;
                }
            }
        }
        let mut eligible: Vec<u32> = (0..self.flags.len() as u32)
            .filter(|&i| {
                let f = self.flags[i as usize];
                f & DEAD == 0 && f & ELIGIBLE != 0
            })
            .collect();
        let names = &self.names;
        eligible.sort_unstable_by(|&a, &b| {
            let (mut ba, mut bb) = ([0u8; 22], [0u8; 22]);
            let sa = names.bytes(a, &mut ba).to_vec();
            let sb = names.bytes(b, &mut bb);
            sa.as_slice().cmp(sb)
        });
        self.eligible = eligible;
        Ok(())
    }
}

/// The forward scan: group rows into jobs as they complete, fold each into
/// the running statistics, record byte ranges, and drop the rows.
fn run_scan<R: Read + Seek>(
    source: &mut R,
    state: &mut ScanState,
    buffer: usize,
) -> Result<(), TraceError> {
    source.seek(SeekFrom::Start(0))?;
    let mut lines = RawLines::new(BufReader::with_capacity(buffer.max(16), source));
    let mut store = JobStore::new();
    let mut open: Option<Open> = None;
    let mut buf: Vec<u8> = Vec::new();

    while let Some((offset, consumed)) = lines.next_line_into(&mut buf)? {
        state.raw_bytes = offset + consumed;
        state.quarantine.lines_total += 1;
        let line_no = state.quarantine.lines_total;
        if buf.is_empty() {
            continue;
        }
        state.quarantine.rows_total += 1;
        let verdict = match std::str::from_utf8(&buf) {
            Err(_) => Err(TraceError::Io(csv::UTF8_ERR.to_string())),
            Ok(text) => csv::parse_task_parts(line_no, text).and_then(|p| {
                csv::classify_row(&state.policy, line_no, p, |p| (p.start_time, p.end_time))
            }),
        };
        let parts = match verdict {
            Ok(parts) => parts,
            Err(error) => {
                if !state.policy.is_quarantine()
                    || state.quarantine.rows.len() >= state.policy.max_bad()
                {
                    return Err(error);
                }
                let job_name = quarantine::job_name_of(&buf);
                state.quarantine.rows.push(QuarantinedRow {
                    line: line_no,
                    byte_offset: offset,
                    error,
                    excerpt: quarantine::excerpt_of(&buf),
                    job_name: job_name.clone(),
                });
                if let Some(name) = job_name {
                    if state.suspects.insert(name.clone()) {
                        open = state.on_new_suspect(&name, open, &mut store);
                    }
                }
                continue;
            }
        };
        state.quarantine.rows_good += 1;
        if !state.suspects.is_empty() && state.suspects.contains(parts.job_name) {
            continue;
        }
        // Fast path: the row continues whatever is open.
        match &mut open {
            Some(Open::New { end, .. }) if store.open_name() == Some(parts.job_name) => {
                store.push_parts(&parts);
                *end = offset + consumed;
                continue;
            }
            Some(Open::Straggler { idx, end, .. }) if state.name_is(*idx, parts.job_name) => {
                *end = offset + consumed;
                continue;
            }
            _ => {}
        }
        // The row opens something else: close what was open first.
        if let Some(prev) = open.take() {
            state.close_open(prev, &mut store)?;
        }
        open = Some(match state.lookup(parts.job_name) {
            // A closed job's name re-appearing: an out-of-order straggler
            // batch (the job cannot be dead here — dead jobs are suspects,
            // and suspect rows were dropped above).
            Some(idx) => Open::Straggler {
                idx,
                start: offset,
                end: offset + consumed,
            },
            None => {
                store.begin_job(parts.job_name);
                store.push_parts(&parts);
                Open::New {
                    start: offset,
                    end: offset + consumed,
                }
            }
        });
    }
    if let Some(prev) = open.take() {
        state.close_open(prev, &mut store)?;
    }
    Ok(())
}

/// A fully scanned trace: per-job metadata columns, exact running
/// statistics, quarantine accounting, and the (seekable) source for
/// on-demand job materialization.
pub struct StreamedTrace<R> {
    source: R,
    state: ScanState,
}

impl<R: Read + Seek> StreamedTrace<R> {
    /// Scan `source` end to end with the default buffer size.
    pub fn scan(
        source: R,
        policy: &ReadPolicy,
        criteria: &SampleCriteria,
    ) -> Result<StreamedTrace<R>, TraceError> {
        Self::scan_with_buffer(source, policy, criteria, 1 << 20)
    }

    /// Scan with an explicit buffer capacity — exposed so the property
    /// tests can force every possible chunk split.
    pub fn scan_with_buffer(
        mut source: R,
        policy: &ReadPolicy,
        criteria: &SampleCriteria,
        buffer: usize,
    ) -> Result<StreamedTrace<R>, TraceError> {
        let mut state = ScanState::new(policy, criteria);
        run_scan(&mut source, &mut state, buffer)?;
        state.finalize(&mut source)?;
        Ok(StreamedTrace { source, state })
    }

    /// Trace-level statistics over surviving jobs — bit-identical to
    /// [`TraceStats::compute`] on the batch-ingested [`JobSet`].
    pub fn stats(&self) -> TraceStats {
        self.state.acc.finish()
    }

    /// Quarantine accounting for the scan.
    pub fn quarantine(&self) -> &Quarantine {
        &self.state.quarantine
    }

    /// Jobs implicated by quarantined rows (dropped from every result).
    pub fn suspects(&self) -> &BTreeSet<String> {
        &self.state.suspects
    }

    /// Surviving (non-suspect) jobs.
    pub fn job_count(&self) -> usize {
        self.state.names.len() - self.state.dead
    }

    /// Eligible jobs (alive + integrity + availability).
    pub fn eligible_count(&self) -> usize {
        self.state.eligible.len()
    }

    /// Size column of the eligible population in name order — the input to
    /// [`crate::filter::stratified_sample_indices`], positionally aligned
    /// with what [`SampleCriteria::filter`] returns on the batch path.
    pub fn eligible_sizes(&self) -> Vec<usize> {
        self.state
            .eligible
            .iter()
            .map(|&i| self.state.size[i as usize] as usize)
            .collect()
    }

    /// Stratified sample positions over the eligible population, drawn
    /// straight from the size column — no job is materialized and no
    /// usize copy of the column is built. Bit-identical to
    /// [`crate::filter::stratified_sample`] over the batch path's
    /// materialized jobs.
    pub fn sample_eligible(&self, n: usize, seed: u64) -> Vec<usize> {
        crate::filter::stratified_sample_indices_from(
            self.state
                .eligible
                .iter()
                .map(|&i| self.state.size[i as usize] as usize),
            n,
            seed,
        )
    }

    /// Materialize the `pos`-th eligible job (positions as in
    /// [`StreamedTrace::eligible_sizes`]) by replaying its byte ranges.
    pub fn materialize_eligible(&mut self, pos: usize) -> Result<Job, TraceError> {
        let idx = self.state.eligible[pos];
        self.state.replay_job(&mut self.source, idx, true)
    }

    /// Total source bytes consumed by the scan.
    pub fn raw_bytes(&self) -> u64 {
        self.state.raw_bytes
    }

    /// Approximate heap footprint of the per-job metadata columns — the
    /// part of the engine that scales with job count.
    pub fn metadata_bytes(&self) -> usize {
        self.state.names.heap_bytes()
            + self.state.byte_start.capacity() * 8
            + self.state.byte_len.capacity() * 4
            + self.state.size.capacity() * 4
            + self.state.flags.capacity()
            + self.state.index.slots.capacity() * 4
            + self.state.eligible.capacity() * 4
    }

    /// Visit every surviving job in arrival order, materialized one at a
    /// time — the full-trace census path: per-job peak memory, O(1)
    /// retained.
    pub fn for_each_job(&mut self, mut f: impl FnMut(Job)) -> Result<(), TraceError> {
        for idx in 0..self.state.flags.len() as u32 {
            if self.state.flags[idx as usize] & DEAD == 0 {
                f(self.state.replay_job(&mut self.source, idx, true)?);
            }
        }
        Ok(())
    }

    /// Materialize every surviving job — test/equivalence support, not a
    /// memory-bounded path. Equals [`JobSet::from_tasks`] over the batch
    /// rows with suspect jobs dropped.
    pub fn materialize_all(&mut self) -> Result<JobSet, TraceError> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for idx in 0..self.state.flags.len() as u32 {
            if self.state.flags[idx as usize] & DEAD == 0 {
                jobs.push(self.state.replay_job(&mut self.source, idx, true)?);
            }
        }
        Ok(JobSet::from_jobs(jobs))
    }

    /// Drop accounting identical to
    /// [`SampleCriteria::filter_with_stats`] run on the batch path's
    /// suspect-stripped [`JobSet`]. Replays every alive job, so this is a
    /// reporting/test path, not a hot one.
    pub fn filter_stats(&mut self) -> Result<FilterStats, TraceError> {
        let mut stats = FilterStats::default();
        for name in &self.state.suspects {
            stats
                .dropped
                .insert(name.clone(), DropReason::QuarantineIncomplete);
        }
        let criteria = self.state.criteria.clone();
        let mut kept = 0usize;
        for idx in 0..self.state.flags.len() as u32 {
            if self.state.flags[idx as usize] & DEAD != 0 {
                continue;
            }
            let job = self.state.replay_job(&mut self.source, idx, true)?;
            if !criteria.integrity(&job) {
                stats.dropped.insert(job.name, DropReason::Integrity);
            } else if !criteria.availability(&job) {
                stats.dropped.insert(job.name, DropReason::Availability);
            } else {
                kept += 1;
            }
        }
        stats.kept = kept;
        stats.considered = self.job_count() + self.state.suspects.len();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const L1: &str = "M1,2,j_1000001,1,Terminated,100,200,100,0.5";
    const L2: &str = "R2_1,2,j_1000001,1,Terminated,200,300,100,0.5";
    const L3: &str = "M1,1,j_1000002,1,Terminated,150,250,50,0.25";

    fn scan_str(doc: &str) -> StreamedTrace<Cursor<Vec<u8>>> {
        StreamedTrace::scan(
            Cursor::new(doc.as_bytes().to_vec()),
            &ReadPolicy::Strict,
            &SampleCriteria::default(),
        )
        .unwrap()
    }

    #[test]
    fn name_encoding_round_trips() {
        assert_eq!(encode_name("j_0"), Some(0));
        assert_eq!(encode_name("j_1000001"), Some(1_000_001));
        assert_eq!(encode_name("j_01"), None, "leading zero must stay textual");
        assert_eq!(encode_name("j_"), None);
        assert_eq!(encode_name("job_7"), None);
        assert_eq!(encode_name("j_12x"), None);
        assert_eq!(encode_name("j_99999999999999999999999"), None);
    }

    #[test]
    fn wide_numeric_names_route_through_the_big_table() {
        // u32::MAX - 1 collides with the BIG_NAME sentinel and u32::MAX
        // with ODD_NAME; both must survive the u32 column via the side
        // table, as must a genuinely 64-bit id. The straggler row for the
        // first job exercises index lookup through the same path.
        let names = [
            format!("j_{}", u32::MAX - 1),
            format!("j_{}", u32::MAX),
            format!("j_{}", u64::MAX - 1),
            "j_7".to_string(),
        ];
        let mut doc = String::new();
        for n in &names {
            doc.push_str(&format!("M1,2,{n},1,Terminated,100,200,100,0.5\n"));
        }
        doc.push_str(&format!(
            "R2_1,2,{},1,Terminated,200,300,100,0.5\n",
            names[0]
        ));
        let mut t = scan_str(&doc);
        assert_eq!(t.job_count(), 4);
        let set = t.materialize_all().unwrap();
        for n in &names {
            assert!(set.get(n).is_some(), "job {n} lost");
        }
        assert_eq!(set.get(&names[0]).unwrap().tasks.len(), 2);
    }

    #[test]
    fn contiguous_jobs_group_and_fold() {
        let mut t = scan_str(&format!("{L1}\n{L2}\n{L3}\n"));
        assert_eq!(t.job_count(), 2);
        assert_eq!(t.eligible_count(), 2);
        assert_eq!(t.eligible_sizes(), vec![2, 1]);
        let set = t.materialize_all().unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.jobs()[0].name, "j_1000001");
        assert_eq!(set.jobs()[0].size(), 2);
        let stats = t.stats();
        assert_eq!(stats.total_jobs, 2);
        assert_eq!(stats.dag_jobs, 2);
    }

    #[test]
    fn straggler_rows_merge_into_their_job() {
        // j_1000001 closes, j_1000002 interrupts, then a straggler row for
        // j_1000001 arrives out of order.
        let straggler = "R3_1,1,j_1000001,1,Terminated,300,400,100,0.5";
        let mut t = scan_str(&format!("{L1}\n{L2}\n{L3}\n{straggler}\n"));
        assert_eq!(t.job_count(), 2);
        let set = t.materialize_all().unwrap();
        let j = set.get("j_1000001").unwrap();
        assert_eq!(j.size(), 3);
        assert_eq!(j.tasks[2].task_name, "R3_1");
        assert_eq!(t.stats().size_histogram.get(&3), Some(&1));
    }

    #[test]
    fn scan_matches_batch_grouping_on_generated_trace() {
        let trace = crate::gen::TraceGenerator::new(crate::gen::GeneratorConfig {
            jobs: 200,
            seed: 5,
            ..Default::default()
        })
        .generate();
        let mut doc = Vec::new();
        csv::write_tasks(&mut doc, &trace.tasks).unwrap();
        let batch_set = JobSet::from_tasks(csv::read_tasks(&doc[..]).unwrap());
        let batch_stats = TraceStats::compute(&batch_set);
        let mut t = StreamedTrace::scan(
            Cursor::new(doc),
            &ReadPolicy::Strict,
            &SampleCriteria::default(),
        )
        .unwrap();
        assert_eq!(t.stats(), batch_stats);
        assert_eq!(t.materialize_all().unwrap(), batch_set);
        // The eligible population matches the batch filter in name order.
        let criteria = SampleCriteria::default();
        let batch_eligible: Vec<usize> = criteria
            .filter(&batch_set)
            .iter()
            .map(|j| j.size())
            .collect();
        assert_eq!(t.eligible_sizes(), batch_eligible);
    }

    #[test]
    fn strict_mode_aborts_like_the_batch_reader() {
        let doc = format!("{L1}\nnot,a,row\n");
        let err = StreamedTrace::scan(
            Cursor::new(doc.clone().into_bytes()),
            &ReadPolicy::Strict,
            &SampleCriteria::default(),
        )
        .err()
        .expect("strict scan must abort");
        let batch_err = csv::read_tasks(doc.as_bytes()).unwrap_err();
        assert_eq!(err, batch_err);
    }

    #[test]
    fn quarantined_row_kills_its_job() {
        // The bad row names j_1000001 → the job is a suspect and must
        // vanish, exactly like the batch CLI stripping suspect rows before
        // grouping.
        let bad = "M9,x,j_1000001,1,Terminated,1,2,3,4";
        let policy = ReadPolicy::Quarantine { max_bad: 8 };
        let mut t = StreamedTrace::scan(
            Cursor::new(format!("{L1}\n{L2}\n{bad}\n{L3}\n").into_bytes()),
            &policy,
            &SampleCriteria::default(),
        )
        .unwrap();
        assert_eq!(t.quarantine().rows_quarantined(), 1);
        assert_eq!(t.job_count(), 1);
        assert_eq!(t.suspects().iter().collect::<Vec<_>>(), vec!["j_1000001"]);
        let set = t.materialize_all().unwrap();
        assert!(set.get("j_1000001").is_none());
        assert_eq!(t.stats().total_jobs, 1);
        let q = t.quarantine();
        assert_eq!(q.rows_good + q.rows_quarantined(), q.rows_total);
    }

    #[test]
    fn filter_stats_accounts_suspects_and_reasons() {
        let bad = "M9,x,j_1000001,1,Terminated,1,2,3,4";
        // j_1000003 fails availability (start before the window margin).
        let early = "M1,1,j_1000003,1,Terminated,0,0,50,0.25";
        let policy = ReadPolicy::Quarantine { max_bad: 8 };
        let mut t = StreamedTrace::scan(
            Cursor::new(format!("{L1}\n{L2}\n{bad}\n{L3}\n{early}\n").into_bytes()),
            &policy,
            &SampleCriteria::default(),
        )
        .unwrap();
        let stats = t.filter_stats().unwrap();
        assert_eq!(stats.considered, 3);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped["j_1000001"], DropReason::QuarantineIncomplete);
        assert_eq!(stats.dropped["j_1000003"], DropReason::Availability);
    }

    #[test]
    fn name_index_survives_growth_with_odd_names() {
        let mut doc = String::new();
        for i in 0..500 {
            let name = if i % 7 == 0 {
                format!("weird-{i}")
            } else {
                format!("j_{}", 2_000_000 + i)
            };
            doc.push_str(&format!("M1,1,{name},1,Terminated,100,200,50,0.25\n"));
        }
        let mut t = scan_str(&doc);
        assert_eq!(t.job_count(), 500);
        let set = t.materialize_all().unwrap();
        assert_eq!(set.len(), 500);
        assert!(set.get("weird-0").is_some());
        assert!(set.get("j_2000001").is_some());
    }
}
