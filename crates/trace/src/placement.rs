//! Job-task-node placement analysis.
//!
//! The paper's second contribution is the discovery of *job-task-node*
//! dependency patterns: how a job's tasks and instances spread over cluster
//! machines, and how many jobs co-locate on a node — the operational facts
//! a dependency-aware scheduler must respect. This module recomputes those
//! statistics from `batch_instance` rows.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::schema::InstanceRecord;

/// Placement statistics over a set of instance rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Jobs with at least one instance row.
    pub jobs: usize,
    /// Distinct machines touched by any instance.
    pub machines: usize,
    /// Total instance rows analyzed.
    pub instances: usize,
    /// Mean distinct machines per job (the job's *node fan-out*).
    pub mean_machines_per_job: f64,
    /// Largest node fan-out observed.
    pub max_machines_per_job: usize,
    /// Mean distinct jobs per machine (co-location degree).
    pub mean_jobs_per_machine: f64,
    /// Largest co-location degree observed.
    pub max_jobs_per_machine: usize,
    /// `machines-per-job → job count` histogram.
    pub fanout_histogram: BTreeMap<usize, usize>,
}

impl PlacementStats {
    /// Compute placement statistics from instance rows.
    pub fn compute(instances: &[InstanceRecord]) -> PlacementStats {
        let mut machines_by_job: HashMap<&str, HashSet<&str>> = HashMap::new();
        let mut jobs_by_machine: HashMap<&str, HashSet<&str>> = HashMap::new();
        for inst in instances {
            machines_by_job
                .entry(inst.job_name.as_str())
                .or_default()
                .insert(inst.machine_id.as_str());
            jobs_by_machine
                .entry(inst.machine_id.as_str())
                .or_default()
                .insert(inst.job_name.as_str());
        }

        let jobs = machines_by_job.len();
        let machines = jobs_by_machine.len();
        let mut fanout_histogram: BTreeMap<usize, usize> = BTreeMap::new();
        let mut fanout_sum = 0usize;
        let mut fanout_max = 0usize;
        for ms in machines_by_job.values() {
            let f = ms.len();
            *fanout_histogram.entry(f).or_insert(0) += 1;
            fanout_sum += f;
            fanout_max = fanout_max.max(f);
        }
        let mut coloc_sum = 0usize;
        let mut coloc_max = 0usize;
        for js in jobs_by_machine.values() {
            coloc_sum += js.len();
            coloc_max = coloc_max.max(js.len());
        }

        PlacementStats {
            jobs,
            machines,
            instances: instances.len(),
            mean_machines_per_job: if jobs > 0 {
                fanout_sum as f64 / jobs as f64
            } else {
                0.0
            },
            max_machines_per_job: fanout_max,
            mean_jobs_per_machine: if machines > 0 {
                coloc_sum as f64 / machines as f64
            } else {
                0.0
            },
            max_jobs_per_machine: coloc_max,
            fanout_histogram,
        }
    }

    /// Human-readable rendering for reports.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "jobs with instances:   {}", self.jobs).unwrap();
        writeln!(s, "machines touched:      {}", self.machines).unwrap();
        writeln!(s, "instance rows:         {}", self.instances).unwrap();
        writeln!(
            s,
            "machines per job:      mean {:.1}, max {}",
            self.mean_machines_per_job, self.max_machines_per_job
        )
        .unwrap();
        writeln!(
            s,
            "co-located jobs/node:  mean {:.1}, max {}",
            self.mean_jobs_per_machine, self.max_jobs_per_machine
        )
        .unwrap();
        s
    }
}

/// Distinct machines used by each job, keyed by job name (sorted map for
/// deterministic iteration).
pub fn machines_per_job(instances: &[InstanceRecord]) -> BTreeMap<String, usize> {
    let mut by_job: BTreeMap<String, HashSet<&str>> = BTreeMap::new();
    for inst in instances {
        by_job
            .entry(inst.job_name.clone())
            .or_default()
            .insert(inst.machine_id.as_str());
    }
    by_job.into_iter().map(|(j, ms)| (j, ms.len())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};
    use crate::schema::Status;

    fn inst(job: &str, task: &str, machine: &str) -> InstanceRecord {
        InstanceRecord {
            instance_name: format!("{job}_{task}_{machine}"),
            task_name: task.into(),
            job_name: job.into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 1,
            end_time: 2,
            machine_id: machine.into(),
            seq_no: 1,
            total_seq_no: 1,
            cpu_avg: 10.0,
            cpu_max: 20.0,
            mem_avg: 0.1,
            mem_max: 0.2,
        }
    }

    #[test]
    fn hand_built_counts() {
        let rows = vec![
            inst("j_1", "M1", "m_1"),
            inst("j_1", "M1", "m_2"),
            inst("j_1", "R2_1", "m_1"),
            inst("j_2", "M1", "m_2"),
        ];
        let s = PlacementStats::compute(&rows);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.machines, 2);
        assert_eq!(s.instances, 4);
        // j_1 uses 2 machines, j_2 uses 1.
        assert_eq!(s.mean_machines_per_job, 1.5);
        assert_eq!(s.max_machines_per_job, 2);
        // m_1 hosts 1 job, m_2 hosts 2.
        assert_eq!(s.mean_jobs_per_machine, 1.5);
        assert_eq!(s.max_jobs_per_machine, 2);
        assert_eq!(s.fanout_histogram.get(&2), Some(&1));
        assert!(s.render().contains("machines per job"));
        let mpj = machines_per_job(&rows);
        assert_eq!(mpj.get("j_1"), Some(&2));
    }

    #[test]
    fn empty_instances() {
        let s = PlacementStats::compute(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_machines_per_job, 0.0);
    }

    #[test]
    fn generated_trace_placement_sane() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 150,
            seed: 8,
            emit_instances: true,
            ..Default::default()
        })
        .generate();
        let s = PlacementStats::compute(&trace.instances);
        assert!(s.jobs > 0);
        assert!(s.machines > 1);
        assert!(s.mean_machines_per_job >= 1.0);
        assert!(s.max_machines_per_job <= 4_000);
        // Jobs with more instances spread over at least as many machines
        // on average (monotone trend, checked coarsely).
        let mpj = machines_per_job(&trace.instances);
        let mut small = Vec::new();
        let mut big = Vec::new();
        let mut per_job_rows: HashMap<&str, usize> = HashMap::new();
        for i in &trace.instances {
            *per_job_rows.entry(i.job_name.as_str()).or_insert(0) += 1;
        }
        for (job, rows) in per_job_rows {
            let fanout = mpj[job] as f64;
            if rows <= 10 {
                small.push(fanout);
            } else if rows >= 100 {
                big.push(fanout);
            }
        }
        if !small.is_empty() && !big.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                mean(&big) > mean(&small),
                "big {} small {}",
                mean(&big),
                mean(&small)
            );
        }
    }
}
