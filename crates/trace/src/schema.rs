//! Record types mirroring the Alibaba cluster-trace-v2018 batch schema.

use serde::{Deserialize, Serialize};

use crate::intern::IStr;

/// Lifecycle status of a task or instance, following the v2018 vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Scheduled but not yet started.
    Ready,
    /// Waiting on dependencies or resources.
    Waiting,
    /// Currently executing.
    Running,
    /// Finished successfully — the only status the paper's *integrity*
    /// filter accepts.
    Terminated,
    /// Ended in error.
    Failed,
    /// Cancelled before completion (e.g. evicted by co-located online jobs).
    Cancelled,
    /// Interrupted by the trace-collection window (still running at cut-off).
    Interrupted,
}

impl Status {
    /// Every status, in declaration order — [`Status::index`] indexes into
    /// arrays laid out this way.
    pub const ALL: [Status; 7] = [
        Status::Ready,
        Status::Waiting,
        Status::Running,
        Status::Terminated,
        Status::Failed,
        Status::Cancelled,
        Status::Interrupted,
    ];

    /// Position of this status inside [`Status::ALL`].
    pub fn index(self) -> usize {
        match self {
            Status::Ready => 0,
            Status::Waiting => 1,
            Status::Running => 2,
            Status::Terminated => 3,
            Status::Failed => 4,
            Status::Cancelled => 5,
            Status::Interrupted => 6,
        }
    }

    /// Parse the v2018 textual status; unknown strings map to `Interrupted`
    /// (the conservative choice — such jobs are filtered out anyway).
    pub fn parse(s: &str) -> Status {
        match s {
            "Ready" => Status::Ready,
            "Waiting" => Status::Waiting,
            "Running" => Status::Running,
            "Terminated" => Status::Terminated,
            "Failed" => Status::Failed,
            "Cancelled" => Status::Cancelled,
            _ => Status::Interrupted,
        }
    }

    /// The textual form written to CSV.
    pub fn as_str(&self) -> &'static str {
        match self {
            Status::Ready => "Ready",
            Status::Waiting => "Waiting",
            Status::Running => "Running",
            Status::Terminated => "Terminated",
            Status::Failed => "Failed",
            Status::Cancelled => "Cancelled",
            Status::Interrupted => "Interrupted",
        }
    }
}

/// One row of `batch_task.csv` (v2018 column order):
/// `task_name, instance_num, job_name, task_type, status, start_time,
/// end_time, plan_cpu, plan_mem`.
///
/// `task_name` encodes the intra-job DAG (see [`crate::taskname`]);
/// `plan_cpu` is in units of "percent of one core" (100 = one core) and
/// `plan_mem` is a normalized memory request, both as published.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Dependency-encoding task name (`M1`, `R2_1`, `task_k3Xy`…).
    pub task_name: String,
    /// Number of instances launched for this task.
    pub instance_num: u32,
    /// Owning job identifier (`j_1001388`…); interned — every task row of
    /// a job repeats the same name, so rows share one allocation.
    pub job_name: IStr,
    /// Free-form task type code from the trace (opaque in v2018); interned
    /// because the whole trace uses only a handful of distinct codes.
    pub task_type: IStr,
    /// Final status of the task.
    pub status: Status,
    /// Start timestamp, seconds since trace start.
    pub start_time: i64,
    /// End timestamp, seconds since trace start (0 when missing).
    pub end_time: i64,
    /// Requested CPU, percent of one core (100 = 1 core).
    pub plan_cpu: f64,
    /// Requested memory, normalized units.
    pub plan_mem: f64,
}

impl TaskRecord {
    /// Task duration in seconds; `None` when timestamps are missing or
    /// inconsistent (the *availability* filter rejects those).
    pub fn duration(&self) -> Option<i64> {
        if self.start_time > 0 && self.end_time >= self.start_time {
            Some(self.end_time - self.start_time)
        } else {
            None
        }
    }
}

/// One row of `batch_instance.csv` (v2018 column order):
/// `instance_name, task_name, job_name, task_type, status, start_time,
/// end_time, machine_id, seq_no, total_seq_no, cpu_avg, cpu_max, mem_avg,
/// mem_max`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Instance identifier, unique within the task.
    pub instance_name: String,
    /// Owning task name (matches [`TaskRecord::task_name`]).
    pub task_name: String,
    /// Owning job name.
    pub job_name: String,
    /// Task type code (copied from the task row); interned.
    pub task_type: IStr,
    /// Final status of the instance.
    pub status: Status,
    /// Start timestamp, seconds since trace start.
    pub start_time: i64,
    /// End timestamp, seconds since trace start.
    pub end_time: i64,
    /// Machine the instance ran on (`m_1997`…); interned because a ~4k
    /// machine fleet appears across millions of instance rows.
    pub machine_id: IStr,
    /// Retry sequence number.
    pub seq_no: u32,
    /// Total retries observed for this instance slot.
    pub total_seq_no: u32,
    /// Mean CPU actually consumed, percent of one core.
    pub cpu_avg: f64,
    /// Peak CPU actually consumed, percent of one core.
    pub cpu_max: f64,
    /// Mean memory actually consumed, normalized units.
    pub mem_avg: f64,
    /// Peak memory actually consumed, normalized units.
    pub mem_max: f64,
}

impl InstanceRecord {
    /// Instance wall-clock duration in seconds, when timestamps are sane.
    pub fn duration(&self) -> Option<i64> {
        if self.start_time > 0 && self.end_time >= self.start_time {
            Some(self.end_time - self.start_time)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trip() {
        for s in [
            Status::Ready,
            Status::Waiting,
            Status::Running,
            Status::Terminated,
            Status::Failed,
            Status::Cancelled,
            Status::Interrupted,
        ] {
            assert_eq!(Status::parse(s.as_str()), s);
        }
        assert_eq!(Status::parse("???"), Status::Interrupted);
    }

    #[test]
    fn task_duration_rules() {
        let mut t = TaskRecord {
            task_name: "M1".into(),
            instance_num: 2,
            job_name: "j_1".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 100,
            end_time: 160,
            plan_cpu: 100.0,
            plan_mem: 0.5,
        };
        assert_eq!(t.duration(), Some(60));
        t.end_time = 50;
        assert_eq!(t.duration(), None);
        t.start_time = 0;
        assert_eq!(t.duration(), None);
    }

    #[test]
    fn instance_duration_rules() {
        let i = InstanceRecord {
            instance_name: "inst_1".into(),
            task_name: "M1".into(),
            job_name: "j_1".into(),
            task_type: "1".into(),
            status: Status::Terminated,
            start_time: 10,
            end_time: 10,
            machine_id: "m_1".into(),
            seq_no: 1,
            total_seq_no: 1,
            cpu_avg: 50.0,
            cpu_max: 80.0,
            mem_avg: 0.1,
            mem_max: 0.2,
        };
        assert_eq!(i.duration(), Some(0));
    }
}
