//! Zero-copy SWAR scanning: the ingest hot path.
//!
//! The historical readers ([`crate::csv`]) copy every line into a scratch
//! `Vec<u8>`, validate it as UTF-8, split it with `str::split`, and parse
//! each numeric field through `str::parse` — five passes and two
//! allocations per row before a single byte of useful work. This module
//! replaces all of that with a single forward pass over large borrowed
//! byte buffers:
//!
//! * **SWAR delimiter search** — [`find_byte`] and the field splitter load
//!   the input 8 bytes at a time into a `u64` and locate `,` / `\n` with a
//!   broadcast-compare bit trick (memchr-style, no external crates, no
//!   `unsafe`), folding a "was every byte ASCII?" check into the same
//!   pass;
//! * **zero-copy lines** — [`SliceLines`] yields line *ranges* into an
//!   in-memory buffer (whole file, mmap, or one parallel chunk) and
//!   [`BufLines`] does the same over any `Read` through a reused,
//!   newline-compacted buffer, so a row is never copied before parsing;
//! * **byte-slice numeric parsing** — integers and the restricted float
//!   shapes the trace actually contains decode straight from `&[u8]`,
//!   bit-identically to `str::parse` (see [`parse_f64_fast`] for the
//!   proof obligation).
//!
//! **Every anomaly falls back to the scalar oracle.** The fast path only
//! accepts rows it can provably decode identically: exactly the right
//! field count, pure ASCII, and numeric fields in the shapes whose fast
//! decode is exact. Anything else — wrong arity, non-ASCII bytes,
//! exponents, overlong digit strings — is re-parsed by the historical
//! `&str` parser, which therefore remains the single source of truth for
//! every error value (including UTF-8 error precedence). Equivalence with
//! the oracle is structural, and pinned bit-for-bit by
//! `tests/scan_equiv.rs`.
//!
//! Quarantine accounting needs the byte offset and the raw bytes of every
//! line (for [`crate::quarantine::excerpt_of`]), so both line sources
//! carry `(offset, consumed, range)` through the scan rather than bare
//! slices.

use std::io::Read;
use std::ops::Range;

use dagscope_faults::failpoint;

use crate::csv::{self, TaskParts, INSTANCE_FIELDS, TASK_FIELDS};
use crate::schema::Status;
use crate::TraceError;

/// `0x01` in every byte lane.
const LANES_LO: u64 = 0x0101_0101_0101_0101;
/// `0x80` in every byte lane.
const LANES_HI: u64 = 0x8080_8080_8080_8080;

/// Broadcast one byte into all eight lanes of a word.
#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * LANES_LO
}

/// Per-lane zero detector: the classic `haszero` trick — lane `i` of the
/// result has its high bit set iff byte `i` of `x` is zero. XOR with a
/// [`splat`] pattern first to turn it into a byte-equality detector.
#[inline]
fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LANES_LO) & !x & LANES_HI
}

/// Load 8 bytes as a little-endian word; lane `i` is `chunk[i]`.
#[inline]
fn word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("find_byte walks 8-byte chunks"))
}

/// First position of `needle` in `haystack`, SWAR word-at-a-time.
#[inline]
pub(crate) fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let pat = splat(needle);
    let mut base = 0usize;
    let mut chunks = haystack.chunks_exact(8);
    for chunk in &mut chunks {
        let hits = zero_lanes(word(chunk) ^ pat);
        if hits != 0 {
            return Some(base + (hits.trailing_zeros() as usize >> 3));
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| base + i)
}

/// Split `line` into exactly `N` comma-separated fields, verifying the
/// whole line is ASCII in the same pass. `None` means "let the scalar
/// oracle look at this line": wrong field count or any non-ASCII byte.
#[inline]
fn split_ascii_fields<const N: usize>(line: &[u8]) -> Option<[&[u8]; N]> {
    let mut fields: [&[u8]; N] = [b""; N];
    let mut n = 0usize;
    let mut start = 0usize;
    // High bits accumulate here; any set high bit at the end means a
    // non-ASCII byte somewhere in the line.
    let mut acc: u64 = 0;
    let pat = splat(b',');
    let mut base = 0usize;
    let mut chunks = line.chunks_exact(8);
    for chunk in &mut chunks {
        let w = word(chunk);
        acc |= w;
        let mut hits = zero_lanes(w ^ pat);
        while hits != 0 {
            let pos = base + (hits.trailing_zeros() as usize >> 3);
            if n + 1 >= N {
                return None;
            }
            fields[n] = &line[start..pos];
            n += 1;
            start = pos + 1;
            hits &= hits - 1;
        }
        base += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        acc |= u64::from(b) << 56;
        if b == b',' {
            if n + 1 >= N {
                return None;
            }
            fields[n] = &line[start..base + i];
            n += 1;
            start = base + i + 1;
        }
    }
    if acc & LANES_HI != 0 || n + 1 != N {
        return None;
    }
    fields[n] = &line[start..];
    Some(fields)
}

/// The one unsafe block in the crate, quarantined in its own module so the
/// crate-level `deny(unsafe_code)` still covers everything else.
mod ascii {
    /// `&str` view of a field [`split_ascii_fields`](super::split_ascii_fields)
    /// already proved is ASCII (its high-bit accumulator rejects the whole
    /// line if any byte has bit 7 set, so every surviving field is pure
    /// ASCII and therefore valid UTF-8 by construction). Skipping the
    /// redundant `from_utf8` walk here is worth ~15% of total parse time;
    /// a debug assertion re-checks the invariant in test builds.
    #[inline]
    pub(super) fn ascii_str(field: &[u8]) -> Option<&str> {
        debug_assert!(field.is_ascii(), "splitter must reject non-ASCII lines");
        // SAFETY: callers only pass fields returned by `split_ascii_fields`,
        // which verifies every byte is < 0x80; ASCII is always valid UTF-8.
        #[allow(unsafe_code)]
        Some(unsafe { std::str::from_utf8_unchecked(field) })
    }
}
use ascii::ascii_str;

/// Fast `u32` decode: plain digit runs only. Empty fields are handled by
/// the caller (they default to 0, per the historical `parse_num`); signs,
/// overflow, and anything non-digit fall back to the oracle. A SWAR
/// eight-digit decode (pad to a `'0'`-filled word, range-check all lanes,
/// three-multiply place-value reduction) was tried here and lost to this
/// loop: trace numerics are 1–7 digits, and the variable-length word
/// assembly costs more than the loop saves.
#[inline]
fn parse_u32_fast(s: &[u8]) -> Option<u32> {
    if s.is_empty() || s.len() > 10 {
        return None;
    }
    let mut v: u64 = 0;
    for &b in s {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v * 10 + u64::from(d);
    }
    u32::try_from(v).ok()
}

/// Fast `i64` decode: optional `-` then up to 18 digits, which cannot
/// overflow. 19-digit values, `+` signs, and junk fall back.
#[inline]
fn parse_i64_fast(s: &[u8]) -> Option<i64> {
    let (neg, digits) = match s.split_first() {
        Some((&b'-', rest)) => (true, rest),
        _ => (false, s),
    };
    if digits.is_empty() || digits.len() > 18 {
        return None;
    }
    let mut v: i64 = 0;
    for &b in digits {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v * 10 + i64::from(d);
    }
    Some(if neg { -v } else { v })
}

/// Exact powers of ten for the fast float path; all are exactly
/// representable in an `f64` (that holds up to `1e22`).
const POW10: [f64; 16] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
];

/// Fast `f64` decode for `[-]digits[.digits]` with at most 15 digits in
/// total — the shapes trace files actually contain.
///
/// Why this is bit-identical to `str::parse::<f64>`: with ≤ 15 digits the
/// significand `m` is below `10^15 < 2^53`, so `m as f64` is exact, and
/// `10^frac` for `frac ≤ 15` is exact, so `m as f64 / 10^frac` performs a
/// *single* correctly-rounded operation on the exact decimal value —
/// precisely the value the standard library's decimal-to-float conversion
/// rounds to. Exponents, `+` signs, `inf`/`NaN`, and longer digit strings
/// all fall back to the oracle.
#[inline]
fn parse_f64_fast(s: &[u8]) -> Option<f64> {
    let (neg, body) = match s.split_first() {
        Some((&b'-', rest)) => (true, rest),
        _ => (false, s),
    };
    let mut mantissa: u64 = 0;
    let mut digits = 0usize;
    let mut frac = 0usize;
    let mut seen_dot = false;
    for &b in body {
        if b == b'.' {
            if seen_dot {
                return None;
            }
            seen_dot = true;
            continue;
        }
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        digits += 1;
        if digits > 15 {
            return None;
        }
        mantissa = mantissa * 10 + u64::from(d);
        if seen_dot {
            frac += 1;
        }
    }
    if digits == 0 {
        return None;
    }
    let v = mantissa as f64 / POW10[frac];
    Some(if neg { -v } else { v })
}

/// Byte-level [`Status::parse`]: compares the same byte sequences, so it
/// agrees with the `&str` version on every input (unknowns map to
/// `Interrupted`, exactly as the oracle does).
#[inline]
fn parse_status(s: &[u8]) -> Status {
    match s {
        b"Ready" => Status::Ready,
        b"Waiting" => Status::Waiting,
        b"Running" => Status::Running,
        b"Terminated" => Status::Terminated,
        b"Failed" => Status::Failed,
        b"Cancelled" => Status::Cancelled,
        _ => Status::Interrupted,
    }
}

/// Empty numeric fields decode as the column default (0), mirroring
/// `parse_num`.
#[inline]
fn num_u32(s: &[u8]) -> Option<u32> {
    if s.is_empty() {
        Some(0)
    } else {
        parse_u32_fast(s)
    }
}

#[inline]
fn num_i64(s: &[u8]) -> Option<i64> {
    if s.is_empty() {
        Some(0)
    } else {
        parse_i64_fast(s)
    }
}

#[inline]
fn num_f64(s: &[u8]) -> Option<f64> {
    if s.is_empty() {
        Some(0.0)
    } else {
        parse_f64_fast(s)
    }
}

/// The SWAR fast path for one `batch_task` row; `None` routes the whole
/// line to the scalar oracle.
#[inline]
fn fast_task_parts(raw: &[u8]) -> Option<TaskParts<'_>> {
    let f = split_ascii_fields::<TASK_FIELDS>(raw)?;
    Some(TaskParts {
        task_name: ascii_str(f[0])?,
        instance_num: num_u32(f[1])?,
        job_name: ascii_str(f[2])?,
        task_type: ascii_str(f[3])?,
        status: parse_status(f[4]),
        start_time: num_i64(f[5])?,
        end_time: num_i64(f[6])?,
        plan_cpu: num_f64(f[7])?,
        plan_mem: num_f64(f[8])?,
    })
}

/// Decode one `batch_task.csv` row from raw bytes: SWAR fast path with
/// scalar-oracle fallback, so results — values *and* errors, including
/// the UTF-8 error precedence of the historical readers — are
/// bit-identical to [`csv::parse_task_parts`] run on the same bytes.
pub fn parse_task_parts_bytes(line_no: usize, raw: &[u8]) -> Result<TaskParts<'_>, TraceError> {
    match fast_task_parts(raw) {
        Some(parts) => Ok(parts),
        None => csv::task_parts_fallback(line_no, raw),
    }
}

/// The SWAR fast path for one `batch_instance` row.
#[inline]
fn fast_instance_parts(raw: &[u8]) -> Option<csv::InstanceParts<'_>> {
    let f = split_ascii_fields::<INSTANCE_FIELDS>(raw)?;
    Some(csv::InstanceParts {
        instance_name: ascii_str(f[0])?,
        task_name: ascii_str(f[1])?,
        job_name: ascii_str(f[2])?,
        task_type: ascii_str(f[3])?,
        status: parse_status(f[4]),
        start_time: num_i64(f[5])?,
        end_time: num_i64(f[6])?,
        machine_id: ascii_str(f[7])?,
        seq_no: num_u32(f[8])?,
        total_seq_no: num_u32(f[9])?,
        cpu_avg: num_f64(f[10])?,
        cpu_max: num_f64(f[11])?,
        mem_avg: num_f64(f[12])?,
        mem_max: num_f64(f[13])?,
    })
}

/// Decode one `batch_instance.csv` row from raw bytes (SWAR fast path,
/// scalar-oracle fallback) — the byte-level twin of
/// [`csv::parse_instance_parts`].
pub fn parse_instance_parts_bytes(
    line_no: usize,
    raw: &[u8],
) -> Result<csv::InstanceParts<'_>, TraceError> {
    match fast_instance_parts(raw) {
        Some(parts) => Ok(parts),
        None => csv::instance_parts_fallback(line_no, raw),
    }
}

/// A lending iterator over the lines of a byte stream.
///
/// `next_span` yields `(byte offset of the line's first byte, bytes
/// consumed from the stream including the terminator, range of the
/// *stripped* line inside [`LineSource::view`])`. Line-splitting
/// semantics replicate `BufRead::lines` exactly — a final `\n` opens no
/// empty trailing line, `\r\n` is trimmed, and a bare trailing `\r` on an
/// unterminated last line is kept — because quarantine line numbers and
/// byte offsets are part of the readers' observable contract.
pub(crate) trait LineSource {
    /// Advance to the next line. `None` at end of stream.
    fn next_span(&mut self) -> Result<Option<(u64, u64, Range<usize>)>, std::io::Error>;

    /// The buffer the most recent span indexes into.
    fn view(&self) -> &[u8];
}

/// Zero-copy [`LineSource`] over bytes already in memory (a whole file, an
/// mmap, or one newline-aligned parallel chunk).
pub(crate) struct SliceLines<'d> {
    data: &'d [u8],
    pos: usize,
    /// The sequential and streamed readers own the `trace.read.line_io`
    /// failpoint; the chunked parallel readers historically expose only
    /// `trace.read.chunk_io`, so chunk decoding constructs this source
    /// with the per-line site disarmed to keep chaos schedules stable.
    line_failpoints: bool,
}

impl<'d> SliceLines<'d> {
    /// Line source with the per-line failpoint armed (sequential paths).
    pub(crate) fn new(data: &'d [u8]) -> SliceLines<'d> {
        SliceLines {
            data,
            pos: 0,
            line_failpoints: true,
        }
    }

    /// Line source with the per-line failpoint disarmed (chunk decoding).
    pub(crate) fn without_line_failpoints(data: &'d [u8]) -> SliceLines<'d> {
        SliceLines {
            data,
            pos: 0,
            line_failpoints: false,
        }
    }
}

impl LineSource for SliceLines<'_> {
    fn next_span(&mut self) -> Result<Option<(u64, u64, Range<usize>)>, std::io::Error> {
        if self.line_failpoints {
            // One hit per line, in document order — the same contract as
            // the scalar readers' per-line read site.
            failpoint!("trace.read.line_io", |_arg: Option<String>| Err(
                std::io::Error::other("injected read failure")
            ));
        }
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let start = self.pos;
        let (end, consumed) = match find_byte(&self.data[start..], b'\n') {
            Some(i) => {
                self.pos = start + i + 1;
                let mut end = start + i;
                if end > start && self.data[end - 1] == b'\r' {
                    end -= 1;
                }
                (end, (i + 1) as u64)
            }
            None => {
                self.pos = self.data.len();
                (self.data.len(), (self.data.len() - start) as u64)
            }
        };
        Ok(Some((start as u64, consumed, start..end)))
    }

    fn view(&self) -> &[u8] {
        self.data
    }
}

/// Buffered [`LineSource`] over any [`Read`]: bytes land in one reused
/// buffer via large reads, lines are found with SWAR search, and the
/// partial tail line is compacted to the front before each refill. The
/// buffer doubles when a single line outgrows it, so arbitrarily long
/// lines still decode (matching `read_until` semantics) while the steady
/// state never allocates.
pub(crate) struct BufLines<R> {
    reader: R,
    buf: Vec<u8>,
    /// Start of the unconsumed region in `buf`.
    start: usize,
    /// End of the valid region in `buf`.
    len: usize,
    /// Stream offset of `buf[start]`.
    offset: u64,
    /// Bytes past `start` already searched for `\n` in a previous call —
    /// keeps refill loops linear when a line spans many reads.
    searched: usize,
    eof: bool,
}

impl<R: Read> BufLines<R> {
    /// Line source reading `capacity`-sized chunks (min 16, mirroring the
    /// historical `BufReader` floor the property tests rely on).
    pub(crate) fn new(reader: R, capacity: usize) -> BufLines<R> {
        BufLines {
            reader,
            buf: vec![0; capacity.clamp(16, 1 << 30)],
            start: 0,
            len: 0,
            offset: 0,
            searched: 0,
            eof: false,
        }
    }

    /// One `read` into the free tail of the buffer, tolerating
    /// `Interrupted`; records EOF.
    fn refill(&mut self) -> Result<(), std::io::Error> {
        match self.reader.read(&mut self.buf[self.len..]) {
            Ok(0) => self.eof = true,
            Ok(n) => self.len += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        Ok(())
    }
}

impl<R: Read> LineSource for BufLines<R> {
    fn next_span(&mut self) -> Result<Option<(u64, u64, Range<usize>)>, std::io::Error> {
        // Same site, same cadence as the scalar readers: one hit per
        // line-fetch call, including the final call that reports EOF.
        failpoint!("trace.read.line_io", |_arg: Option<String>| Err(
            std::io::Error::other("injected read failure")
        ));
        loop {
            if let Some(i) = find_byte(&self.buf[self.start + self.searched..self.len], b'\n') {
                let nl = self.start + self.searched + i;
                let start = self.start;
                let consumed = (nl + 1 - start) as u64;
                let offset = self.offset;
                let mut end = nl;
                if end > start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                self.start = nl + 1;
                self.searched = 0;
                self.offset += consumed;
                return Ok(Some((offset, consumed, start..end)));
            }
            self.searched = self.len - self.start;
            if self.eof {
                if self.start >= self.len {
                    return Ok(None);
                }
                let (start, end) = (self.start, self.len);
                let consumed = (end - start) as u64;
                let offset = self.offset;
                self.start = self.len;
                self.searched = 0;
                self.offset += consumed;
                // Unterminated last line: a bare trailing `\r` stays.
                return Ok(Some((offset, consumed, start..end)));
            }
            if self.start > 0 {
                self.buf.copy_within(self.start..self.len, 0);
                self.len -= self.start;
                self.start = 0;
            }
            if self.len == self.buf.len() {
                let grown = (self.buf.len() * 2).max(64);
                self.buf.resize(grown, 0);
            }
            self.refill()?;
        }
    }

    fn view(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_matches_position() {
        let cases: [&[u8]; 6] = [
            b"",
            b"a",
            b"abcdefgh",
            b"aaaaaaaa,bbbb",
            b"no commas here at all....... wait",
            b"tail,",
        ];
        for data in cases {
            for needle in [b',', b'\n', b'x', 0u8] {
                assert_eq!(
                    find_byte(data, needle),
                    data.iter().position(|&b| b == needle),
                    "data={data:?} needle={needle}"
                );
            }
        }
        // Needle in every position of a window spanning word boundaries.
        let mut buf = vec![b'_'; 40];
        for i in 0..buf.len() {
            buf[i] = b'\n';
            assert_eq!(find_byte(&buf, b'\n'), Some(i));
            buf[i] = b'_';
        }
    }

    #[test]
    fn split_matches_str_split() {
        let ok = "a,b,c,d,e,f,g,h,i";
        let f = split_ascii_fields::<9>(ok.as_bytes()).unwrap();
        let want: Vec<&str> = ok.split(',').collect();
        for (got, want) in f.iter().zip(want) {
            assert_eq!(*got, want.as_bytes());
        }
        assert_eq!(split_ascii_fields::<9>(b"a,b,c"), None, "too few");
        assert_eq!(split_ascii_fields::<2>(b"a,b,c"), None, "too many");
        assert_eq!(split_ascii_fields::<9>("é,b,c,d,e,f,g,h,i".as_bytes()), None);
        assert_eq!(
            split_ascii_fields::<9>(b"a,b,c,d,e,f,g,h,\xffi"),
            None,
            "non-ASCII tail byte"
        );
        // Empty fields survive, including leading/trailing.
        let f = split_ascii_fields::<3>(b",,").unwrap();
        assert_eq!(f, [b"" as &[u8]; 3]);
    }

    #[test]
    fn fast_ints_match_std() {
        let cases = [
            "0", "1", "42", "007", "4294967295", "4294967296", "-1", "+5", "", "x", "1x",
            "99999999999999999999",
        ];
        for s in cases {
            if let Some(got) = parse_u32_fast(s.as_bytes()) {
                assert_eq!(Ok(got), s.parse::<u32>(), "u32 {s:?}");
            }
            if let Some(got) = parse_i64_fast(s.as_bytes()) {
                assert_eq!(Ok(got), s.parse::<i64>(), "i64 {s:?}");
            }
        }
        assert_eq!(parse_i64_fast(b"-86400"), Some(-86400));
        assert_eq!(parse_u32_fast(b"4294967295"), Some(u32::MAX));
        assert_eq!(parse_u32_fast(b"4294967296"), None, "overflow falls back");
    }

    #[test]
    fn fast_floats_match_std_bitwise() {
        let accepted = [
            "0", "-0", "0.5", "100", "-86400", "0.015625", "123456789012345",
            "1.", ".5", "3.141592653589", "0.00000000000001", "99.99",
        ];
        for s in accepted {
            let got = parse_f64_fast(s.as_bytes()).unwrap_or_else(|| panic!("{s:?} rejected"));
            let want: f64 = s.parse().unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{s:?}");
        }
        // Shapes that must fall back (std parses some of them; the fast
        // path just declines).
        for s in ["", ".", "-", "1e3", "+1", "inf", "NaN", "1.2.3", "1234567890123456"] {
            assert_eq!(parse_f64_fast(s.as_bytes()), None, "{s:?}");
        }
    }

    #[test]
    fn byte_parser_matches_oracle_on_canonical_rows() {
        let rows = [
            "R2_1,5,j_1001388,1,Terminated,86400,86520,100,0.5",
            "task_abc,,j_1,1,Running,,,,",
            "M1,2,j_7,1,Waiting,-5,10,0.25,1e3",
            "a,b,c",
            "",
        ];
        for row in rows {
            let want = csv::parse_task_parts(3, row);
            let got = parse_task_parts_bytes(3, row.as_bytes());
            match (got, want) {
                (Ok(g), Ok(w)) => assert_eq!(format!("{g:?}"), format!("{w:?}"), "{row:?}"),
                (Err(g), Err(w)) => assert_eq!(g, w, "{row:?}"),
                (g, w) => panic!("disagreement on {row:?}: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn slice_lines_replicates_bufread_lines() {
        let docs: [&[u8]; 7] = [
            b"",
            b"a\nb\n",
            b"a\r\nb",
            b"a\n\nb\n",
            b"tail-no-newline",
            b"keep\r",
            b"\n",
        ];
        for doc in docs {
            let mut got = Vec::new();
            let mut src = SliceLines::new(doc);
            while let Some((off, consumed, span)) = src.next_span().unwrap() {
                got.push((off, consumed, src.view()[span].to_vec()));
            }
            let mut want = Vec::new();
            let mut lines = csv::RawLines::new(doc);
            let mut buf = Vec::new();
            while let Some((off, consumed)) = lines.next_line_into(&mut buf).unwrap() {
                want.push((off, consumed, buf.clone()));
            }
            assert_eq!(got, want, "doc={doc:?}");
        }
    }

    #[test]
    fn buf_lines_replicates_slice_lines_at_every_capacity() {
        let doc: &[u8] = b"first,row\r\nsecond\n\nthird-without-newline-and-rather-long";
        let mut want = Vec::new();
        let mut src = SliceLines::new(doc);
        while let Some((off, consumed, span)) = src.next_span().unwrap() {
            want.push((off, consumed, src.view()[span].to_vec()));
        }
        for capacity in 1..=doc.len() + 2 {
            let mut got = Vec::new();
            let mut src = BufLines::new(doc, capacity);
            while let Some((off, consumed, span)) = src.next_span().unwrap() {
                got.push((off, consumed, src.view()[span].to_vec()));
            }
            assert_eq!(got, want, "capacity={capacity}");
        }
    }
}
