//! Adversarial job construction for robustness testing.
//!
//! The regular generator ([`super::TraceGenerator`]) stays inside the
//! paper's published envelope — sizes 2–31, depth ≤ 8, acyclic by
//! construction. Chaos and fuzz tests need the opposite: jobs that sit
//! right at the parser's representational limits (chains hundreds deep,
//! a sink naming thousands of parents, ids at the top of `u32`) and
//! jobs that are *wrong* in every way the v2018 encoding can express —
//! dependency cycles, self-loops, forward references to missing tasks,
//! duplicate ids. Downstream layers must classify each of these
//! deterministically: the parser never panics, and
//! `JobDag::from_job` rejects the malformed ones with the precise
//! `BuildError` the contract names.
//!
//! Every constructor is pure and deterministic — no RNG — so tests can
//! pin exact behavior.

use crate::job::Job;
use crate::schema::{Status, TaskRecord};

/// A minimal well-formed task row carrying the given DAG name.
fn row(job_name: &str, task_name: String) -> TaskRecord {
    TaskRecord {
        task_name,
        instance_num: 1,
        job_name: job_name.into(),
        task_type: "1".into(),
        status: Status::Terminated,
        start_time: 1,
        end_time: 2,
        plan_cpu: 100.0,
        plan_mem: 0.5,
    }
}

fn job_of(job_name: &str, names: Vec<String>) -> Job {
    Job {
        name: job_name.to_string(),
        tasks: names.into_iter().map(|n| row(job_name, n)).collect(),
    }
}

/// A sequential chain of `n` tasks (`M1`, `R2_1`, …, `Rn_{n-1}`) — far
/// past the paper's depth-8 envelope but perfectly well-formed. The DAG
/// builder must accept it with critical path exactly `n`.
pub fn deep_chain(job_name: &str, n: usize) -> Job {
    assert!(n >= 1);
    let names = (1..=n)
        .map(|i| {
            if i == 1 {
                "M1".to_string()
            } else {
                format!("R{i}_{}", i - 1)
            }
        })
        .collect();
    job_of(job_name, names)
}

/// `n - 1` parallel sources feeding one sink whose name lists *every*
/// parent (`Rn_{n-1}_…_1`) — the longest task name the encoding can
/// produce for a job of this size. Parsing must recover all `n - 1`
/// parents, and conflation must collapse the interchangeable sources.
pub fn wide_fanout(job_name: &str, n: usize) -> Job {
    assert!(n >= 2);
    let mut names: Vec<String> = (1..n).map(|i| format!("M{i}")).collect();
    let mut sink = format!("R{n}");
    for p in (1..n).rev() {
        sink.push('_');
        sink.push_str(&p.to_string());
    }
    names.push(sink);
    job_of(job_name, names)
}

/// A two-task dependency cycle: `M1_2` and `R2_1`. Both names parse —
/// the encoding happily writes a cycle — so rejection is the DAG
/// builder's job (`BuildError::Cycle`).
pub fn cycle_pair(job_name: &str) -> Job {
    job_of(job_name, vec!["M1_2".to_string(), "R2_1".to_string()])
}

/// A task that lists itself as its parent (`M1_1`): the tightest cycle.
pub fn self_loop(job_name: &str) -> Job {
    job_of(job_name, vec!["M1_1".to_string()])
}

/// An `n`-task ring: task `i` depends on `i - 1`, and task 1 depends on
/// `n`, closing the loop. Every prefix is a valid chain; only the whole
/// job reveals the cycle.
pub fn cycle_ring(job_name: &str, n: usize) -> Job {
    assert!(n >= 2);
    let names = (1..=n)
        .map(|i| {
            if i == 1 {
                format!("M1_{n}")
            } else {
                format!("R{i}_{}", i - 1)
            }
        })
        .collect();
    job_of(job_name, names)
}

/// A dangling reference: `R2_7` names a parent that does not exist in
/// the job (`BuildError::MissingParent`).
pub fn missing_parent(job_name: &str) -> Job {
    job_of(job_name, vec!["M1".to_string(), "R2_7".to_string()])
}

/// Two rows claiming the same task id (`BuildError::DuplicateId`).
pub fn duplicate_id(job_name: &str) -> Job {
    job_of(
        job_name,
        vec!["M1".to_string(), "M2".to_string(), "R2_1".to_string()],
    )
}

/// A two-task chain whose ids sit at the very top of `u32` — the
/// largest values the name grammar can carry. One digit more and the
/// name stops being a DAG name (ids must fit `u32`).
pub fn huge_ids(job_name: &str) -> Job {
    job_of(
        job_name,
        vec![
            format!("M{}", u32::MAX - 1),
            format!("R{}_{}", u32::MAX, u32::MAX - 1),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskname::{parse, ParsedTaskName};

    #[test]
    fn deep_chain_names_parse_at_any_depth() {
        let job = deep_chain("j_deep", 500);
        assert_eq!(job.size(), 500);
        assert!(job.is_dag_job());
        match parse(&job.tasks[499].task_name) {
            ParsedTaskName::Dag { id, parents, .. } => {
                assert_eq!(id, 500);
                assert_eq!(parents, vec![499]);
            }
            other => panic!("tail of deep chain parsed as {other:?}"),
        }
    }

    #[test]
    fn wide_fanout_sink_recovers_every_parent() {
        let n = 2_000;
        let job = wide_fanout("j_wide", n);
        let sink = &job.tasks[n - 1].task_name;
        // The sink's name alone is ~9 KB; the parser must not choke.
        assert!(sink.len() > 8_000);
        match parse(sink) {
            ParsedTaskName::Dag { id, parents, .. } => {
                assert_eq!(id as usize, n);
                assert_eq!(parents.len(), n - 1);
                assert_eq!(parents[0] as usize, n - 1);
                assert_eq!(*parents.last().unwrap(), 1);
            }
            other => panic!("fan-out sink parsed as {other:?}"),
        }
    }

    #[test]
    fn cyclic_names_still_parse_as_dag_names() {
        // The *parser* accepts cycles — rejection belongs to the DAG
        // builder, which sees the whole job.
        for job in [cycle_pair("j"), self_loop("j"), cycle_ring("j", 5)] {
            for t in &job.tasks {
                assert!(parse(&t.task_name).is_dag(), "{}", t.task_name);
            }
        }
    }

    #[test]
    fn huge_ids_parse_and_one_more_digit_does_not() {
        let job = huge_ids("j_huge");
        match parse(&job.tasks[1].task_name) {
            ParsedTaskName::Dag { id, parents, .. } => {
                assert_eq!(id, u32::MAX);
                assert_eq!(parents, vec![u32::MAX - 1]);
            }
            other => panic!("huge id parsed as {other:?}"),
        }
        // 2^32 overflows the id field: the whole name degrades to
        // Independent rather than wrapping or panicking.
        let overflow = format!("M{}", u64::from(u32::MAX) + 1);
        assert!(!parse(&overflow).is_dag());
        let overflow_parent = format!("R2_{}", u64::from(u32::MAX) + 1);
        assert!(!parse(&overflow_parent).is_dag());
    }

    #[test]
    fn constructors_are_deterministic() {
        assert_eq!(deep_chain("j", 64), deep_chain("j", 64));
        assert_eq!(wide_fanout("j", 64), wide_fanout("j", 64));
        assert_eq!(cycle_ring("j", 9), cycle_ring("j", 9));
    }
}
