//! Synthetic workload generation in the v2018 schema.
//!
//! The real Alibaba trace is a data gate this reproduction cannot ship, so
//! experiments run against synthetic traces whose *published marginals*
//! match Section III–V of the paper:
//!
//! * ≈ 50 % of batch jobs carry dependencies (the rest are independent
//!   `task_…` jobs), and the dependency-bearing half consumes 70–80 % of
//!   batch resources,
//! * DAG sizes span 2–31 tasks with frequency decreasing in size,
//! * the shape mix is ≈ 58 % chains / 37 % inverted triangles / a small
//!   remainder of diamonds, hourglasses, trapeziums and hybrids,
//! * critical paths stay within 2–8,
//! * arrivals follow a diurnal pattern across an 8-day window,
//! * a small fraction of jobs is interrupted / failed / cancelled so the
//!   paper's integrity and availability filters have something to reject.
//!
//! Generation is deterministic: each job derives its own RNG stream from
//! `(seed, job_index)` via SplitMix64, so traces are reproducible and
//! independent of how many worker threads produced them.

pub mod adversarial;
mod shape;

pub use shape::{build as build_shape, DagPlan, ShapeKind};

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::intern::IStr;
use crate::schema::{InstanceRecord, Status, TaskRecord};
use crate::taskname::TaskKind;
use crate::JobSet;

/// Relative frequency of each shape among dependency-bearing jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeWeights {
    /// Weights aligned with [`ShapeKind::ALL`].
    pub weights: [f64; 6],
}

impl Default for ShapeWeights {
    /// Section V-B: 58 % chains, 37 % inverted triangles, rare others.
    fn default() -> Self {
        ShapeWeights {
            weights: [0.58, 0.37, 0.025, 0.01, 0.01, 0.005],
        }
    }
}

impl ShapeWeights {
    /// Draw a shape according to the weights.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ShapeKind {
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.random_range(0.0..total);
        for (i, w) in self.weights.iter().enumerate() {
            if x < *w {
                return ShapeKind::ALL[i];
            }
            x -= w;
        }
        ShapeKind::Chain
    }
}

/// Generator configuration. Defaults reproduce the paper's marginals.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of jobs to synthesize.
    pub jobs: usize,
    /// Master seed; every derived statistic is a pure function of it.
    pub seed: u64,
    /// Fraction of jobs that carry dependencies (paper: ≈ 0.5).
    pub dep_fraction: f64,
    /// Shape mix among dependency-bearing jobs.
    pub shape_weights: ShapeWeights,
    /// Trace window in seconds (paper: 8 days).
    pub window_secs: i64,
    /// Number of machines instances land on (paper: ≈ 4000).
    pub machines: u32,
    /// Fraction of jobs that end abnormally (failed / cancelled /
    /// interrupted), exercising the integrity filter.
    pub abnormal_fraction: f64,
    /// Also synthesize per-instance rows (`batch_instance`). Costly for
    /// large traces; figure experiments only need task rows.
    pub emit_instances: bool,
    /// Upper bound on DAG size (paper's sample: 31).
    pub max_size: usize,
    /// Fraction of DAG jobs that are re-submissions of a recurring template
    /// (Section IV-C: "jobs with smaller size are more likely to appear
    /// repetitively"); templates are drawn from a small deterministic pool
    /// skewed toward small shapes.
    pub recurrence_fraction: f64,
    /// Number of recurring templates in the pool.
    pub template_pool: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            jobs: 10_000,
            seed: 42,
            dep_fraction: 0.5,
            shape_weights: ShapeWeights::default(),
            window_secs: 8 * 86_400,
            machines: 4_000,
            abnormal_fraction: 0.08,
            emit_instances: false,
            max_size: 31,
            recurrence_fraction: 0.35,
            template_pool: 40,
        }
    }
}

/// A generated trace: the two batch files of the v2018 release.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyntheticTrace {
    /// `batch_task` rows.
    pub tasks: Vec<TaskRecord>,
    /// `batch_instance` rows (empty unless
    /// [`GeneratorConfig::emit_instances`] was set).
    pub instances: Vec<InstanceRecord>,
}

impl SyntheticTrace {
    /// Group the task rows into a [`JobSet`].
    pub fn job_set(&self) -> JobSet {
        JobSet::from_tasks(self.tasks.iter().cloned())
    }
}

/// SplitMix64 — used to derive independent per-job seeds from the master
/// seed, so parallel generation stays deterministic.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic seeded workload synthesizer.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    cfg: GeneratorConfig,
    /// Recurring DAG templates, shared by all re-submitted jobs (see
    /// [`GeneratorConfig::recurrence_fraction`]).
    templates: Vec<DagPlan>,
}

impl TraceGenerator {
    /// Create a generator with the given configuration.
    pub fn new(cfg: GeneratorConfig) -> Self {
        // Build the deterministic template pool up front so parallel
        // per-job generation can reference it immutably.
        let mut rng = StdRng::seed_from_u64(splitmix64(cfg.seed ^ 0x7E4D_9A11));
        let pool = TraceGenerator {
            cfg: cfg.clone(),
            templates: Vec::new(),
        };
        let templates = (0..cfg.template_pool)
            .map(|_| {
                let shape = cfg.shape_weights.sample(&mut rng);
                let size = pool.sample_size(&mut rng, shape);
                build_shape(&mut rng, shape, size)
            })
            .collect();
        TraceGenerator { cfg, templates }
    }

    /// Access the configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Generate the whole trace. Jobs are synthesized in parallel; output
    /// order and contents depend only on the seed.
    pub fn generate(&self) -> SyntheticTrace {
        let indices: Vec<usize> = (0..self.cfg.jobs).collect();
        let per_job = dagscope_par::par_map(&indices, |&i| self.generate_job(i));
        let mut trace = SyntheticTrace::default();
        for (tasks, instances) in per_job {
            trace.tasks.extend(tasks);
            trace.instances.extend(instances);
        }
        trace
    }

    /// Generate job `index`'s rows (deterministic in `(seed, index)`).
    pub fn generate_job(&self, index: usize) -> (Vec<TaskRecord>, Vec<InstanceRecord>) {
        let mut rng = StdRng::seed_from_u64(splitmix64(
            self.cfg.seed ^ (index as u64).wrapping_mul(0xA24BAED4963EE407),
        ));
        let job_name = format!("j_{}", 1_000_000 + index);
        let arrival = self.sample_arrival(&mut rng);

        if rng.random::<f64>() < self.cfg.dep_fraction {
            self.generate_dag_job(&mut rng, &job_name, arrival)
        } else {
            self.generate_independent_job(&mut rng, &job_name, arrival)
        }
    }

    /// Diurnal arrival sampling: two peaks per day (late morning and
    /// evening), via rejection sampling against a raised-cosine envelope.
    fn sample_arrival<R: Rng>(&self, rng: &mut R) -> i64 {
        loop {
            let t = rng.random_range(0..self.cfg.window_secs.max(1));
            let day_frac = (t % 86_400) as f64 / 86_400.0;
            // Intensity in [0.2, 1.0] with peaks at ~10:00 and ~21:00.
            let intensity = 0.6
                + 0.25 * (std::f64::consts::TAU * (day_frac - 10.0 / 24.0)).cos()
                + 0.15 * (std::f64::consts::TAU * 2.0 * (day_frac - 21.0 / 24.0)).cos();
            if rng.random::<f64>() < intensity.clamp(0.05, 1.0) {
                return t;
            }
        }
    }

    /// Truncated-geometric size draw conditioned on the shape: chains stay
    /// short (and within the depth-8 bound); convergent shapes reach 31.
    fn sample_size<R: Rng>(&self, rng: &mut R, shape: ShapeKind) -> usize {
        // Geometric decay tuned to the published skew: the bulk of DAG jobs
        // have 2–4 tasks (the paper's dominant cluster is ~75 % of the
        // sample with mostly ≤3-task jobs), with a thin tail out to 31.
        let (min, cap, p) = match shape {
            ShapeKind::Chain => (2usize, 8usize, 0.58),
            ShapeKind::InvertedTriangle => (3, self.cfg.max_size, 0.45),
            ShapeKind::Diamond => (4, self.cfg.max_size.min(16), 0.45),
            ShapeKind::Hourglass => (5, self.cfg.max_size.min(18), 0.45),
            ShapeKind::Trapezium => (3, self.cfg.max_size.min(20), 0.42),
            ShapeKind::Hybrid => (5, self.cfg.max_size, 0.35),
        };
        if min < cap && rng.random::<f64>() < 0.04 {
            // Heavy-tail floor: keep every size in [min, cap] represented so
            // the sample's variability criterion (17 size types in the
            // paper) is attainable.
            return rng.random_range(min..=cap);
        }
        let mut size = min;
        while size < cap && rng.random::<f64>() > p {
            size += 1;
        }
        size
    }

    fn sample_status<R: Rng>(&self, rng: &mut R) -> Status {
        if rng.random::<f64>() >= self.cfg.abnormal_fraction {
            Status::Terminated
        } else {
            match rng.random_range(0..4) {
                0 => Status::Failed,
                1 => Status::Cancelled,
                2 => Status::Running,
                _ => Status::Interrupted,
            }
        }
    }

    fn generate_dag_job<R: Rng>(
        &self,
        rng: &mut R,
        job_name: &str,
        arrival: i64,
    ) -> (Vec<TaskRecord>, Vec<InstanceRecord>) {
        // Recurring submissions reuse a template topology (smaller
        // templates recur more often: the pool is drawn from the same
        // size-skewed distribution, and repetition multiplies the skew).
        let template;
        let plan: &DagPlan =
            if !self.templates.is_empty() && rng.random::<f64>() < self.cfg.recurrence_fraction {
                &self.templates[rng.random_range(0..self.templates.len())]
            } else {
                let shape = self.cfg.shape_weights.sample(rng);
                let size = self.sample_size(rng, shape);
                template = build_shape(rng, shape, size);
                &template
            };
        let names = plan.task_names();
        let job_name: IStr = job_name.into();
        let job_status = self.sample_status(rng);

        // Topological scheduling: a task starts once all parents finished.
        let n = plan.size();
        let mut ends = vec![0i64; n + 1];
        let mut tasks = Vec::with_capacity(n);
        let mut instances = Vec::new();

        for i in 0..n {
            let id = (i + 1) as u32;
            let kind = plan.kinds[i];
            let parent_end = plan.parents[i]
                .iter()
                .map(|&p| ends[p as usize])
                .max()
                .unwrap_or(arrival);
            let sched_delay = rng.random_range(0..30);
            let start = parent_end + sched_delay;
            let duration = self.sample_duration(rng, kind);
            let end = start + duration;
            ends[id as usize] = end;

            let instance_num = self.sample_instance_num(rng, kind);
            let plan_cpu = [50.0, 100.0, 100.0, 200.0, 300.0][rng.random_range(0..5)];
            let plan_mem = (rng.random_range(10..100) as f64) / 100.0;

            // Abnormal jobs: cut the tail tasks' records the way the
            // collection window does (missing end, non-terminated status).
            let (status, start_time, end_time) = match job_status {
                Status::Terminated => (Status::Terminated, start, end),
                s if i + 1 == n => (s, start, 0),
                _ => (Status::Terminated, start, end),
            };

            tasks.push(TaskRecord {
                task_name: names[i].clone(),
                instance_num,
                job_name: job_name.clone(),
                task_type: format!("{}", rng.random_range(1..=12)).into(),
                status,
                start_time,
                end_time,
                plan_cpu,
                plan_mem,
            });

            if self.cfg.emit_instances && status == Status::Terminated {
                self.emit_instances(rng, &mut instances, &tasks[i], duration);
            }
        }
        (tasks, instances)
    }

    fn generate_independent_job<R: Rng>(
        &self,
        rng: &mut R,
        job_name: &str,
        arrival: i64,
    ) -> (Vec<TaskRecord>, Vec<InstanceRecord>) {
        let n = 1 + (rng.random::<f64>() * rng.random::<f64>() * 4.0) as usize;
        let job_name: IStr = job_name.into();
        let status = self.sample_status(rng);
        let mut tasks = Vec::with_capacity(n);
        let mut instances = Vec::new();
        for i in 0..n {
            let start = arrival + rng.random_range(0..60);
            let duration = rng.random_range(10..600);
            // Independent jobs are lighter: fewer instances, smaller asks —
            // this is what makes dependency-bearing jobs carry 70–80 % of
            // batch resources, as the paper reports.
            let t = TaskRecord {
                task_name: format!("task_{}", encode_base36(splitmix64(rng.random::<u64>()))),
                instance_num: {
                    let u = rng.random::<f64>();
                    1 + (79.0 * u * u) as u32
                },
                job_name: job_name.clone(),
                task_type: format!("{}", rng.random_range(1..=12)).into(),
                status,
                start_time: start,
                end_time: if status == Status::Terminated {
                    start + duration
                } else {
                    0
                },
                plan_cpu: [50.0, 100.0, 200.0][rng.random_range(0..3)],
                plan_mem: (rng.random_range(5..60) as f64) / 100.0,
            };
            if self.cfg.emit_instances && status == Status::Terminated {
                self.emit_instances(rng, &mut instances, &t, duration);
            }
            tasks.push(t);
            let _ = i;
        }
        (tasks, instances)
    }

    fn sample_duration<R: Rng>(&self, rng: &mut R, kind: TaskKind) -> i64 {
        // Log-uniform-ish durations; reduces run longer than maps on
        // average, joins in between.
        let (lo, hi) = match kind {
            TaskKind::Map => (20.0f64, 600.0f64),
            TaskKind::Join => (30.0, 1200.0),
            TaskKind::Reduce => (40.0, 2400.0),
            TaskKind::Other(_) => (20.0, 900.0),
        };
        let u = rng.random::<f64>();
        (lo * (hi / lo).powf(u)) as i64
    }

    fn sample_instance_num<R: Rng>(&self, rng: &mut R, kind: TaskKind) -> u32 {
        // Maps are data-parallel and instance-heavy; reduces narrower.
        let cap: u32 = match kind {
            TaskKind::Map => 200,
            TaskKind::Join => 80,
            TaskKind::Reduce => 40,
            TaskKind::Other(_) => 60,
        };
        let u = rng.random::<f64>();
        1 + ((cap - 1) as f64 * u * u) as u32
    }

    fn emit_instances<R: Rng>(
        &self,
        rng: &mut R,
        out: &mut Vec<InstanceRecord>,
        task: &TaskRecord,
        duration: i64,
    ) {
        for k in 0..task.instance_num {
            let jitter = rng.random_range(0..=(duration / 4).max(1));
            let inst_duration = (duration - jitter).max(1);
            let start = task.start_time + rng.random_range(0..=jitter.max(1));
            let cpu_max = task.plan_cpu * rng.random_range(60..110) as f64 / 100.0;
            let cpu_avg = cpu_max * rng.random_range(40..95) as f64 / 100.0;
            let mem_max = task.plan_mem * rng.random_range(60..110) as f64 / 100.0;
            let mem_avg = mem_max * rng.random_range(40..95) as f64 / 100.0;
            out.push(InstanceRecord {
                instance_name: format!("{}_{}_{}", task.job_name, task.task_name, k + 1),
                task_name: task.task_name.clone(),
                job_name: task.job_name.to_string(),
                task_type: task.task_type.clone(),
                status: Status::Terminated,
                start_time: start,
                end_time: start + inst_duration,
                machine_id: format!("m_{}", rng.random_range(1..=self.cfg.machines)).into(),
                seq_no: 1,
                total_seq_no: 1,
                cpu_avg: (cpu_avg * 100.0).round() / 100.0,
                cpu_max: (cpu_max * 100.0).round() / 100.0,
                mem_avg: (mem_avg * 10_000.0).round() / 10_000.0,
                mem_max: (mem_max * 10_000.0).round() / 10_000.0,
            });
        }
    }
}

/// Lowercase base-36 rendering used for opaque independent task names.
fn encode_base36(mut v: u64) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut buf = [0u8; 13];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = DIGITS[(v % 36) as usize];
        v /= 36;
        if v == 0 || i == 0 {
            break;
        }
    }
    String::from_utf8_lossy(&buf[i..]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskname;

    fn small_trace(jobs: usize, seed: u64) -> SyntheticTrace {
        TraceGenerator::new(GeneratorConfig {
            jobs,
            seed,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn deterministic_across_runs_and_threads() {
        let a = small_trace(200, 7);
        let b = small_trace(200, 7);
        assert_eq!(a, b);
        let _one = dagscope_par::ParScope::new(1);
        let c = small_trace(200, 7);
        assert_eq!(a, c);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(small_trace(50, 1).tasks, small_trace(50, 2).tasks);
    }

    #[test]
    fn dependency_fraction_near_half() {
        let trace = small_trace(2_000, 42);
        let set = trace.job_set();
        let dep = set.jobs().iter().filter(|j| j.is_dag_job()).count();
        let frac = dep as f64 / set.len() as f64;
        assert!((0.44..=0.56).contains(&frac), "dep fraction {frac}");
    }

    #[test]
    fn dag_job_names_encode_valid_dags() {
        let trace = small_trace(300, 11);
        for job in trace.job_set().jobs() {
            if !job.is_dag_job() {
                continue;
            }
            let n = job.tasks.len() as u32;
            for t in &job.tasks {
                match taskname::parse(&t.task_name) {
                    taskname::ParsedTaskName::Dag { id, parents, .. } => {
                        assert!(id >= 1 && id <= n);
                        for p in parents {
                            assert!(p < id, "parent {p} >= id {id}");
                        }
                    }
                    _ => panic!("non-DAG name in DAG job"),
                }
            }
        }
    }

    #[test]
    fn sizes_within_published_range() {
        let trace = small_trace(3_000, 5);
        for job in trace.job_set().jobs() {
            if job.is_dag_job() {
                assert!((2..=31).contains(&job.size()), "size {}", job.size());
            }
        }
    }

    #[test]
    fn arrivals_inside_window_and_diurnal() {
        let cfg = GeneratorConfig {
            jobs: 4_000,
            seed: 3,
            ..Default::default()
        };
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let mut by_hour = [0usize; 24];
        for job in trace.job_set().jobs() {
            if let Some(s) = job.start_time() {
                assert!(s >= 0 && s < cfg.window_secs + 86_400, "start {s}");
                by_hour[((s % 86_400) / 3_600) as usize] += 1;
            }
        }
        // Diurnal: the busiest hour must clearly dominate the quietest.
        let max = by_hour.iter().max().unwrap();
        let min = by_hour.iter().min().unwrap();
        assert!(*max as f64 > *min as f64 * 1.5, "hours {by_hour:?}");
    }

    #[test]
    fn abnormal_jobs_present_but_minority() {
        let trace = small_trace(2_000, 9);
        let set = trace.job_set();
        let abnormal = set.jobs().iter().filter(|j| !j.fully_terminated()).count();
        let frac = abnormal as f64 / set.len() as f64;
        assert!(frac > 0.02 && frac < 0.2, "abnormal fraction {frac}");
    }

    #[test]
    fn dep_jobs_consume_majority_of_resources() {
        // The paper's E10 headline: dependency-bearing jobs are ~50 % of
        // batch jobs but consume 70–80 % of batch resources.
        let trace = small_trace(4_000, 42);
        let set = trace.job_set();
        let (mut dep_cpu, mut all_cpu) = (0.0, 0.0);
        for job in set.jobs() {
            let v = job.planned_cpu_volume();
            all_cpu += v;
            if job.is_dag_job() {
                dep_cpu += v;
            }
        }
        let share = dep_cpu / all_cpu;
        assert!((0.6..=0.95).contains(&share), "dep resource share {share}");
    }

    #[test]
    fn instances_emitted_when_requested() {
        let cfg = GeneratorConfig {
            jobs: 60,
            seed: 1,
            emit_instances: true,
            ..Default::default()
        };
        let trace = TraceGenerator::new(cfg).generate();
        assert!(!trace.instances.is_empty());
        for inst in &trace.instances {
            assert!(inst.end_time >= inst.start_time);
            assert!(inst.cpu_max >= inst.cpu_avg);
            assert!(inst.mem_max >= inst.mem_avg);
            assert!(inst.machine_id.starts_with("m_"));
        }
        // Every instance's task exists.
        let task_keys: std::collections::HashSet<(String, String)> = trace
            .tasks
            .iter()
            .map(|t| (t.job_name.to_string(), t.task_name.clone()))
            .collect();
        for inst in &trace.instances {
            assert!(task_keys.contains(&(inst.job_name.clone(), inst.task_name.clone())));
        }
    }

    #[test]
    fn shape_mix_matches_configured_weights() {
        // Chains should be the majority of DAG jobs, inverted triangles
        // second — checked structurally via in/out degrees.
        let trace = small_trace(3_000, 21);
        let mut chains = 0usize;
        let mut dags = 0usize;
        for job in trace.job_set().jobs() {
            if !job.is_dag_job() {
                continue;
            }
            dags += 1;
            let sequential = job
                .tasks
                .iter()
                .all(|t| match taskname::parse(&t.task_name) {
                    taskname::ParsedTaskName::Dag { id, parents, .. } => {
                        (id == 1 && parents.is_empty()) || parents == vec![id - 1]
                    }
                    _ => false,
                });
            if sequential {
                chains += 1;
            }
        }
        let frac = chains as f64 / dags as f64;
        assert!((0.5..=0.68).contains(&frac), "chain fraction {frac}");
    }

    #[test]
    fn recurrence_creates_repeated_topologies() {
        use std::collections::HashMap;
        let census = |recurrence: f64| -> f64 {
            let trace = TraceGenerator::new(GeneratorConfig {
                jobs: 1_000,
                seed: 5,
                recurrence_fraction: recurrence,
                ..Default::default()
            })
            .generate();
            let mut by_signature: HashMap<Vec<String>, usize> = HashMap::new();
            let mut big_jobs = 0usize;
            // Small shapes coincide naturally; template reuse shows up in
            // *large* jobs (≥ 8 tasks) repeating verbatim.
            for job in trace.job_set().jobs() {
                if !job.is_dag_job() || job.size() < 8 {
                    continue;
                }
                big_jobs += 1;
                let mut sig: Vec<String> = job.tasks.iter().map(|t| t.task_name.clone()).collect();
                sig.sort();
                *by_signature.entry(sig).or_insert(0) += 1;
            }
            let repeated: usize = by_signature.values().filter(|&&c| c >= 3).copied().sum();
            repeated as f64 / big_jobs.max(1) as f64
        };
        let with = census(0.5);
        let without = census(0.0);
        assert!(
            with > without + 0.1,
            "recurrence {with:.2} vs none {without:.2}"
        );
    }

    #[test]
    fn base36_encoding_sane() {
        assert_eq!(encode_base36(0), "0");
        assert_eq!(encode_base36(35), "z");
        assert_eq!(encode_base36(36), "10");
    }

    #[test]
    fn shape_weights_sampling_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = ShapeWeights {
            weights: [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        };
        for _ in 0..100 {
            assert_eq!(w.sample(&mut rng), ShapeKind::InvertedTriangle);
        }
    }
}
