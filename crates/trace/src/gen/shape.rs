//! Topological shape construction for synthetic job DAGs.
//!
//! Section V-B of the paper identifies the prevalent structural patterns of
//! batch DAG jobs: *straight chain* (58 %), *inverted triangle* (37 %),
//! *diamond*, *hourglass*, *trapezium*, and hybrid combinations. This module
//! builds concrete DAG plans for each pattern. Tasks are numbered `1..=n` in
//! layer (topological) order, so every parent id is smaller than its child's
//! id and the plan is acyclic by construction.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::taskname::{format_dag, TaskKind};

/// The fundamental shape patterns from Section V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeKind {
    /// All tasks strictly sequential; no parallelism.
    Chain,
    /// Convergent: many inputs funneling into a single sink (MapReduce-like).
    InvertedTriangle,
    /// Single source, wide middle, single sink.
    Diamond,
    /// Wide start and end, narrow middle.
    Hourglass,
    /// Diffuse: more ending tasks than inputs.
    Trapezium,
    /// Inverted-triangle head followed by a sequential chain tail.
    Hybrid,
}

impl ShapeKind {
    /// All shapes, in the order the paper introduces them.
    pub const ALL: [ShapeKind; 6] = [
        ShapeKind::Chain,
        ShapeKind::InvertedTriangle,
        ShapeKind::Diamond,
        ShapeKind::Hourglass,
        ShapeKind::Trapezium,
        ShapeKind::Hybrid,
    ];

    /// Smallest job size that can express this shape.
    pub fn min_size(&self) -> usize {
        match self {
            ShapeKind::Chain => 2,
            ShapeKind::InvertedTriangle => 3,
            ShapeKind::Diamond => 4,
            ShapeKind::Hourglass => 5,
            ShapeKind::Trapezium => 3,
            ShapeKind::Hybrid => 5,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShapeKind::Chain => "straight-chain",
            ShapeKind::InvertedTriangle => "inverted-triangle",
            ShapeKind::Diamond => "diamond",
            ShapeKind::Hourglass => "hourglass",
            ShapeKind::Trapezium => "trapezium",
            ShapeKind::Hybrid => "hybrid",
        }
    }
}

/// A concrete DAG blueprint: per-task stage kinds and parent lists.
///
/// Task ids are 1-based and topologically ordered (`parents[i]` only contains
/// ids `< i + 1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagPlan {
    /// The pattern this plan was built from.
    pub shape: ShapeKind,
    /// Stage kind of task `i + 1`.
    pub kinds: Vec<TaskKind>,
    /// Parent ids of task `i + 1`, sorted descending (the trace convention:
    /// `R5_4_3_2_1`).
    pub parents: Vec<Vec<u32>>,
}

impl DagPlan {
    /// Number of tasks.
    pub fn size(&self) -> usize {
        self.kinds.len()
    }

    /// In-degree of task `id` (1-based).
    pub fn in_degree(&self, id: u32) -> usize {
        self.parents[(id - 1) as usize].len()
    }

    /// Render the v2018 task names for this plan.
    pub fn task_names(&self) -> Vec<String> {
        (0..self.size())
            .map(|i| format_dag(self.kinds[i], (i + 1) as u32, &self.parents[i]))
            .collect()
    }

    /// Longest path length in **vertices** (the paper's "critical path" /
    /// depth measure; a 2-task chain has critical path 2).
    pub fn critical_path(&self) -> usize {
        let n = self.size();
        let mut depth = vec![0usize; n + 1];
        for id in 1..=n {
            let d = self.parents[id - 1]
                .iter()
                .map(|&p| depth[p as usize])
                .max()
                .unwrap_or(0);
            depth[id] = d + 1;
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Verify the structural invariants (used by tests and proptest).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.size() as u32;
        if self.parents.len() != self.kinds.len() {
            return Err("kinds/parents length mismatch".into());
        }
        for (i, ps) in self.parents.iter().enumerate() {
            let id = (i + 1) as u32;
            let mut seen = std::collections::HashSet::new();
            for &p in ps {
                if p == 0 || p > n {
                    return Err(format!("task {id}: parent {p} out of range"));
                }
                if p >= id {
                    return Err(format!("task {id}: parent {p} not topologically earlier"));
                }
                if !seen.insert(p) {
                    return Err(format!("task {id}: duplicate parent {p}"));
                }
            }
            for w in ps.windows(2) {
                if w[0] < w[1] {
                    return Err(format!("task {id}: parents not sorted descending"));
                }
            }
        }
        Ok(())
    }
}

/// Sample `k` distinct values from `0..len` (partial Fisher-Yates).
fn sample_distinct<R: Rng>(rng: &mut R, len: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= len);
    let mut pool: Vec<usize> = (0..len).collect();
    for i in 0..k {
        let j = rng.random_range(i..len);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Strictly decreasing layer widths ending at 1, summing to `n` (`n >= 3`).
/// Because widths grow by at least one per layer toward the inputs, the
/// depth is bounded by `O(sqrt(n))` — at most 7 layers for `n <= 35`.
fn inverted_triangle_widths<R: Rng>(rng: &mut R, n: usize) -> Vec<usize> {
    debug_assert!(n >= 3);
    let mut widths = vec![1usize]; // output layer, building backwards
    let mut remaining = n - 1;
    while remaining > 0 {
        let last = *widths.last().unwrap();
        let min_w = last + 1;
        if remaining < min_w {
            // Absorb the leftover into the (current) input layer; it is the
            // largest, so the strict decrease is preserved.
            *widths.last_mut().unwrap() += remaining;
            remaining = 0;
        } else {
            let max_w = remaining.min(min_w + 3);
            let w = rng.random_range(min_w..=max_w);
            widths.push(w);
            remaining -= w;
        }
    }
    widths.reverse();
    widths
}

/// `[1, middles…, 1]` with every middle layer at least 2 wide (`n >= 4`).
fn diamond_widths<R: Rng>(rng: &mut R, n: usize) -> Vec<usize> {
    debug_assert!(n >= 4);
    let mid_total = n - 2;
    let max_layers = (mid_total / 2).clamp(1, 4);
    let layers = rng.random_range(1..=max_layers);
    let base = mid_total / layers;
    let mut rem = mid_total % layers;
    let mut widths = vec![1usize];
    for _ in 0..layers {
        let extra = if rem > 0 {
            rem -= 1;
            1
        } else {
            0
        };
        widths.push(base + extra);
    }
    widths.push(1);
    widths
}

/// `[a, 1, b]` with `a, b >= 2` (`n >= 5`).
fn hourglass_widths<R: Rng>(rng: &mut R, n: usize) -> Vec<usize> {
    debug_assert!(n >= 5);
    let ends = n - 1;
    let a = rng.random_range(2..=(ends - 2));
    vec![a, 1, ends - a]
}

/// Connect consecutive layers. Children in converging transitions
/// (`prev_width > next_width`) take several parents; in expanding
/// transitions each child takes one (plus coverage fixes). When
/// `full_cross_last` is set, the final layer connects to *every* node of its
/// predecessor (the paper's "group C" intersection pattern).
fn connect_layers<R: Rng>(rng: &mut R, widths: &[usize], full_cross_last: bool) -> Vec<Vec<u32>> {
    let n: usize = widths.iter().sum();
    let mut parents: Vec<Vec<u32>> = vec![Vec::new(); n];

    // First id of each layer.
    let mut layer_start = Vec::with_capacity(widths.len());
    let mut acc = 1u32;
    for &w in widths {
        layer_start.push(acc);
        acc += w as u32;
    }

    for l in 1..widths.len() {
        let (pw, cw) = (widths[l - 1], widths[l]);
        let pstart = layer_start[l - 1];
        let cstart = layer_start[l];
        let full = full_cross_last && l == widths.len() - 1;
        let mut parent_covered = vec![false; pw];

        for c in 0..cw {
            let child = cstart + c as u32;
            let k = if full {
                pw
            } else if pw > cw {
                // Converging: children fan in.
                let max_k = pw.clamp(1, 3);
                rng.random_range(1..=max_k)
            } else {
                1
            };
            let mut ps: Vec<u32> = sample_distinct(rng, pw, k)
                .into_iter()
                .map(|off| {
                    parent_covered[off] = true;
                    pstart + off as u32
                })
                .collect();
            ps.sort_unstable_by(|a, b| b.cmp(a));
            parents[(child - 1) as usize] = ps;
        }

        // Coverage: every parent must feed at least one child, otherwise it
        // would become a spurious extra sink.
        for (off, covered) in parent_covered.iter().enumerate() {
            if !covered {
                let c = rng.random_range(0..cw);
                let child = cstart + c as u32;
                let p = pstart + off as u32;
                let list = &mut parents[(child - 1) as usize];
                if !list.contains(&p) {
                    list.push(p);
                    list.sort_unstable_by(|a, b| b.cmp(a));
                }
            }
        }
    }
    parents
}

/// Assign stage kinds following the paper's observed conventions
/// (Section V-C): sources are Map; the sink of a convergent job is Reduce;
/// multi-parent intermediates are usually Join; single-parent intermediates
/// are usually Reduce, occasionally Merge (which shares the `M` code).
fn assign_kinds<R: Rng>(rng: &mut R, parents: &[Vec<u32>], shape: ShapeKind) -> Vec<TaskKind> {
    let n = parents.len();
    let mut has_child = vec![false; n + 1];
    for ps in parents {
        for &p in ps {
            has_child[p as usize] = true;
        }
    }

    if shape == ShapeKind::Chain {
        // Chains implement plain MapReduce without joins; short chains stay
        // map-heavy, longer ones are reduce-heavy (Section V-C).
        let maps = if n < 4 { n.div_ceil(2) } else { (n / 3).max(1) };
        return (0..n)
            .map(|i| {
                if i < maps {
                    TaskKind::Map
                } else {
                    TaskKind::Reduce
                }
            })
            .collect();
    }

    (0..n)
        .map(|i| {
            let id = i + 1;
            let indeg = parents[i].len();
            if indeg == 0 {
                TaskKind::Map
            } else if !has_child[id] {
                // Terminal task: aggregation.
                TaskKind::Reduce
            } else if indeg >= 2 {
                if rng.random_range(0..10) < 6 {
                    TaskKind::Join
                } else {
                    TaskKind::Reduce
                }
            } else if rng.random_range(0..10) < 7 {
                TaskKind::Reduce
            } else {
                TaskKind::Map // Merge stages share the M code.
            }
        })
        .collect()
}

/// Build a DAG plan of `shape` with exactly `n` tasks.
///
/// `n` is clamped up to [`ShapeKind::min_size`]. Plans are deterministic
/// given the RNG state and always satisfy [`DagPlan::validate`].
pub fn build<R: Rng>(rng: &mut R, shape: ShapeKind, n: usize) -> DagPlan {
    let n = n.max(shape.min_size());
    let (widths, full_cross) = match shape {
        ShapeKind::Chain => (vec![1usize; n], false),
        ShapeKind::InvertedTriangle => (inverted_triangle_widths(rng, n), false),
        ShapeKind::Diamond => (diamond_widths(rng, n), false),
        ShapeKind::Hourglass => (hourglass_widths(rng, n), false),
        ShapeKind::Trapezium => {
            // Diffuse: the mirror image of the convergent pattern. Its last
            // layer is occasionally fully connected to the previous one
            // (the paper's group-C intersection structure).
            let mut w = inverted_triangle_widths(rng, n);
            w.reverse();
            (w, rng.random_range(0..10) < 3)
        }
        ShapeKind::Hybrid => {
            // Convergent head, then a sequential tail hanging off the sink.
            let tail = rng.random_range(2..=3.min(n.saturating_sub(3)).max(2));
            let head = n - tail;
            let mut w = inverted_triangle_widths(rng, head.max(3));
            w.extend(std::iter::repeat_n(1, tail));
            // Keep the paper's observed depth bound (critical path <= 8).
            while w.len() > 8 && w.last() == Some(&1) && w[w.len() - 2] == 1 {
                let extra = w.pop().unwrap();
                *w.first_mut().unwrap() += extra;
            }
            (w, false)
        }
    };

    let parents = connect_layers(rng, &widths, full_cross);
    let kinds = assign_kinds(rng, &parents, shape);
    let plan = DagPlan {
        shape,
        kinds,
        parents,
    };
    debug_assert_eq!(plan.size(), widths.iter().sum::<usize>());
    debug_assert!(plan.validate().is_ok());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn chain_plan_is_sequential() {
        let plan = build(&mut rng(1), ShapeKind::Chain, 5);
        assert_eq!(plan.size(), 5);
        assert_eq!(plan.critical_path(), 5);
        assert_eq!(plan.parents[0], Vec::<u32>::new());
        for i in 1..5 {
            assert_eq!(plan.parents[i], vec![i as u32]);
        }
        plan.validate().unwrap();
    }

    #[test]
    fn chain_kind_rules() {
        // n < 4: maps at least match reduces.
        let p3 = build(&mut rng(2), ShapeKind::Chain, 3);
        let maps = p3.kinds.iter().filter(|k| **k == TaskKind::Map).count();
        assert!(maps >= 3 - maps);
        // Long chain: reduce-heavy, no joins.
        let p8 = build(&mut rng(2), ShapeKind::Chain, 8);
        assert!(!p8.kinds.contains(&TaskKind::Join));
        let r = p8.kinds.iter().filter(|k| **k == TaskKind::Reduce).count();
        assert!(r > 8 - r);
    }

    #[test]
    fn inverted_triangle_converges_to_single_sink() {
        for seed in 0..20 {
            for n in [3usize, 7, 15, 31] {
                let plan = build(&mut rng(seed), ShapeKind::InvertedTriangle, n);
                assert_eq!(plan.size(), n);
                plan.validate().unwrap();
                // Exactly one sink (no children).
                let mut has_child = vec![false; n + 1];
                for ps in &plan.parents {
                    for &p in ps {
                        has_child[p as usize] = true;
                    }
                }
                let sinks = (1..=n).filter(|&id| !has_child[id]).count();
                assert_eq!(sinks, 1, "seed={seed} n={n}");
                // Sources outnumber the sink.
                let sources = plan.parents.iter().filter(|p| p.is_empty()).count();
                assert!(sources >= 2, "seed={seed} n={n}");
                assert!(plan.critical_path() <= 8);
            }
        }
    }

    #[test]
    fn diamond_single_source_single_sink_wide_middle() {
        for seed in 0..20 {
            let plan = build(&mut rng(seed), ShapeKind::Diamond, 8);
            plan.validate().unwrap();
            let sources = plan.parents.iter().filter(|p| p.is_empty()).count();
            assert_eq!(sources, 1);
            let mut has_child = vec![false; plan.size() + 1];
            for ps in &plan.parents {
                for &p in ps {
                    has_child[p as usize] = true;
                }
            }
            let sinks = (1..=plan.size()).filter(|&id| !has_child[id]).count();
            assert_eq!(sinks, 1);
        }
    }

    #[test]
    fn hourglass_has_narrow_waist() {
        let plan = build(&mut rng(5), ShapeKind::Hourglass, 9);
        plan.validate().unwrap();
        assert_eq!(plan.critical_path(), 3);
        let sources = plan.parents.iter().filter(|p| p.is_empty()).count();
        assert!(sources >= 2);
    }

    #[test]
    fn trapezium_is_diffuse() {
        for seed in 0..20 {
            let plan = build(&mut rng(seed), ShapeKind::Trapezium, 10);
            plan.validate().unwrap();
            let sources = plan.parents.iter().filter(|p| p.is_empty()).count();
            let mut has_child = vec![false; plan.size() + 1];
            for ps in &plan.parents {
                for &p in ps {
                    has_child[p as usize] = true;
                }
            }
            let sinks = (1..=plan.size()).filter(|&id| !has_child[id]).count();
            assert!(
                sinks > sources,
                "seed={seed}: {sinks} sinks vs {sources} sources"
            );
        }
    }

    #[test]
    fn hybrid_depth_bounded() {
        for seed in 0..30 {
            for n in [5usize, 12, 31] {
                let plan = build(&mut rng(seed), ShapeKind::Hybrid, n);
                plan.validate().unwrap();
                assert_eq!(plan.size(), n);
                assert!(plan.critical_path() <= 8, "depth {}", plan.critical_path());
            }
        }
    }

    #[test]
    fn sizes_clamped_to_minimum() {
        let plan = build(&mut rng(0), ShapeKind::Hourglass, 2);
        assert_eq!(plan.size(), ShapeKind::Hourglass.min_size());
    }

    #[test]
    fn every_non_source_reachable_from_layer_zero() {
        // Parents always come from the immediately preceding layer, so a
        // task either is a source or has at least one parent.
        for shape in ShapeKind::ALL {
            let plan = build(&mut rng(99), shape, 12);
            for (i, ps) in plan.parents.iter().enumerate() {
                let indeg0 = ps.is_empty();
                let is_map = plan.kinds[i] == TaskKind::Map;
                if indeg0 {
                    assert!(is_map, "{shape:?}: source task must be Map");
                }
            }
        }
    }

    #[test]
    fn task_names_follow_grammar() {
        let plan = build(&mut rng(3), ShapeKind::InvertedTriangle, 6);
        for (i, name) in plan.task_names().iter().enumerate() {
            match crate::taskname::parse(name) {
                crate::taskname::ParsedTaskName::Dag { id, parents, .. } => {
                    assert_eq!(id as usize, i + 1);
                    assert_eq!(parents, plan.parents[i]);
                }
                _ => panic!("name {name} did not parse as DAG"),
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = build(&mut rng(7), ShapeKind::Diamond, 9);
        let b = build(&mut rng(7), ShapeKind::Diamond, 9);
        assert_eq!(a, b);
    }
}
