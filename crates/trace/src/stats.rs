//! Trace-level headline statistics (experiment E10).
//!
//! Section II-B of the paper reports that roughly half of batch jobs carry
//! dependencies and that those jobs consume 70–80 % of batch resources.
//! [`TraceStats`] recomputes those numbers (plus supporting distributions)
//! from any [`JobSet`] — synthetic or ingested from the real trace files.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::fsum::ExactSum;
use crate::schema::Status;
use crate::{Job, JobSet};

/// Aggregate statistics over a job population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of jobs.
    pub total_jobs: usize,
    /// Jobs whose every task name parses as a DAG task.
    pub dag_jobs: usize,
    /// `dag_jobs / total_jobs`.
    pub dag_fraction: f64,
    /// Share of planned CPU volume requested by DAG jobs.
    pub dag_cpu_share: f64,
    /// Share of planned memory volume requested by DAG jobs.
    pub dag_mem_share: f64,
    /// DAG-job size histogram (`size → count`).
    pub size_histogram: BTreeMap<usize, usize>,
    /// Task status histogram over all tasks.
    pub status_histogram: BTreeMap<String, usize>,
    /// Jobs passing the integrity criterion (all tasks terminated).
    pub terminated_jobs: usize,
    /// Completion-time percentiles (p50, p90, p99, seconds) over fully
    /// terminated DAG jobs.
    pub completion_percentiles: (i64, i64, i64),
}

impl TraceStats {
    /// Compute the statistics for `set`.
    pub fn compute(set: &JobSet) -> TraceStats {
        let mut acc = StatsAccumulator::new();
        for job in set.jobs() {
            acc.add_job(job);
        }
        acc.finish()
    }

    /// Number of distinct DAG-job sizes (the paper's "size types": 17 in
    /// their 100-job sample).
    pub fn size_type_count(&self) -> usize {
        self.size_histogram.len()
    }

    /// Count of terminated tasks across the trace.
    pub fn terminated_tasks(&self) -> usize {
        self.status_histogram
            .get(Status::Terminated.as_str())
            .copied()
            .unwrap_or(0)
    }

    /// Multi-line human-readable rendering for reports.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "jobs:             {}", self.total_jobs).unwrap();
        writeln!(
            s,
            "dependency jobs:  {} ({:.1} %)",
            self.dag_jobs,
            100.0 * self.dag_fraction
        )
        .unwrap();
        writeln!(
            s,
            "dep resource use: {:.1} % CPU, {:.1} % memory",
            100.0 * self.dag_cpu_share,
            100.0 * self.dag_mem_share
        )
        .unwrap();
        writeln!(s, "terminated jobs:  {}", self.terminated_jobs).unwrap();
        writeln!(s, "size types:       {}", self.size_type_count()).unwrap();
        let (p50, p90, p99) = self.completion_percentiles;
        writeln!(s, "DAG job JCT:      p50 {p50}s, p90 {p90}s, p99 {p99}s").unwrap();
        s
    }
}

/// The per-job quantities [`StatsAccumulator`] folds — everything
/// [`TraceStats`] needs from one job, decoupled from how the job is stored
/// (heap [`Job`] or a columnar store view).
#[derive(Debug, Clone, PartialEq)]
pub struct JobFacts {
    /// [`Job::planned_cpu_volume`].
    pub cpu_volume: f64,
    /// [`Job::planned_mem_volume`].
    pub mem_volume: f64,
    /// [`Job::is_dag_job`].
    pub is_dag: bool,
    /// [`Job::size`].
    pub size: usize,
    /// [`Job::fully_terminated`].
    pub fully_terminated: bool,
    /// [`Job::completion_time`].
    pub completion: Option<i64>,
    /// Task count per status, indexed per [`Status::index`].
    pub status_counts: [usize; Status::ALL.len()],
}

impl JobFacts {
    /// Derive the facts from a materialized [`Job`].
    pub fn of_job(job: &Job) -> JobFacts {
        let mut status_counts = [0usize; Status::ALL.len()];
        for t in &job.tasks {
            status_counts[t.status.index()] += 1;
        }
        JobFacts {
            cpu_volume: job.planned_cpu_volume(),
            mem_volume: job.planned_mem_volume(),
            is_dag: job.is_dag_job(),
            size: job.size(),
            fully_terminated: job.fully_terminated(),
            completion: job.completion_time(),
            status_counts,
        }
    }
}

/// Incremental, revisable builder for [`TraceStats`].
///
/// Jobs are folded in one at a time ([`StatsAccumulator::add_job`] /
/// [`StatsAccumulator::add_facts`]) and can later be *retracted*
/// ([`StatsAccumulator::remove_facts`]) when a streamed job is revised —
/// out-of-order straggler rows merged in, or a quarantine verdict dropping
/// the job. Resource volumes accumulate through [`ExactSum`], so the final
/// [`TraceStats`] depends only on the multiset of surviving jobs, never on
/// fold order: `compute` over a batch [`JobSet`] and a streamed fold over
/// the same jobs agree bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct StatsAccumulator {
    jobs: usize,
    dag_jobs: usize,
    terminated_jobs: usize,
    size_histogram: BTreeMap<usize, usize>,
    status_counts: [usize; Status::ALL.len()],
    /// Completion-time multiset (`seconds → count`) over terminated DAG jobs.
    completions: BTreeMap<i64, usize>,
    cpu_all: ExactSum,
    cpu_dag: ExactSum,
    mem_all: ExactSum,
    mem_dag: ExactSum,
}

impl StatsAccumulator {
    /// Empty accumulator.
    pub fn new() -> StatsAccumulator {
        StatsAccumulator::default()
    }

    /// Number of jobs currently folded in.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Fold one job in.
    pub fn add_job(&mut self, job: &Job) {
        self.add_facts(&JobFacts::of_job(job));
    }

    /// Retract one previously added job.
    pub fn remove_job(&mut self, job: &Job) {
        self.remove_facts(&JobFacts::of_job(job));
    }

    /// Fold one job's facts in.
    pub fn add_facts(&mut self, f: &JobFacts) {
        self.jobs += 1;
        self.cpu_all.add(f.cpu_volume);
        self.mem_all.add(f.mem_volume);
        if f.is_dag {
            self.dag_jobs += 1;
            self.cpu_dag.add(f.cpu_volume);
            self.mem_dag.add(f.mem_volume);
            *self.size_histogram.entry(f.size).or_insert(0) += 1;
        }
        if f.fully_terminated {
            self.terminated_jobs += 1;
            if f.is_dag {
                if let Some(ct) = f.completion {
                    *self.completions.entry(ct).or_insert(0) += 1;
                }
            }
        }
        for (slot, &c) in self.status_counts.iter_mut().zip(&f.status_counts) {
            *slot += c;
        }
    }

    /// Exact inverse of [`StatsAccumulator::add_facts`] for the same facts.
    pub fn remove_facts(&mut self, f: &JobFacts) {
        self.jobs -= 1;
        self.cpu_all.sub(f.cpu_volume);
        self.mem_all.sub(f.mem_volume);
        if f.is_dag {
            self.dag_jobs -= 1;
            self.cpu_dag.sub(f.cpu_volume);
            self.mem_dag.sub(f.mem_volume);
            Self::decrement(&mut self.size_histogram, f.size);
        }
        if f.fully_terminated {
            self.terminated_jobs -= 1;
            if f.is_dag {
                if let Some(ct) = f.completion {
                    Self::decrement(&mut self.completions, ct);
                }
            }
        }
        for (slot, &c) in self.status_counts.iter_mut().zip(&f.status_counts) {
            *slot -= c;
        }
    }

    fn decrement<K: Ord>(map: &mut BTreeMap<K, usize>, key: K) {
        match map.get_mut(&key) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                map.remove(&key);
            }
            None => panic!("retracting a job that was never added"),
        }
    }

    /// Finalize into [`TraceStats`].
    pub fn finish(&self) -> TraceStats {
        let mut stats = TraceStats {
            total_jobs: self.jobs,
            dag_jobs: self.dag_jobs,
            dag_fraction: 0.0,
            dag_cpu_share: 0.0,
            dag_mem_share: 0.0,
            size_histogram: self.size_histogram.clone(),
            status_histogram: BTreeMap::new(),
            terminated_jobs: self.terminated_jobs,
            completion_percentiles: (0, 0, 0),
        };
        for s in Status::ALL {
            let c = self.status_counts[s.index()];
            if c > 0 {
                stats.status_histogram.insert(s.as_str().to_string(), c);
            }
        }
        if stats.total_jobs > 0 {
            stats.dag_fraction = stats.dag_jobs as f64 / stats.total_jobs as f64;
        }
        let (cpu_all, mem_all) = (self.cpu_all.value(), self.mem_all.value());
        if cpu_all > 0.0 {
            stats.dag_cpu_share = self.cpu_dag.value() / cpu_all;
        }
        if mem_all > 0.0 {
            stats.dag_mem_share = self.mem_dag.value() / mem_all;
        }
        let n: usize = self.completions.values().sum();
        if n > 0 {
            // Rank-select from the multiset — identical to indexing the
            // sorted completion vector the batch path used to build.
            let pick = |p: f64| -> i64 {
                let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
                let mut seen = 0usize;
                for (&ct, &k) in &self.completions {
                    seen += k;
                    if seen >= rank {
                        return ct;
                    }
                }
                unreachable!("rank {rank} beyond multiset of {n}")
            };
            stats.completion_percentiles = (pick(0.50), pick(0.90), pick(0.99));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};
    use crate::schema::{Status, TaskRecord};
    use crate::Job;

    #[test]
    fn empty_set() {
        let s = TraceStats::compute(&JobSet::default());
        assert_eq!(s.total_jobs, 0);
        assert_eq!(s.dag_fraction, 0.0);
        assert_eq!(s.size_type_count(), 0);
    }

    #[test]
    fn counts_on_hand_built_set() {
        let dag = Job {
            name: "j_1".into(),
            tasks: vec![
                TaskRecord {
                    task_name: "M1".into(),
                    instance_num: 10,
                    job_name: "j_1".into(),
                    task_type: "1".into(),
                    status: Status::Terminated,
                    start_time: 1,
                    end_time: 2,
                    plan_cpu: 100.0,
                    plan_mem: 1.0,
                },
                TaskRecord {
                    task_name: "R2_1".into(),
                    instance_num: 5,
                    job_name: "j_1".into(),
                    task_type: "1".into(),
                    status: Status::Terminated,
                    start_time: 2,
                    end_time: 3,
                    plan_cpu: 100.0,
                    plan_mem: 1.0,
                },
            ],
        };
        let indep = Job {
            name: "j_2".into(),
            tasks: vec![TaskRecord {
                task_name: "task_x".into(),
                instance_num: 5,
                job_name: "j_2".into(),
                task_type: "1".into(),
                status: Status::Failed,
                start_time: 1,
                end_time: 0,
                plan_cpu: 100.0,
                plan_mem: 1.0,
            }],
        };
        let s = TraceStats::compute(&JobSet::from_jobs(vec![dag, indep]));
        assert_eq!(s.total_jobs, 2);
        assert_eq!(s.dag_jobs, 1);
        assert_eq!(s.dag_fraction, 0.5);
        // dag cpu = 15 * 100, indep = 5 * 100.
        assert!((s.dag_cpu_share - 0.75).abs() < 1e-12);
        assert_eq!(s.size_histogram.get(&2), Some(&1));
        assert_eq!(s.terminated_jobs, 1);
        assert_eq!(s.terminated_tasks(), 2);
        assert_eq!(s.status_histogram.get("Failed"), Some(&1));
    }

    #[test]
    fn completion_percentiles_ordered() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 500,
            seed: 4,
            ..Default::default()
        })
        .generate();
        let s = TraceStats::compute(&trace.job_set());
        let (p50, p90, p99) = s.completion_percentiles;
        assert!(p50 > 0, "p50 {p50}");
        assert!(p50 <= p90 && p90 <= p99);
        assert!(s.render().contains("DAG job JCT"));
    }

    #[test]
    fn accumulator_retraction_matches_fresh_compute() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 300,
            seed: 9,
            ..Default::default()
        })
        .generate();
        let set = trace.job_set();
        // Fold everything, then retract every third job; the result must be
        // bit-identical to computing over the survivors from scratch.
        let mut acc = StatsAccumulator::new();
        for job in set.jobs() {
            acc.add_job(job);
        }
        let mut survivors = Vec::new();
        for (i, job) in set.jobs().iter().enumerate() {
            if i % 3 == 0 {
                acc.remove_job(job);
            } else {
                survivors.push(job.clone());
            }
        }
        let direct = TraceStats::compute(&JobSet::from_jobs(survivors));
        let folded = acc.finish();
        assert_eq!(folded, direct);
        assert_eq!(
            folded.dag_cpu_share.to_bits(),
            direct.dag_cpu_share.to_bits()
        );
    }

    #[test]
    fn synthetic_trace_reproduces_paper_headlines() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 3_000,
            seed: 42,
            ..Default::default()
        })
        .generate();
        let s = TraceStats::compute(&trace.job_set());
        assert!(
            (0.42..=0.58).contains(&s.dag_fraction),
            "dag fraction {}",
            s.dag_fraction
        );
        assert!(
            (0.60..=0.92).contains(&s.dag_cpu_share),
            "dag cpu share {}",
            s.dag_cpu_share
        );
        // All 30 possible DAG sizes (2..=31) should be represented in a
        // 3000-job trace — certainly at least the paper's 17 size types.
        assert!(
            s.size_type_count() >= 17,
            "size types {}",
            s.size_type_count()
        );
        let rendered = s.render();
        assert!(rendered.contains("dependency jobs"));
    }
}
