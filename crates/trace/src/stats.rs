//! Trace-level headline statistics (experiment E10).
//!
//! Section II-B of the paper reports that roughly half of batch jobs carry
//! dependencies and that those jobs consume 70–80 % of batch resources.
//! [`TraceStats`] recomputes those numbers (plus supporting distributions)
//! from any [`JobSet`] — synthetic or ingested from the real trace files.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::schema::Status;
use crate::JobSet;

/// Aggregate statistics over a job population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of jobs.
    pub total_jobs: usize,
    /// Jobs whose every task name parses as a DAG task.
    pub dag_jobs: usize,
    /// `dag_jobs / total_jobs`.
    pub dag_fraction: f64,
    /// Share of planned CPU volume requested by DAG jobs.
    pub dag_cpu_share: f64,
    /// Share of planned memory volume requested by DAG jobs.
    pub dag_mem_share: f64,
    /// DAG-job size histogram (`size → count`).
    pub size_histogram: BTreeMap<usize, usize>,
    /// Task status histogram over all tasks.
    pub status_histogram: BTreeMap<String, usize>,
    /// Jobs passing the integrity criterion (all tasks terminated).
    pub terminated_jobs: usize,
    /// Completion-time percentiles (p50, p90, p99, seconds) over fully
    /// terminated DAG jobs.
    pub completion_percentiles: (i64, i64, i64),
}

impl TraceStats {
    /// Compute the statistics for `set`.
    pub fn compute(set: &JobSet) -> TraceStats {
        let mut stats = TraceStats {
            total_jobs: set.len(),
            dag_jobs: 0,
            dag_fraction: 0.0,
            dag_cpu_share: 0.0,
            dag_mem_share: 0.0,
            size_histogram: BTreeMap::new(),
            status_histogram: BTreeMap::new(),
            terminated_jobs: 0,
            completion_percentiles: (0, 0, 0),
        };
        let mut completions: Vec<i64> = Vec::new();
        let (mut cpu_all, mut cpu_dag) = (0.0f64, 0.0f64);
        let (mut mem_all, mut mem_dag) = (0.0f64, 0.0f64);

        for job in set.jobs() {
            let cpu = job.planned_cpu_volume();
            let mem = job.planned_mem_volume();
            cpu_all += cpu;
            mem_all += mem;
            if job.is_dag_job() {
                stats.dag_jobs += 1;
                cpu_dag += cpu;
                mem_dag += mem;
                *stats.size_histogram.entry(job.size()).or_insert(0) += 1;
            }
            if job.fully_terminated() {
                stats.terminated_jobs += 1;
                if job.is_dag_job() {
                    if let Some(ct) = job.completion_time() {
                        completions.push(ct);
                    }
                }
            }
            for t in &job.tasks {
                *stats
                    .status_histogram
                    .entry(t.status.as_str().to_string())
                    .or_insert(0) += 1;
            }
        }

        if stats.total_jobs > 0 {
            stats.dag_fraction = stats.dag_jobs as f64 / stats.total_jobs as f64;
        }
        if cpu_all > 0.0 {
            stats.dag_cpu_share = cpu_dag / cpu_all;
        }
        if mem_all > 0.0 {
            stats.dag_mem_share = mem_dag / mem_all;
        }
        if !completions.is_empty() {
            completions.sort_unstable();
            let pick = |p: f64| -> i64 {
                let n = completions.len();
                completions[((p * n as f64).ceil() as usize).clamp(1, n) - 1]
            };
            stats.completion_percentiles = (pick(0.50), pick(0.90), pick(0.99));
        }
        stats
    }

    /// Number of distinct DAG-job sizes (the paper's "size types": 17 in
    /// their 100-job sample).
    pub fn size_type_count(&self) -> usize {
        self.size_histogram.len()
    }

    /// Count of terminated tasks across the trace.
    pub fn terminated_tasks(&self) -> usize {
        self.status_histogram
            .get(Status::Terminated.as_str())
            .copied()
            .unwrap_or(0)
    }

    /// Multi-line human-readable rendering for reports.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "jobs:             {}", self.total_jobs).unwrap();
        writeln!(
            s,
            "dependency jobs:  {} ({:.1} %)",
            self.dag_jobs,
            100.0 * self.dag_fraction
        )
        .unwrap();
        writeln!(
            s,
            "dep resource use: {:.1} % CPU, {:.1} % memory",
            100.0 * self.dag_cpu_share,
            100.0 * self.dag_mem_share
        )
        .unwrap();
        writeln!(s, "terminated jobs:  {}", self.terminated_jobs).unwrap();
        writeln!(s, "size types:       {}", self.size_type_count()).unwrap();
        let (p50, p90, p99) = self.completion_percentiles;
        writeln!(s, "DAG job JCT:      p50 {p50}s, p90 {p90}s, p99 {p99}s").unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};
    use crate::schema::{Status, TaskRecord};
    use crate::Job;

    #[test]
    fn empty_set() {
        let s = TraceStats::compute(&JobSet::default());
        assert_eq!(s.total_jobs, 0);
        assert_eq!(s.dag_fraction, 0.0);
        assert_eq!(s.size_type_count(), 0);
    }

    #[test]
    fn counts_on_hand_built_set() {
        let dag = Job {
            name: "j_1".into(),
            tasks: vec![
                TaskRecord {
                    task_name: "M1".into(),
                    instance_num: 10,
                    job_name: "j_1".into(),
                    task_type: "1".into(),
                    status: Status::Terminated,
                    start_time: 1,
                    end_time: 2,
                    plan_cpu: 100.0,
                    plan_mem: 1.0,
                },
                TaskRecord {
                    task_name: "R2_1".into(),
                    instance_num: 5,
                    job_name: "j_1".into(),
                    task_type: "1".into(),
                    status: Status::Terminated,
                    start_time: 2,
                    end_time: 3,
                    plan_cpu: 100.0,
                    plan_mem: 1.0,
                },
            ],
        };
        let indep = Job {
            name: "j_2".into(),
            tasks: vec![TaskRecord {
                task_name: "task_x".into(),
                instance_num: 5,
                job_name: "j_2".into(),
                task_type: "1".into(),
                status: Status::Failed,
                start_time: 1,
                end_time: 0,
                plan_cpu: 100.0,
                plan_mem: 1.0,
            }],
        };
        let s = TraceStats::compute(&JobSet::from_jobs(vec![dag, indep]));
        assert_eq!(s.total_jobs, 2);
        assert_eq!(s.dag_jobs, 1);
        assert_eq!(s.dag_fraction, 0.5);
        // dag cpu = 15 * 100, indep = 5 * 100.
        assert!((s.dag_cpu_share - 0.75).abs() < 1e-12);
        assert_eq!(s.size_histogram.get(&2), Some(&1));
        assert_eq!(s.terminated_jobs, 1);
        assert_eq!(s.terminated_tasks(), 2);
        assert_eq!(s.status_histogram.get("Failed"), Some(&1));
    }

    #[test]
    fn completion_percentiles_ordered() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 500,
            seed: 4,
            ..Default::default()
        })
        .generate();
        let s = TraceStats::compute(&trace.job_set());
        let (p50, p90, p99) = s.completion_percentiles;
        assert!(p50 > 0, "p50 {p50}");
        assert!(p50 <= p90 && p90 <= p99);
        assert!(s.render().contains("DAG job JCT"));
    }

    #[test]
    fn synthetic_trace_reproduces_paper_headlines() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 3_000,
            seed: 42,
            ..Default::default()
        })
        .generate();
        let s = TraceStats::compute(&trace.job_set());
        assert!(
            (0.42..=0.58).contains(&s.dag_fraction),
            "dag fraction {}",
            s.dag_fraction
        );
        assert!(
            (0.60..=0.92).contains(&s.dag_cpu_share),
            "dag cpu share {}",
            s.dag_cpu_share
        );
        // All 30 possible DAG sizes (2..=31) should be represented in a
        // 3000-job trace — certainly at least the paper's 17 size types.
        assert!(
            s.size_type_count() >= 17,
            "size types {}",
            s.size_type_count()
        );
        let rendered = s.render();
        assert!(rendered.contains("dependency jobs"));
    }
}
