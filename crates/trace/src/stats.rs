//! Trace-level headline statistics (experiment E10).
//!
//! Section II-B of the paper reports that roughly half of batch jobs carry
//! dependencies and that those jobs consume 70–80 % of batch resources.
//! [`TraceStats`] recomputes those numbers (plus supporting distributions)
//! from any [`JobSet`] — synthetic or ingested from the real trace files.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

use crate::fsum::ExactSum;
use crate::schema::Status;
use crate::{Job, JobSet};

/// Deterministic splitmix64-style hasher for the accumulator's integer-keyed
/// multisets. The streamed scan updates these once per closed job; SipHash
/// plus `BTreeMap` pointer chasing were a measurable slice of the 4M-job
/// scan, and the keys are attacker-free integers.
#[derive(Default)]
struct IntHasher(u64);

impl Hasher for IntHasher {
    fn finish(&self) -> u64 {
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = self.0.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

type IntMap<K> = HashMap<K, usize, BuildHasherDefault<IntHasher>>;

/// Aggregate statistics over a job population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of jobs.
    pub total_jobs: usize,
    /// Jobs whose every task name parses as a DAG task.
    pub dag_jobs: usize,
    /// `dag_jobs / total_jobs`.
    pub dag_fraction: f64,
    /// Share of planned CPU volume requested by DAG jobs.
    pub dag_cpu_share: f64,
    /// Share of planned memory volume requested by DAG jobs.
    pub dag_mem_share: f64,
    /// DAG-job size histogram (`size → count`).
    pub size_histogram: BTreeMap<usize, usize>,
    /// Task status histogram over all tasks.
    pub status_histogram: BTreeMap<String, usize>,
    /// Jobs passing the integrity criterion (all tasks terminated).
    pub terminated_jobs: usize,
    /// Completion-time percentiles (p50, p90, p99, seconds) over fully
    /// terminated DAG jobs.
    pub completion_percentiles: (i64, i64, i64),
}

impl TraceStats {
    /// Compute the statistics for `set`.
    pub fn compute(set: &JobSet) -> TraceStats {
        let mut acc = StatsAccumulator::new();
        for job in set.jobs() {
            acc.add_job(job);
        }
        acc.finish()
    }

    /// Number of distinct DAG-job sizes (the paper's "size types": 17 in
    /// their 100-job sample).
    pub fn size_type_count(&self) -> usize {
        self.size_histogram.len()
    }

    /// Count of terminated tasks across the trace.
    pub fn terminated_tasks(&self) -> usize {
        self.status_histogram
            .get(Status::Terminated.as_str())
            .copied()
            .unwrap_or(0)
    }

    /// Multi-line human-readable rendering for reports.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "jobs:             {}", self.total_jobs).unwrap();
        writeln!(
            s,
            "dependency jobs:  {} ({:.1} %)",
            self.dag_jobs,
            100.0 * self.dag_fraction
        )
        .unwrap();
        writeln!(
            s,
            "dep resource use: {:.1} % CPU, {:.1} % memory",
            100.0 * self.dag_cpu_share,
            100.0 * self.dag_mem_share
        )
        .unwrap();
        writeln!(s, "terminated jobs:  {}", self.terminated_jobs).unwrap();
        writeln!(s, "size types:       {}", self.size_type_count()).unwrap();
        let (p50, p90, p99) = self.completion_percentiles;
        writeln!(s, "DAG job JCT:      p50 {p50}s, p90 {p90}s, p99 {p99}s").unwrap();
        s
    }
}

/// The per-job quantities [`StatsAccumulator`] folds — everything
/// [`TraceStats`] needs from one job, decoupled from how the job is stored
/// (heap [`Job`] or a columnar store view).
#[derive(Debug, Clone, PartialEq)]
pub struct JobFacts {
    /// [`Job::planned_cpu_volume`].
    pub cpu_volume: f64,
    /// [`Job::planned_mem_volume`].
    pub mem_volume: f64,
    /// [`Job::is_dag_job`].
    pub is_dag: bool,
    /// [`Job::size`].
    pub size: usize,
    /// [`Job::fully_terminated`].
    pub fully_terminated: bool,
    /// [`Job::completion_time`].
    pub completion: Option<i64>,
    /// Task count per status, indexed per [`Status::index`].
    pub status_counts: [usize; Status::ALL.len()],
}

impl JobFacts {
    /// Derive the facts from a materialized [`Job`].
    pub fn of_job(job: &Job) -> JobFacts {
        let mut status_counts = [0usize; Status::ALL.len()];
        for t in &job.tasks {
            status_counts[t.status.index()] += 1;
        }
        JobFacts {
            cpu_volume: job.planned_cpu_volume(),
            mem_volume: job.planned_mem_volume(),
            is_dag: job.is_dag_job(),
            size: job.size(),
            fully_terminated: job.fully_terminated(),
            completion: job.completion_time(),
            status_counts,
        }
    }
}

/// Incremental, revisable builder for [`TraceStats`].
///
/// Jobs are folded in one at a time ([`StatsAccumulator::add_job`] /
/// [`StatsAccumulator::add_facts`]) and can later be *retracted*
/// ([`StatsAccumulator::remove_facts`]) when a streamed job is revised —
/// out-of-order straggler rows merged in, or a quarantine verdict dropping
/// the job. Resource volumes accumulate through [`ExactSum`], so the final
/// [`TraceStats`] depends only on the multiset of surviving jobs, never on
/// fold order: `compute` over a batch [`JobSet`] and a streamed fold over
/// the same jobs agree bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct StatsAccumulator {
    jobs: usize,
    dag_jobs: usize,
    terminated_jobs: usize,
    /// DAG-job size histogram, indexed directly by size for the common
    /// small sizes (grown on demand, never past [`SIZE_INLINE`]); outliers
    /// spill to the hash map. A plain array increment is the difference
    /// between ~2 ns and a ~50 ns map probe once per closed job.
    size_small: Vec<usize>,
    size_spill: IntMap<usize>,
    status_counts: [usize; Status::ALL.len()],
    /// Completion times (seconds) of terminated DAG jobs, appended raw and
    /// aggregated once in [`StatsAccumulator::finish`] — the scan hot loop
    /// pays a `Vec::push`, not a map update. Retractions append to the
    /// removed lists and are subtracted at finalize, preserving the
    /// "multiset of surviving jobs" semantics exactly. Values are stored as
    /// `u32` — a completion is `end - start` with `end >= start`, so it is
    /// never negative, and 2^32 seconds is 136 years — with an `i64` spill
    /// for anything that doesn't fit. At 4M jobs the narrow lists (plus
    /// their finalize-time sort copies) are what keeps peak RSS inside the
    /// quarter-of-raw budget.
    completions_added: Vec<u32>,
    completions_added_big: Vec<i64>,
    completions_removed: Vec<u32>,
    completions_removed_big: Vec<i64>,
    /// Resource volumes, partitioned by DAG membership rather than kept as
    /// (all, dag) pairs: each job then touches exactly two [`ExactSum`]s
    /// instead of up to four, and the all-jobs totals come from an exact
    /// partials merge in [`StatsAccumulator::finish`]. The `add` walk over
    /// the partials list is the single hottest instruction sequence in the
    /// streaming fold, so shaving ~one add per DAG job is measurable.
    cpu_other: ExactSum,
    cpu_dag: ExactSum,
    mem_other: ExactSum,
    mem_dag: ExactSum,
}

/// Largest job size tracked in [`StatsAccumulator::size_small`].
const SIZE_INLINE: usize = 1024;

impl StatsAccumulator {
    /// Empty accumulator.
    pub fn new() -> StatsAccumulator {
        StatsAccumulator::default()
    }

    /// Number of jobs currently folded in.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Fold one job in.
    pub fn add_job(&mut self, job: &Job) {
        self.add_facts(&JobFacts::of_job(job));
    }

    /// Retract one previously added job.
    pub fn remove_job(&mut self, job: &Job) {
        self.remove_facts(&JobFacts::of_job(job));
    }

    /// Fold one job's facts in.
    pub fn add_facts(&mut self, f: &JobFacts) {
        self.jobs += 1;
        if f.is_dag {
            self.dag_jobs += 1;
            self.cpu_dag.add(f.cpu_volume);
            self.mem_dag.add(f.mem_volume);
            if f.size < SIZE_INLINE {
                if self.size_small.len() <= f.size {
                    self.size_small.resize(f.size + 1, 0);
                }
                self.size_small[f.size] += 1;
            } else {
                *self.size_spill.entry(f.size).or_insert(0) += 1;
            }
        } else {
            self.cpu_other.add(f.cpu_volume);
            self.mem_other.add(f.mem_volume);
        }
        if f.fully_terminated {
            self.terminated_jobs += 1;
            if f.is_dag {
                if let Some(ct) = f.completion {
                    match u32::try_from(ct) {
                        Ok(v) => self.completions_added.push(v),
                        Err(_) => self.completions_added_big.push(ct),
                    }
                }
            }
        }
        for (slot, &c) in self.status_counts.iter_mut().zip(&f.status_counts) {
            *slot += c;
        }
    }

    /// Exact inverse of [`StatsAccumulator::add_facts`] for the same facts.
    pub fn remove_facts(&mut self, f: &JobFacts) {
        self.jobs -= 1;
        if f.is_dag {
            self.dag_jobs -= 1;
            self.cpu_dag.sub(f.cpu_volume);
            self.mem_dag.sub(f.mem_volume);
            if f.size < SIZE_INLINE {
                match self.size_small.get_mut(f.size) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => panic!("retracting a job that was never added"),
                }
            } else {
                Self::decrement(&mut self.size_spill, f.size);
            }
        } else {
            self.cpu_other.sub(f.cpu_volume);
            self.mem_other.sub(f.mem_volume);
        }
        if f.fully_terminated {
            self.terminated_jobs -= 1;
            if f.is_dag {
                if let Some(ct) = f.completion {
                    match u32::try_from(ct) {
                        Ok(v) => self.completions_removed.push(v),
                        Err(_) => self.completions_removed_big.push(ct),
                    }
                }
            }
        }
        for (slot, &c) in self.status_counts.iter_mut().zip(&f.status_counts) {
            *slot -= c;
        }
    }

    fn decrement<K: Eq + std::hash::Hash>(map: &mut IntMap<K>, key: K) {
        match map.get_mut(&key) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                map.remove(&key);
            }
            None => panic!("retracting a job that was never added"),
        }
    }

    /// Finalize into [`TraceStats`].
    pub fn finish(&self) -> TraceStats {
        let mut stats = TraceStats {
            total_jobs: self.jobs,
            dag_jobs: self.dag_jobs,
            dag_fraction: 0.0,
            dag_cpu_share: 0.0,
            dag_mem_share: 0.0,
            size_histogram: self
                .size_small
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| (s, c))
                .chain(self.size_spill.iter().map(|(&s, &c)| (s, c)))
                .collect(),
            status_histogram: BTreeMap::new(),
            terminated_jobs: self.terminated_jobs,
            completion_percentiles: (0, 0, 0),
        };
        for s in Status::ALL {
            let c = self.status_counts[s.index()];
            if c > 0 {
                stats.status_histogram.insert(s.as_str().to_string(), c);
            }
        }
        if stats.total_jobs > 0 {
            stats.dag_fraction = stats.dag_jobs as f64 / stats.total_jobs as f64;
        }
        // Exact-merge the DAG / non-DAG partitions: `value()` of the merge
        // is the correctly rounded all-jobs total, bit-identical to a
        // single accumulator fed every job.
        let cpu_all = self.cpu_other.merged(&self.cpu_dag).value();
        let mem_all = self.mem_other.merged(&self.mem_dag).value();
        if cpu_all > 0.0 {
            stats.dag_cpu_share = self.cpu_dag.value() / cpu_all;
        }
        if mem_all > 0.0 {
            stats.dag_mem_share = self.mem_dag.value() / mem_all;
        }
        // Aggregate the raw completion lists once, here: sort the additions,
        // subtract the (sorted) retractions with a merge walk, and
        // rank-select directly from the surviving sorted multiset — exactly
        // the order statistics of the surviving jobs, independent of the
        // sequence of adds and retractions. The narrow and spill lists are
        // reduced separately; the spill is all but always empty, and when
        // it isn't, a merged `i64` list restores a single sorted view.
        let small = Self::surviving(&self.completions_added, &self.completions_removed);
        let big = Self::surviving(&self.completions_added_big, &self.completions_removed_big);
        let n = small.len() + big.len();
        if n > 0 {
            let merged: Vec<i64>;
            let pick: Box<dyn Fn(usize) -> i64> = if big.is_empty() {
                Box::new(|rank| i64::from(small[rank - 1]))
            } else {
                let mut m: Vec<i64> = small.iter().map(|&v| i64::from(v)).collect();
                m.extend_from_slice(&big);
                m.sort_unstable();
                merged = m;
                Box::new(move |rank| merged[rank - 1])
            };
            let rank_of = |p: f64| ((p * n as f64).ceil() as usize).clamp(1, n);
            stats.completion_percentiles =
                (pick(rank_of(0.50)), pick(rank_of(0.90)), pick(rank_of(0.99)));
        }
        stats
    }

    /// Sorted multiset difference `added - removed`; panics if `removed`
    /// is not a sub-multiset of `added`.
    fn surviving<T: Ord + Copy>(added: &[T], removed: &[T]) -> Vec<T> {
        let mut sorted = added.to_vec();
        sorted.sort_unstable();
        if removed.is_empty() {
            return sorted;
        }
        let mut rem = removed.to_vec();
        rem.sort_unstable();
        let mut out = Vec::with_capacity(sorted.len().saturating_sub(rem.len()));
        let mut r = 0usize;
        for &ct in &sorted {
            if r < rem.len() && rem[r] == ct {
                r += 1;
            } else {
                out.push(ct);
            }
        }
        assert_eq!(r, rem.len(), "retracting a job that was never added");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};
    use crate::schema::{Status, TaskRecord};
    use crate::Job;

    #[test]
    fn empty_set() {
        let s = TraceStats::compute(&JobSet::default());
        assert_eq!(s.total_jobs, 0);
        assert_eq!(s.dag_fraction, 0.0);
        assert_eq!(s.size_type_count(), 0);
    }

    #[test]
    fn counts_on_hand_built_set() {
        let dag = Job {
            name: "j_1".into(),
            tasks: vec![
                TaskRecord {
                    task_name: "M1".into(),
                    instance_num: 10,
                    job_name: "j_1".into(),
                    task_type: "1".into(),
                    status: Status::Terminated,
                    start_time: 1,
                    end_time: 2,
                    plan_cpu: 100.0,
                    plan_mem: 1.0,
                },
                TaskRecord {
                    task_name: "R2_1".into(),
                    instance_num: 5,
                    job_name: "j_1".into(),
                    task_type: "1".into(),
                    status: Status::Terminated,
                    start_time: 2,
                    end_time: 3,
                    plan_cpu: 100.0,
                    plan_mem: 1.0,
                },
            ],
        };
        let indep = Job {
            name: "j_2".into(),
            tasks: vec![TaskRecord {
                task_name: "task_x".into(),
                instance_num: 5,
                job_name: "j_2".into(),
                task_type: "1".into(),
                status: Status::Failed,
                start_time: 1,
                end_time: 0,
                plan_cpu: 100.0,
                plan_mem: 1.0,
            }],
        };
        let s = TraceStats::compute(&JobSet::from_jobs(vec![dag, indep]));
        assert_eq!(s.total_jobs, 2);
        assert_eq!(s.dag_jobs, 1);
        assert_eq!(s.dag_fraction, 0.5);
        // dag cpu = 15 * 100, indep = 5 * 100.
        assert!((s.dag_cpu_share - 0.75).abs() < 1e-12);
        assert_eq!(s.size_histogram.get(&2), Some(&1));
        assert_eq!(s.terminated_jobs, 1);
        assert_eq!(s.terminated_tasks(), 2);
        assert_eq!(s.status_histogram.get("Failed"), Some(&1));
    }

    #[test]
    fn completion_percentiles_ordered() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 500,
            seed: 4,
            ..Default::default()
        })
        .generate();
        let s = TraceStats::compute(&trace.job_set());
        let (p50, p90, p99) = s.completion_percentiles;
        assert!(p50 > 0, "p50 {p50}");
        assert!(p50 <= p90 && p90 <= p99);
        assert!(s.render().contains("DAG job JCT"));
    }

    #[test]
    fn accumulator_retraction_matches_fresh_compute() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 300,
            seed: 9,
            ..Default::default()
        })
        .generate();
        let set = trace.job_set();
        // Fold everything, then retract every third job; the result must be
        // bit-identical to computing over the survivors from scratch.
        let mut acc = StatsAccumulator::new();
        for job in set.jobs() {
            acc.add_job(job);
        }
        let mut survivors = Vec::new();
        for (i, job) in set.jobs().iter().enumerate() {
            if i % 3 == 0 {
                acc.remove_job(job);
            } else {
                survivors.push(job.clone());
            }
        }
        let direct = TraceStats::compute(&JobSet::from_jobs(survivors));
        let folded = acc.finish();
        assert_eq!(folded, direct);
        assert_eq!(
            folded.dag_cpu_share.to_bits(),
            direct.dag_cpu_share.to_bits()
        );
    }

    #[test]
    fn completion_spill_handles_values_past_u32() {
        // Completions wider than 32 bits land in the spill list; the
        // percentile view must still be a single sorted multiset, and
        // retracting a spilled value must come out of the spill list.
        let facts_with = |completion: i64| JobFacts {
            cpu_volume: 1.0,
            mem_volume: 1.0,
            is_dag: true,
            size: 2,
            fully_terminated: true,
            completion: Some(completion),
            status_counts: [0; Status::ALL.len()],
        };
        let huge = i64::from(u32::MAX) + 5;
        let mut acc = StatsAccumulator::new();
        for ct in [10, 20, huge, huge + 1] {
            acc.add_facts(&facts_with(ct));
        }
        acc.remove_facts(&facts_with(huge + 1));
        let s = acc.finish();
        // Survivors: {10, 20, huge} → p50 = 20, p90 = p99 = huge.
        assert_eq!(s.completion_percentiles, (20, huge, huge));
    }

    #[test]
    fn synthetic_trace_reproduces_paper_headlines() {
        let trace = TraceGenerator::new(GeneratorConfig {
            jobs: 3_000,
            seed: 42,
            ..Default::default()
        })
        .generate();
        let s = TraceStats::compute(&trace.job_set());
        assert!(
            (0.42..=0.58).contains(&s.dag_fraction),
            "dag fraction {}",
            s.dag_fraction
        );
        assert!(
            (0.60..=0.92).contains(&s.dag_cpu_share),
            "dag cpu share {}",
            s.dag_cpu_share
        );
        // All 30 possible DAG sizes (2..=31) should be represented in a
        // 3000-job trace — certainly at least the paper's 17 size types.
        assert!(
            s.size_type_count() >= 17,
            "size types {}",
            s.size_type_count()
        );
        let rendered = s.render();
        assert!(rendered.contains("dependency jobs"));
    }
}
