//! # dagscope
//!
//! Graph-learning characterization of job-task dependency in cloud batch
//! workloads — a Rust reproduction of Gu et al., *"Characterizing Job-Task
//! Dependency in Cloud Workloads Using Graph Learning"* (IPPS 2021).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trace`] — Alibaba-v2018-schema trace records, CSV I/O and the
//!   synthetic workload generator,
//! * [`graph`] — job DAG construction, structural metrics, node conflation
//!   and shape-pattern classification,
//! * [`linalg`] — dense symmetric matrices and the Jacobi eigensolver,
//! * [`wl`] — the Weisfeiler-Lehman subtree kernel,
//! * [`cluster`] — k-means and spectral clustering with validation indices,
//! * [`core`] — the end-to-end characterization pipeline and the
//!   figure-regeneration entry points,
//! * [`sched`] — a discrete-event co-located-cluster scheduling simulator
//!   that measures what the topological grouping buys a batch scheduler,
//! * [`par`] — the scoped-thread parallel primitives everything runs on.
//!
//! ## Quickstart
//!
//! ```
//! use dagscope::core::{Pipeline, PipelineConfig};
//!
//! let report = Pipeline::new(PipelineConfig {
//!     jobs: 300,
//!     sample: 100,
//!     seed: 7,
//!     ..PipelineConfig::default()
//! })
//! .run()
//! .expect("pipeline");
//! assert_eq!(report.groups.group_count(), 5);
//! ```

pub use dagscope_cluster as cluster;
pub use dagscope_core as core;
pub use dagscope_graph as graph;
pub use dagscope_linalg as linalg;
pub use dagscope_par as par;
pub use dagscope_sched as sched;
pub use dagscope_trace as trace;
pub use dagscope_wl as wl;
